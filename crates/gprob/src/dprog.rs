//! Tape-free density programs: `ResolvedProgram` compiled to a flat,
//! register-addressed op list evaluated with **no tape at all**.
//!
//! Every gradient evaluation on the `Var`/tape path re-*records* the Wengert
//! list: the interpreter walks the resolved body, every scalar operation
//! borrows the thread-local `RefCell` tape and pushes a node, and the reverse
//! sweep allocates adjoints for the whole recording — even though, for a
//! fixed (model, data) binding, the op sequence is identical on every call.
//! This module performs that recording **once, at bind time**: [`compile`]
//! lowers the resolved body into a [`DProg`] — a static register program —
//! and [`DProg::value_and_grad`] evaluates value + gradient with one forward
//! `f64` pass over the op array into a pooled register file and one analytic
//! reverse sweep over the same array (each opcode derives its local partials
//! from the forward registers; batch sweep sites reuse the analytic reverse
//! rules of [`probdist::lpdf_elem_partials`]).
//!
//! # Register model
//!
//! The register file is a flat `Vec<f64>` in a [`DProgWorkspace`]:
//!
//! * registers `0..n_inputs` hold the unconstrained parameter vector,
//!   rewritten on every evaluation;
//! * a constant region holds data values, written once when the workspace is
//!   built ([`DProg::workspace`]) and never touched per evaluation;
//! * every op writes a **fresh** destination register (static single
//!   assignment), so after the forward pass the register file holds each
//!   op's operand values and the reverse sweep can derive every local
//!   partial without any recording. Loop bodies are scalar-expanded: each
//!   body temporary owns a span of `trip` registers addressed
//!   `base + stride·iter`, and loop-carried recurrences (garch11's
//!   `sigma_t`, arma11's `err`) become register *chains* of `trip + 1`
//!   entries, which is what lets the reverse sweep walk iterations backwards
//!   with no per-iteration checkpointing.
//!
//! Loop-invariant values that depend only on data fold to constants at
//! compile time; values that depend on data *and* the loop counter
//! (`y[t-1]` in a time series) fold to per-iteration constant tables
//! indexed by `iter`.
//!
//! # Lane model
//!
//! [`DProg::value_and_grad_lanes`] scores L *independent* unconstrained
//! points with **one** forward and **one** reverse sweep over the op array:
//! op decode, dispatch, and table addressing are paid once per op instead of
//! once per op per point. The same program runs against a struct-of-arrays
//! register file where each register becomes a row of L lanes, stored
//! contiguously in a 64-byte-aligned pool:
//!
//! ```text
//!              lane 0   lane 1   ...  lane L-1
//! reg 0      [ q0[0]  | q1[0]  | ... | qL-1[0]  ]   <- input region,
//! reg 1      [ q0[1]  | q1[1]  | ... | qL-1[1]  ]      point l in lane l
//! ...
//! reg r      [  r·L   | r·L+1  | ... | r·L+L-1 ]   <- pool offset of reg r
//! ```
//!
//! Every inner loop walks lanes `0..L` with a compile-time lane count
//! (`L ∈ {2, 4, 8}`, monomorphized), so the plain-indexed f64 loops
//! auto-vectorize on stable Rust — no nightly SIMD features, no intrinsics.
//! Batched score sites go through the lane-widened elem kernels
//! ([`probdist::lpdf_elem_value_lanes`] / `lpdf_elem_partials_lanes`).
//!
//! Lane evaluation is **not** a numerical variant: lane `l` executes exactly
//! the op sequence, accumulation order, and reverse-sweep zero-guards of a
//! single-point [`DProg::value_and_grad`] call on that point, so each lane's
//! value and gradient are bitwise the single-lane results. A batch of n
//! points is chunked greedily into lanes of 8, then 4, then 2; a ragged
//! remainder point falls back to the single-lane entry itself. Decline rules
//! are unchanged — lanes are a property of *evaluation*, not compilation,
//! and declined models keep the `Var`/tape path byte-identical.
//!
//! # Opcode table
//!
//! | op | forward | reverse |
//! |----|---------|---------|
//! | `Bin`/`Un`/`Mov` | scalar arithmetic / [`minidiff::rules::UnFn`] | analytic partials from forward registers (zero for value-only fns like `floor`) |
//! | `VBin`/`VUn` | element-wise span arithmetic with scalar broadcast | per-element partials |
//! | `Dot`/`Sum`/`MatVec`/`MaxVal` | reductions over spans (`MaxVal` is the untracked `log_sum_exp` stabilizer) | `Dot`: cross partials; `Sum`: broadcast; `MatVec`: transposed matrix; `MaxVal`: zero |
//! | `Constrain` | [`probdist::Constraint`] transform + log-Jacobian into the jacobian accumulator | analytic `∂x/∂u` and `∂log|J|/∂u` |
//! | `ScoreElem`/`ScoreVal` | one scalar log-density via [`probdist::lpdf_elem_value`] | [`probdist::lpdf_elem_partials`] |
//! | `ScoreSweep`/`ScoreSweepVal` | one batched site via [`probdist::lpdf_sweep`] | [`probdist::lpdf_sweep_adjoint`] |
//! | `AddScore`/`AddScoreSpan` | `factor` contributions | pass-through |
//! | `Loop` | body `trip` times with `iter = 0..trip` | body reversed with `iter = trip-1..0` |
//!
//! # Decline rules
//!
//! Compilation is total-or-nothing: a program either compiles in full or
//! [`compile`] returns a [`Decline`] with a stated reason and the model
//! keeps the `Var`/tape path (which also stays as the differential oracle —
//! `tests/dprog_equivalence.rs` pins DProg values to 1e-12 and gradients to
//! 1e-10 against it across the corpus). Declined shapes:
//!
//! * parameter-dependent control flow: `if` / `while` / loop bounds /
//!   `ternary` conditions that transitively read parameter slots;
//! * user-defined function calls and declared network (external) functions;
//! * sample sites that are not parameters, matrix-shaped parameters, and
//!   distribution families without an elem kernel
//!   ([`probdist::supports_elem`]);
//! * builtins without a compiled rule (CDFs, `_rng`, sorting, softmax),
//!   symbolic comparisons, and symbolic integer coercions;
//! * shapes whose *runtime* path would raise an error (out-of-bounds
//!   windows, arity mismatches): declining keeps the error byte-identical
//!   on the retained path.
//!
//! Everything the corpus' hot models need compiles: scalar and vector
//! parameters, vectorized `~` statements, lowered observe sweeps (kept as
//! batch-kernel ops), fixed-trip-count recurrence loops (arK / garch11 /
//! arma11-class), `target +=` with `log_mix` / `*_lpdf` calls, and
//! matrix-vector regression heads.

use std::collections::HashMap;

use minidiff::rules::UnFn;
use probdist::sweep::{
    lpdf_elem_partials, lpdf_elem_partials_only_lanes, lpdf_elem_value, lpdf_elem_value_lanes,
    lpdf_sweep, lpdf_sweep_adjoint, normal_lpdf_const, normal_lpdf_from_const,
    normal_partials_only, supports_elem, supports_sweep, sweep_arity, AdjSink, SweepArg, SweepVals,
};
use probdist::{Constraint, DistKind};
use stan_frontend::ast::{BinOp, FunDecl, UnOp};

use crate::eval::NoExternals;
use crate::ir::GProbProgram;
use crate::model::ParamSlot;
use crate::resolved::{
    affine_offset, Frame, RDecl, RDistCall, RExpr, RGExpr, RIndex, RLoopKind, RSweep,
    ResolvedProgram, SweepArgSpec,
};
use crate::reval::{default_rvalue, reval_expr, RCtx, RInterp, RMode};
use crate::value::{RuntimeError, Value};

pub mod jit;

/// Why a program did not compile to a density program. The model then keeps
/// the `Var`/tape gradient path, byte-identical to the pre-DProg behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decline {
    reason: String,
}

impl Decline {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        Decline {
            reason: reason.into(),
        }
    }

    /// The stated reason.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl std::fmt::Display for Decline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "density program declined: {}", self.reason)
    }
}

/// A register reference: `base + stride · iter` where `iter` is the 0-based
/// iteration of the innermost enclosing [`Op::Loop`] (stride 0 outside
/// loops).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Reg {
    base: u32,
    stride: u32,
}

impl Reg {
    fn abs(base: u32) -> Reg {
        Reg { base, stride: 0 }
    }

    #[inline]
    fn at(self, iter: u32) -> usize {
        (self.base + self.stride * iter) as usize
    }
}

/// A scalar operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum A {
    /// A register.
    Reg(Reg),
    /// An immediate constant.
    Const(f64),
    /// A per-iteration constant: `tables_f[id][iter]`.
    Table(u32),
}

/// A vector operand of an element-wise span op (scalars broadcast).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum VA {
    /// A contiguous register span starting at `start`.
    Span(u32),
    /// A constant table used as a whole vector.
    Table(u32),
    /// A scalar register broadcast across the span.
    RegS(Reg),
    /// A constant broadcast across the span.
    ConstS(f64),
}

/// The observed values of a batched score op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum VX {
    /// A register span (tracked values, e.g. a parameter vector).
    Span(u32),
    /// Constant reals (data).
    TableF(u32),
    /// Constant integers (data).
    TableI(u32),
}

/// One distribution argument of a batched score op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SA {
    /// A scalar broadcast.
    Sc(A),
    /// One tracked real per element.
    Span(u32),
    /// One constant real per element.
    TableF(u32),
    /// One constant integer per element.
    TableI(u32),
}

/// Differentiable binary functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum BinF {
    Add,
    Sub,
    Mul,
    Div,
    /// `max` with the sub-gradient following the winner (ties favor the
    /// left operand, exactly as `Var::max_var`).
    Max,
    /// `min`, ties favor the left operand.
    Min,
    /// A value-only binary (`%`, `atan2`, the untracked `log_mix`
    /// stabilizer `max`): both partials are zero, matching the scalar path
    /// where the result is an untracked `from_f64` constant.
    ZeroMod,
    ZeroAtan2,
    ZeroMaxVal,
}

impl BinF {
    /// The shared differentiation rule, when the function has one (the
    /// `Zero*` variants are value-only).
    #[inline]
    fn rule(self) -> Option<minidiff::rules::BinFn> {
        use minidiff::rules::BinFn;
        Some(match self {
            BinF::Add => BinFn::Add,
            BinF::Sub => BinFn::Sub,
            BinF::Mul => BinFn::Mul,
            BinF::Div => BinFn::Div,
            BinF::Max => BinFn::Max,
            BinF::Min => BinFn::Min,
            BinF::ZeroMod | BinF::ZeroAtan2 | BinF::ZeroMaxVal => return None,
        })
    }

    #[inline]
    fn value(self, a: f64, b: f64) -> f64 {
        match self.rule() {
            Some(r) => r.value(a, b),
            None => match self {
                BinF::ZeroMod => a % b,
                BinF::ZeroAtan2 => a.atan2(b),
                BinF::ZeroMaxVal => {
                    if a >= b {
                        a
                    } else {
                        b
                    }
                }
                _ => unreachable!(),
            },
        }
    }

    /// `(∂f/∂a, ∂f/∂b)` at `(a, b)` — the same table `Var`'s operators
    /// record on the tape ([`minidiff::rules::BinFn`]); value-only
    /// functions have zero partials, matching the scalar path's untracked
    /// `from_f64` results.
    #[inline]
    fn partials(self, a: f64, b: f64) -> (f64, f64) {
        match self.rule() {
            Some(r) => r.partials(a, b),
            None => (0.0, 0.0),
        }
    }

    /// Lane-widened [`BinF::value`]: the function dispatch runs once per
    /// lane row instead of once per lane, and the arithmetic arms are
    /// straight-line loops the compiler can vectorize. Each lane computes
    /// exactly the scalar formula (IEEE `+ - * /` are lane-wise identical).
    #[inline]
    fn value_lanes<const L: usize>(self, a: &[f64; L], b: &[f64; L]) -> [f64; L] {
        let mut o = [0.0; L];
        match self {
            BinF::Add => {
                for l in 0..L {
                    o[l] = a[l] + b[l];
                }
            }
            BinF::Sub => {
                for l in 0..L {
                    o[l] = a[l] - b[l];
                }
            }
            BinF::Mul => {
                for l in 0..L {
                    o[l] = a[l] * b[l];
                }
            }
            BinF::Div => {
                for l in 0..L {
                    o[l] = a[l] / b[l];
                }
            }
            _ => {
                for l in 0..L {
                    o[l] = self.value(a[l], b[l]);
                }
            }
        }
        o
    }

    /// Lane-widened [`BinF::partials`] (same dispatch-once rationale as
    /// [`BinF::value_lanes`]); formulas are the shared rule table's.
    #[inline]
    fn partials_lanes<const L: usize>(self, a: &[f64; L], b: &[f64; L]) -> ([f64; L], [f64; L]) {
        match self {
            BinF::Add => ([1.0; L], [1.0; L]),
            BinF::Sub => ([1.0; L], [-1.0; L]),
            BinF::Mul => (*b, *a),
            BinF::Div => {
                let mut pa = [0.0; L];
                let mut pb = [0.0; L];
                for l in 0..L {
                    pa[l] = 1.0 / b[l];
                    pb[l] = -a[l] / (b[l] * b[l]);
                }
                (pa, pb)
            }
            _ => {
                let mut pa = [0.0; L];
                let mut pb = [0.0; L];
                for l in 0..L {
                    let (x, y) = self.partials(a[l], b[l]);
                    pa[l] = x;
                    pb[l] = y;
                }
                (pa, pb)
            }
        }
    }
}

/// Differentiable or value-only unary functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum UF {
    /// A rule from the shared [`minidiff::rules`] table.
    R(UnFn),
    /// Value-only functions: the scalar path computes them through
    /// `from_f64(..)`, so their recorded partial is zero.
    Floor,
    Ceil,
    Round,
    Step,
    Digamma,
    Erf,
    NormCdf,
    Atan,
}

impl UF {
    #[inline]
    fn value(self, x: f64) -> f64 {
        match self {
            UF::R(f) => f.value(x),
            UF::Floor => x.floor(),
            UF::Ceil => x.ceil(),
            UF::Round => x.round(),
            UF::Step => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            UF::Digamma => minidiff::special::digamma(x),
            UF::Erf => minidiff::special::erf(x),
            UF::NormCdf => minidiff::special::std_normal_cdf(x),
            UF::Atan => x.atan(),
        }
    }

    #[inline]
    fn partial(self, x: f64, fx: f64) -> f64 {
        match self {
            UF::R(f) => f.partial(x, fx),
            _ => 0.0,
        }
    }

    /// Lane-widened [`UF::value`] with the dispatch hoisted out of the lane
    /// loop; the specialized arms match [`minidiff::rules::UnFn::value`]
    /// exactly (and `sqrt`/negation are IEEE lane-wise identical).
    #[inline]
    fn value_lanes<const L: usize>(self, x: &[f64; L]) -> [f64; L] {
        let mut o = [0.0; L];
        match self {
            UF::R(UnFn::Neg) => {
                for l in 0..L {
                    o[l] = -x[l];
                }
            }
            UF::R(UnFn::Sqrt) => {
                for l in 0..L {
                    o[l] = x[l].sqrt();
                }
            }
            UF::R(UnFn::Recip) => {
                for l in 0..L {
                    o[l] = 1.0 / x[l];
                }
            }
            _ => {
                for l in 0..L {
                    o[l] = self.value(x[l]);
                }
            }
        }
        o
    }

    /// Lane-widened [`UF::partial`]; the specialized arms are the shared
    /// rule table's formulas verbatim.
    #[inline]
    fn partial_lanes<const L: usize>(self, x: &[f64; L], fx: &[f64; L]) -> [f64; L] {
        let mut o = [0.0; L];
        match self {
            UF::R(UnFn::Neg) => return [-1.0; L],
            UF::R(UnFn::Exp) => return *fx,
            UF::R(UnFn::Ln) => {
                for l in 0..L {
                    o[l] = 1.0 / x[l];
                }
            }
            UF::R(UnFn::Sqrt) => {
                for l in 0..L {
                    o[l] = 0.5 / fx[l];
                }
            }
            UF::R(UnFn::Recip) => {
                for l in 0..L {
                    o[l] = -1.0 / (x[l] * x[l]);
                }
            }
            _ => {
                for l in 0..L {
                    o[l] = self.partial(x[l], fx[l]);
                }
            }
        }
        o
    }
}

/// One operation of a density program.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    /// `dst = f(a, b)`.
    Bin { f: BinF, dst: Reg, a: A, b: A },
    /// `dst = f(a)`.
    Un { f: UF, dst: Reg, a: A },
    /// `dst = a`.
    Mov { dst: Reg, a: A },
    /// `dst[i] = f(a[i], b[i])` for `i in 0..len` (scalars broadcast).
    VBin {
        f: BinF,
        dst: u32,
        a: VA,
        b: VA,
        len: u32,
    },
    /// `dst[i] = f(a[i])`.
    VUn { f: UF, dst: u32, a: VA, len: u32 },
    /// `dst = Σ a[i] · b[i]` (row-vector × vector).
    Dot { dst: u32, a: VA, b: VA, len: u32 },
    /// `dst = Σ a[i]`, summed in element order.
    Sum { dst: u32, a: VA, len: u32 },
    /// `dst[r] = Σ_c mat[r][c] · x[c]` with a constant matrix
    /// (`tables_f[mat]`, row-major).
    MatVec {
        dst: u32,
        mat: u32,
        x: VA,
        rows: u32,
        cols: u32,
    },
    /// `dst = max_i a[i]` **by value** (zero partials) — the untracked
    /// stabilizer of `log_sum_exp` / `softmax`-style reductions.
    MaxVal { dst: u32, a: VA, len: u32 },
    /// Constrain `len` components: reads unconstrained `src + c`, writes
    /// constrained `dst + c`, accumulates the log-Jacobian.
    Constrain {
        kind: Constraint,
        src: u32,
        dst: u32,
        len: u32,
    },
    /// `score += lpdf(kind; x | args[..k])` for one scalar site.
    ScoreElem {
        kind: DistKind,
        x: A,
        args: [A; 3],
        k: u8,
    },
    /// `dst = lpdf(kind; x | args[..k])` — a `*_lpdf` call as a value.
    ScoreVal {
        kind: DistKind,
        dst: Reg,
        x: A,
        args: [A; 3],
        k: u8,
    },
    /// `score += Σ_i lpdf(kind; xs[i] | args[i])` — one batched site.
    ScoreSweep {
        kind: DistKind,
        xs: VX,
        args: [SA; 3],
        k: u8,
        len: u32,
    },
    /// `dst = Σ_i lpdf(kind; xs[i] | args[i])` — a container `*_lpdf` call
    /// as a value.
    ScoreSweepVal {
        kind: DistKind,
        dst: u32,
        xs: VX,
        args: [SA; 3],
        k: u8,
        len: u32,
    },
    /// `score += a` (a `factor` / `target +=` contribution).
    AddScore { a: A },
    /// `score += Σ a[i]` (a container `factor`), summed in element order.
    AddScoreSpan { a: VA, len: u32 },
    /// Execute `body` `trip` times with `iter = 0, 1, …, trip-1`.
    Loop { trip: u32, body: Vec<Op> },
}

/// A compiled density program. Build one with [`compile`]; evaluate with
/// [`DProg::value`] / [`DProg::value_and_grad`] against a pooled
/// [`DProgWorkspace`].
#[derive(Debug, Clone)]
pub struct DProg {
    n_inputs: usize,
    n_regs: usize,
    /// Constant register initializations (data), applied once per workspace.
    const_init: Vec<(u32, f64)>,
    ops: Vec<Op>,
    tables_f: Vec<Vec<f64>>,
    tables_i: Vec<Vec<i64>>,
}

/// A fixed-length `f64` pool allocated at 64-byte alignment, so register
/// rows start on cache-line boundaries and the lane loops vectorize without
/// split loads (a `Vec<f64>` only guarantees 8 bytes). The length is fixed at
/// construction — the pool is allocated exactly once per (workspace, shape)
/// and never reallocated, which `capacities`-style regression tests pin.
struct AlignedBuf {
    ptr: std::ptr::NonNull<f64>,
    len: usize,
}

impl AlignedBuf {
    const ALIGN: usize = 64;

    fn zeroed(len: usize) -> AlignedBuf {
        if len == 0 {
            return AlignedBuf {
                ptr: std::ptr::NonNull::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        let raw = unsafe { std::alloc::alloc_zeroed(layout) } as *mut f64;
        let Some(ptr) = std::ptr::NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len }
    }

    fn layout(len: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(len * std::mem::size_of::<f64>(), Self::ALIGN)
            .expect("register pool layout")
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len != 0 {
            unsafe { std::alloc::dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len)) };
        }
    }
}

// The buffer exclusively owns its allocation, exactly like Vec<f64>.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl std::ops::Deref for AlignedBuf {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl std::ops::DerefMut for AlignedBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Clone for AlignedBuf {
    fn clone(&self) -> AlignedBuf {
        let mut out = AlignedBuf::zeroed(self.len);
        out.copy_from_slice(self);
        out
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// One lane-widened register file: the struct-of-arrays image of the
/// program's registers at a fixed lane count L, register `r` occupying
/// `regs[r·L .. (r+1)·L]` (see the module-level lane layout diagram).
#[derive(Debug, Clone)]
struct LaneFile {
    regs: AlignedBuf,
    adj: AlignedBuf,
}

/// Pooled scratch for one chain's density-program evaluations: the register
/// file (constants pre-written) and the adjoint buffer, both carved from
/// 64-byte-aligned pools, plus lane-widened register files grown lazily per
/// lane width. Nothing is allocated per evaluation: every pool is sized by
/// the program shape once and reused verbatim afterwards.
#[derive(Debug, Clone)]
pub struct DProgWorkspace {
    regs: AlignedBuf,
    adj: AlignedBuf,
    /// Lane files for L = 2, 4, 8 (slot `lane_slot(L)`), built on first use
    /// at that width and then reused for every batch.
    lanes: [Option<LaneFile>; 3],
}

impl DProgWorkspace {
    /// Total `f64` capacity of the pooled buffers:
    /// `(single-lane registers, single-lane adjoints, lane-file f64s across
    /// all prepared widths)`. Capacities never shrink and — for a fixed
    /// program and set of lane widths — never grow after first use, which is
    /// what the zero-reallocation regression tests pin.
    pub fn capacities(&self) -> (usize, usize, usize) {
        let lane_total = self
            .lanes
            .iter()
            .flatten()
            .map(|lf| lf.regs.len + lf.adj.len)
            .sum();
        (self.regs.len, self.adj.len, lane_total)
    }
}

#[inline]
fn lane_slot(l: usize) -> usize {
    match l {
        2 => 0,
        4 => 1,
        _ => 2,
    }
}

/// Loads one register's lane row as a fixed-size array.
#[inline]
fn lane_row<const L: usize>(pool: &[f64], r: usize) -> [f64; L] {
    let mut out = [0.0; L];
    out.copy_from_slice(&pool[r * L..r * L + L]);
    out
}

/// A sweep operand resolved **once per sweep** for the lane element loops:
/// replaces the per-element `sweep_x_lanes` / `sweep_arg_lanes` operand
/// matches with a pre-cut slice (or a pre-loaded fixed row), so the hot
/// loops are branch-free loads. Element `i`'s lane row reads exactly the
/// values the per-element resolution would load.
#[derive(Clone, Copy)]
enum LaneOp<'a, const L: usize> {
    /// Contiguous lane rows in the register pool (a `Span` operand):
    /// element `i` is `rows[i*L..][..L]`.
    Rows(&'a [f64]),
    /// A per-element real table, broadcast across lanes.
    Table(&'a [f64]),
    /// A per-element integer table, broadcast across lanes.
    Ints(&'a [i64]),
    /// A fixed lane row (scalar operand), constant over the sweep.
    Fixed([f64; L]),
}

impl<const L: usize> LaneOp<'_, L> {
    #[inline(always)]
    fn row(&self, i: usize) -> [f64; L] {
        match self {
            LaneOp::Rows(rows) => {
                let mut out = [0.0; L];
                out.copy_from_slice(&rows[i * L..i * L + L]);
                out
            }
            LaneOp::Table(t) => [t[i]; L],
            LaneOp::Ints(t) => [t[i] as f64; L],
            LaneOp::Fixed(v) => *v,
        }
    }
}

impl DProg {
    /// Number of unconstrained inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of registers in the program's register file.
    pub fn n_regs(&self) -> usize {
        self.n_regs
    }

    /// Number of ops, counting loop bodies once (the static program size).
    pub fn n_ops(&self) -> usize {
        fn count(ops: &[Op]) -> usize {
            ops.iter()
                .map(|op| match op {
                    Op::Loop { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.ops)
    }

    /// A rough *dynamic* cost estimate of one evaluation: scalar ops count
    /// 1, span/sweep ops count their element length (score kernels weighted
    /// heavier for their transcendentals), loop bodies multiply by the trip
    /// count. Schedulers use this to decide whether lane-batched evaluation
    /// amortizes its per-round dispatch overhead — tiny programs (the
    /// `coin`-class toys) run faster sequentially.
    pub fn cost_estimate(&self) -> usize {
        fn op_cost(op: &Op) -> usize {
            match op {
                Op::Bin { .. } | Op::Un { .. } | Op::Mov { .. } | Op::AddScore { .. } => 1,
                Op::ScoreElem { .. } | Op::ScoreVal { .. } => 4,
                Op::VBin { len, .. }
                | Op::VUn { len, .. }
                | Op::Dot { len, .. }
                | Op::Sum { len, .. }
                | Op::MaxVal { len, .. }
                | Op::AddScoreSpan { len, .. }
                | Op::Constrain { len, .. } => *len as usize,
                Op::MatVec { rows, cols, .. } => (*rows as usize) * (*cols as usize),
                Op::ScoreSweep { len, .. } | Op::ScoreSweepVal { len, .. } => 4 * *len as usize,
                Op::Loop { trip, body } => *trip as usize * body.iter().map(op_cost).sum::<usize>(),
            }
        }
        self.ops.iter().map(op_cost).sum()
    }

    /// Builds a pooled workspace: the register file with the constant
    /// region pre-written.
    pub fn workspace(&self) -> DProgWorkspace {
        let mut regs = AlignedBuf::zeroed(self.n_regs);
        for &(r, v) in &self.const_init {
            regs[r as usize] = v;
        }
        DProgWorkspace {
            regs,
            adj: AlignedBuf::zeroed(self.n_regs),
            lanes: [None, None, None],
        }
    }

    /// Returns the lane file for width L, building (and constant-initializing)
    /// it on first use at that width. Constants are broadcast across lanes
    /// once here; per-batch evaluation only rewrites the input region.
    fn prepare_lanes<'w, const L: usize>(&self, ws: &'w mut DProgWorkspace) -> &'w mut LaneFile {
        let slot = &mut ws.lanes[lane_slot(L)];
        if slot.is_none() {
            let mut regs = AlignedBuf::zeroed(self.n_regs * L);
            for &(r, v) in &self.const_init {
                let o = r as usize * L;
                regs[o..o + L].fill(v);
            }
            *slot = Some(LaneFile {
                regs,
                adj: AlignedBuf::zeroed(self.n_regs * L),
            });
        }
        slot.as_mut().expect("lane file just prepared")
    }

    fn check_len(&self, theta_u: &[f64]) -> Result<(), RuntimeError> {
        if theta_u.len() != self.n_inputs {
            return Err(RuntimeError::new(format!(
                "expected {} unconstrained values, got {}",
                self.n_inputs,
                theta_u.len()
            )));
        }
        Ok(())
    }

    /// Log-density (score + log-Jacobian) of the unconstrained vector — the
    /// forward pass alone.
    ///
    /// # Errors
    /// Fails only on a wrong input length; numeric trouble surfaces as
    /// `-inf` / `NaN` exactly as on the interpreted path.
    pub fn value(&self, theta_u: &[f64], ws: &mut DProgWorkspace) -> Result<f64, RuntimeError> {
        self.check_len(theta_u)?;
        ws.regs[..self.n_inputs].copy_from_slice(theta_u);
        let mut acc = Accum::default();
        self.forward(&self.ops, &mut ws.regs, &mut acc);
        Ok(acc.score + acc.jac)
    }

    /// Log-density and its gradient: one forward pass, one analytic reverse
    /// sweep accumulating adjoints straight into `grad_out`.
    ///
    /// # Errors
    /// Fails only on a wrong input length.
    ///
    /// # Panics
    /// Panics if `grad_out` is shorter than the input dimension (matching
    /// `minidiff::grad_into`).
    pub fn value_and_grad(
        &self,
        theta_u: &[f64],
        grad_out: &mut [f64],
        ws: &mut DProgWorkspace,
    ) -> Result<f64, RuntimeError> {
        self.check_len(theta_u)?;
        assert!(grad_out.len() >= self.n_inputs, "gradient buffer too short");
        ws.regs[..self.n_inputs].copy_from_slice(theta_u);
        let mut acc = Accum::default();
        self.forward(&self.ops, &mut ws.regs, &mut acc);
        ws.adj.fill(0.0);
        self.reverse(&self.ops, &ws.regs, &mut ws.adj);
        grad_out[..self.n_inputs].copy_from_slice(&ws.adj[..self.n_inputs]);
        Ok(acc.score + acc.jac)
    }

    /// Log-densities and gradients of a batch of independent unconstrained
    /// points, evaluated in lane groups: `values.len()` points packed
    /// row-major in `thetas` (point `i` at `thetas[i·dim .. (i+1)·dim]`),
    /// gradients written row-major into `grads` the same way.
    ///
    /// The batch is chunked greedily into lane groups of 8, 4, then 2 (see
    /// the module-level lane model); a final odd point runs through
    /// [`DProg::value_and_grad`] itself. Each point's value and gradient are
    /// bitwise identical to a single-point evaluation.
    ///
    /// # Errors
    /// Fails only when `thetas` is not `values.len() · n_inputs` long.
    ///
    /// # Panics
    /// Panics if `grads` is shorter than `thetas` (matching the single-lane
    /// gradient-buffer contract).
    pub fn value_and_grad_lanes(
        &self,
        thetas: &[f64],
        values: &mut [f64],
        grads: &mut [f64],
        ws: &mut DProgWorkspace,
    ) -> Result<(), RuntimeError> {
        let n = values.len();
        let d = self.n_inputs;
        if thetas.len() != n * d {
            return Err(RuntimeError::new(format!(
                "expected {} unconstrained values for {n} points, got {}",
                n * d,
                thetas.len()
            )));
        }
        assert!(grads.len() >= n * d, "gradient buffer too short");
        let mut done = 0usize;
        while n - done >= 2 {
            let l = match n - done {
                rem if rem >= 8 => 8,
                rem if rem >= 4 => 4,
                _ => 2,
            };
            let t = &thetas[done * d..(done + l) * d];
            let v = &mut values[done..done + l];
            let g = &mut grads[done * d..(done + l) * d];
            match l {
                8 => self.eval_lane_chunk::<8>(t, v, g, ws),
                4 => self.eval_lane_chunk::<4>(t, v, g, ws),
                _ => self.eval_lane_chunk::<2>(t, v, g, ws),
            }
            done += l;
        }
        // Odd remainder: the single-lane entry itself (byte-identical path).
        for i in done..n {
            values[i] = self.value_and_grad(
                &thetas[i * d..(i + 1) * d],
                &mut grads[i * d..(i + 1) * d],
                ws,
            )?;
        }
        Ok(())
    }

    /// One lane group: transpose L points into the SoA lane file, run the
    /// lane-widened forward and reverse sweeps, scatter results back.
    fn eval_lane_chunk<const L: usize>(
        &self,
        thetas: &[f64],
        values: &mut [f64],
        grads: &mut [f64],
        ws: &mut DProgWorkspace,
    ) {
        let d = self.n_inputs;
        let lf = self.prepare_lanes::<L>(ws);
        for i in 0..d {
            for l in 0..L {
                lf.regs[i * L + l] = thetas[l * d + i];
            }
        }
        let mut score = [0.0; L];
        let mut jac = [0.0; L];
        self.forward_lanes::<L>(&self.ops, &mut lf.regs, &mut score, &mut jac, 0);
        lf.adj.fill(0.0);
        self.reverse_lanes::<L>(&self.ops, &lf.regs, &mut lf.adj, 0);
        for l in 0..L {
            values[l] = score[l] + jac[l];
            for i in 0..d {
                grads[l * d + i] = lf.adj[i * L + l];
            }
        }
    }

    #[inline]
    fn ra(&self, a: A, regs: &[f64], iter: u32) -> f64 {
        match a {
            A::Reg(r) => regs[r.at(iter)],
            A::Const(c) => c,
            A::Table(t) => self.tables_f[t as usize][iter as usize],
        }
    }

    #[inline]
    fn va(&self, a: VA, regs: &[f64], i: usize) -> f64 {
        match a {
            VA::Span(s) => regs[s as usize + i],
            VA::Table(t) => self.tables_f[t as usize][i],
            VA::RegS(r) => regs[r.at(0)],
            VA::ConstS(c) => c,
        }
    }

    fn sweep_vals<'a>(&'a self, xs: VX, regs: &'a [f64], len: usize) -> SweepVals<'a, f64> {
        match xs {
            VX::Span(s) => SweepVals::Reals(&regs[s as usize..s as usize + len]),
            VX::TableF(t) => SweepVals::Reals(&self.tables_f[t as usize][..len]),
            VX::TableI(t) => SweepVals::Ints(&self.tables_i[t as usize][..len]),
        }
    }

    fn sweep_arg<'a>(&'a self, a: SA, regs: &'a [f64], len: usize) -> SweepArg<'a, f64> {
        match a {
            SA::Sc(s) => SweepArg::Scalar(self.ra(s, regs, 0)),
            SA::Span(s) => SweepArg::Reals(&regs[s as usize..s as usize + len]),
            SA::TableF(t) => SweepArg::Reals(&self.tables_f[t as usize][..len]),
            SA::TableI(t) => SweepArg::Ints(&self.tables_i[t as usize][..len]),
        }
    }

    fn sweep_sum(
        &self,
        kind: DistKind,
        xs: VX,
        args: &[SA; 3],
        k: u8,
        len: u32,
        regs: &[f64],
    ) -> f64 {
        let n = len as usize;
        let xv = self.sweep_vals(xs, regs, n);
        let mut sargs = [SweepArg::Scalar(0.0); 3];
        for j in 0..k as usize {
            sargs[j] = self.sweep_arg(args[j], regs, n);
        }
        if kind == DistKind::ImproperUniform {
            // Not a sweep-lowering family; sum its elem kernel directly
            // (identical in-order accumulation).
            let mut abuf = [0f64; 3];
            for (j, a) in sargs.iter().enumerate().take(sweep_arity(kind)) {
                abuf[j] = match a {
                    SweepArg::Scalar(v) => *v,
                    _ => 0.0,
                };
            }
            let mut sum = 0.0;
            for i in 0..n {
                let x = match xv {
                    SweepVals::Reals(v) => v[i],
                    SweepVals::Ints(v) => v[i] as f64,
                };
                sum += lpdf_elem_value(kind, x, &abuf).unwrap_or(f64::NAN);
            }
            return sum;
        }
        // Compile-time validation guarantees arity and lengths.
        lpdf_sweep(kind, xv, &sargs[..k as usize]).unwrap_or(f64::NAN)
    }

    fn forward(&self, ops: &[Op], regs: &mut [f64], acc: &mut Accum) {
        self.forward_iter(ops, regs, acc, 0);
    }

    fn forward_iter(&self, ops: &[Op], regs: &mut [f64], acc: &mut Accum, iter: u32) {
        for op in ops {
            match op {
                Op::Bin { f, dst, a, b } => {
                    let va = self.ra(*a, regs, iter);
                    let vb = self.ra(*b, regs, iter);
                    regs[dst.at(iter)] = f.value(va, vb);
                }
                Op::Un { f, dst, a } => {
                    let va = self.ra(*a, regs, iter);
                    regs[dst.at(iter)] = f.value(va);
                }
                Op::Mov { dst, a } => {
                    regs[dst.at(iter)] = self.ra(*a, regs, iter);
                }
                Op::VBin { f, dst, a, b, len } => {
                    for i in 0..*len as usize {
                        let va = self.va(*a, regs, i);
                        let vb = self.va(*b, regs, i);
                        regs[*dst as usize + i] = f.value(va, vb);
                    }
                }
                Op::VUn { f, dst, a, len } => {
                    for i in 0..*len as usize {
                        let va = self.va(*a, regs, i);
                        regs[*dst as usize + i] = f.value(va);
                    }
                }
                Op::Dot { dst, a, b, len } => {
                    let mut s = 0.0;
                    for i in 0..*len as usize {
                        s += self.va(*a, regs, i) * self.va(*b, regs, i);
                    }
                    regs[*dst as usize] = s;
                }
                Op::Sum { dst, a, len } => {
                    let mut s = 0.0;
                    for i in 0..*len as usize {
                        s += self.va(*a, regs, i);
                    }
                    regs[*dst as usize] = s;
                }
                Op::MatVec {
                    dst,
                    mat,
                    x,
                    rows,
                    cols,
                } => {
                    let m = &self.tables_f[*mat as usize];
                    for r in 0..*rows as usize {
                        let mut s = 0.0;
                        for c in 0..*cols as usize {
                            s += m[r * *cols as usize + c] * self.va(*x, regs, c);
                        }
                        regs[*dst as usize + r] = s;
                    }
                }
                Op::MaxVal { dst, a, len } => {
                    let mut m = f64::NEG_INFINITY;
                    for i in 0..*len as usize {
                        m = m.max(self.va(*a, regs, i));
                    }
                    regs[*dst as usize] = m;
                }
                Op::Constrain {
                    kind,
                    src,
                    dst,
                    len,
                } => {
                    for c in 0..*len as usize {
                        let u = regs[*src as usize + c];
                        regs[*dst as usize + c] = kind.to_constrained(u);
                        acc.jac += kind.log_jacobian(u);
                    }
                }
                Op::ScoreElem { kind, x, args, k } => {
                    let mut abuf = [0f64; 3];
                    for j in 0..*k as usize {
                        abuf[j] = self.ra(args[j], regs, iter);
                    }
                    let xv = self.ra(*x, regs, iter);
                    acc.score += lpdf_elem_value(*kind, xv, &abuf).unwrap_or(f64::NAN);
                }
                Op::ScoreVal {
                    kind,
                    dst,
                    x,
                    args,
                    k,
                } => {
                    let mut abuf = [0f64; 3];
                    for j in 0..*k as usize {
                        abuf[j] = self.ra(args[j], regs, iter);
                    }
                    let xv = self.ra(*x, regs, iter);
                    regs[dst.at(iter)] = lpdf_elem_value(*kind, xv, &abuf).unwrap_or(f64::NAN);
                }
                Op::ScoreSweep {
                    kind,
                    xs,
                    args,
                    k,
                    len,
                } => {
                    acc.score += self.sweep_sum(*kind, *xs, args, *k, *len, regs);
                }
                Op::ScoreSweepVal {
                    kind,
                    dst,
                    xs,
                    args,
                    k,
                    len,
                } => {
                    regs[*dst as usize] = self.sweep_sum(*kind, *xs, args, *k, *len, regs);
                }
                Op::AddScore { a } => {
                    acc.score += self.ra(*a, regs, iter);
                }
                Op::AddScoreSpan { a, len } => {
                    for i in 0..*len as usize {
                        acc.score += self.va(*a, regs, i);
                    }
                }
                Op::Loop { trip, body } => {
                    for it in 0..*trip {
                        self.forward_iter(body, regs, acc, it);
                    }
                }
            }
        }
    }

    #[inline]
    fn bump(&self, a: A, adj: &mut [f64], iter: u32, v: f64) {
        if let A::Reg(r) = a {
            adj[r.at(iter)] += v;
        }
    }

    #[inline]
    fn vbump(&self, a: VA, adj: &mut [f64], i: usize, v: f64) {
        match a {
            VA::Span(s) => adj[s as usize + i] += v,
            VA::RegS(r) => adj[r.at(0)] += v,
            VA::Table(_) | VA::ConstS(_) => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn sweep_reverse(
        &self,
        kind: DistKind,
        xs: VX,
        args: &[SA; 3],
        k: u8,
        len: u32,
        seed: f64,
        regs: &[f64],
        adj: &mut [f64],
    ) {
        if seed == 0.0 || kind == DistKind::ImproperUniform {
            // Improper-uniform partials are identically zero.
            return;
        }
        let n = len as usize;
        // Fast path: no per-element adjoint target aliases the adjoint
        // buffer, so the batched reverse entry point of `probdist` can
        // accumulate scalar-broadcast partials directly.
        let all_scalar = (0..k as usize).all(|j| matches!(args[j], SA::Sc(_)));
        if !matches!(xs, VX::Span(_)) && all_scalar {
            let xv = self.sweep_vals(xs, regs, n);
            let mut sargs = [SweepArg::Scalar(0.0); 3];
            for j in 0..k as usize {
                sargs[j] = self.sweep_arg(args[j], regs, n);
            }
            let mut d = [0.0f64; 3];
            {
                let (d0, rest) = d.split_at_mut(1);
                let (d1, d2) = rest.split_at_mut(1);
                let mut sinks = [
                    AdjSink::Scalar(&mut d0[0]),
                    AdjSink::Scalar(&mut d1[0]),
                    AdjSink::Scalar(&mut d2[0]),
                ];
                let _ = lpdf_sweep_adjoint(
                    kind,
                    xv,
                    &sargs[..k as usize],
                    seed,
                    &mut AdjSink::Skip,
                    &mut sinks,
                );
            }
            for j in 0..k as usize {
                if let SA::Sc(a) = args[j] {
                    self.bump(a, adj, 0, d[j]);
                }
            }
            return;
        }
        let mut abuf = [0f64; 3];
        for i in 0..n {
            for j in 0..k as usize {
                abuf[j] = match args[j] {
                    SA::Sc(s) => self.ra(s, regs, 0),
                    SA::Span(s) => regs[s as usize + i],
                    SA::TableF(t) => self.tables_f[t as usize][i],
                    SA::TableI(t) => self.tables_i[t as usize][i] as f64,
                };
            }
            let x = match xs {
                VX::Span(s) => regs[s as usize + i],
                VX::TableF(t) => self.tables_f[t as usize][i],
                VX::TableI(t) => self.tables_i[t as usize][i] as f64,
            };
            let Some((_, dx, dp)) = lpdf_elem_partials(kind, x, &abuf) else {
                continue;
            };
            if let VX::Span(s) = xs {
                adj[s as usize + i] += dx * seed;
            }
            for j in 0..k as usize {
                match args[j] {
                    SA::Sc(a) => self.bump(a, adj, 0, dp[j] * seed),
                    SA::Span(s) => adj[s as usize + i] += dp[j] * seed,
                    SA::TableF(_) | SA::TableI(_) => {}
                }
            }
        }
    }

    fn reverse(&self, ops: &[Op], regs: &[f64], adj: &mut [f64]) {
        self.reverse_iter(ops, regs, adj, 0);
    }

    fn reverse_iter(&self, ops: &[Op], regs: &[f64], adj: &mut [f64], iter: u32) {
        for op in ops.iter().rev() {
            match op {
                Op::Bin { f, dst, a, b } => {
                    let g = adj[dst.at(iter)];
                    if g != 0.0 {
                        let va = self.ra(*a, regs, iter);
                        let vb = self.ra(*b, regs, iter);
                        let (da, db) = f.partials(va, vb);
                        self.bump(*a, adj, iter, da * g);
                        self.bump(*b, adj, iter, db * g);
                    }
                }
                Op::Un { f, dst, a } => {
                    let g = adj[dst.at(iter)];
                    if g != 0.0 {
                        let va = self.ra(*a, regs, iter);
                        let fx = regs[dst.at(iter)];
                        self.bump(*a, adj, iter, f.partial(va, fx) * g);
                    }
                }
                Op::Mov { dst, a } => {
                    let g = adj[dst.at(iter)];
                    if g != 0.0 {
                        self.bump(*a, adj, iter, g);
                    }
                }
                Op::VBin { f, dst, a, b, len } => {
                    for i in 0..*len as usize {
                        let g = adj[*dst as usize + i];
                        if g != 0.0 {
                            let va = self.va(*a, regs, i);
                            let vb = self.va(*b, regs, i);
                            let (da, db) = f.partials(va, vb);
                            self.vbump(*a, adj, i, da * g);
                            self.vbump(*b, adj, i, db * g);
                        }
                    }
                }
                Op::VUn { f, dst, a, len } => {
                    for i in 0..*len as usize {
                        let g = adj[*dst as usize + i];
                        if g != 0.0 {
                            let va = self.va(*a, regs, i);
                            let fx = regs[*dst as usize + i];
                            self.vbump(*a, adj, i, f.partial(va, fx) * g);
                        }
                    }
                }
                Op::Dot { dst, a, b, len } => {
                    let g = adj[*dst as usize];
                    if g != 0.0 {
                        for i in 0..*len as usize {
                            let va = self.va(*a, regs, i);
                            let vb = self.va(*b, regs, i);
                            self.vbump(*a, adj, i, vb * g);
                            self.vbump(*b, adj, i, va * g);
                        }
                    }
                }
                Op::Sum { dst, a, len } => {
                    let g = adj[*dst as usize];
                    if g != 0.0 {
                        for i in 0..*len as usize {
                            self.vbump(*a, adj, i, g);
                        }
                    }
                }
                Op::MatVec {
                    dst,
                    mat,
                    x,
                    rows,
                    cols,
                } => {
                    let m = &self.tables_f[*mat as usize];
                    for r in 0..*rows as usize {
                        let g = adj[*dst as usize + r];
                        if g != 0.0 {
                            for c in 0..*cols as usize {
                                self.vbump(*x, adj, c, m[r * *cols as usize + c] * g);
                            }
                        }
                    }
                }
                Op::MaxVal { .. } => {}
                Op::Constrain {
                    kind,
                    src,
                    dst,
                    len,
                } => {
                    for c in 0..*len as usize {
                        let u = regs[*src as usize + c];
                        let g = adj[*dst as usize + c];
                        let (dxdu, djdu) = constraint_partials(*kind, u);
                        adj[*src as usize + c] += g * dxdu + djdu;
                    }
                }
                Op::ScoreElem { kind, x, args, k } => {
                    let mut abuf = [0f64; 3];
                    for j in 0..*k as usize {
                        abuf[j] = self.ra(args[j], regs, iter);
                    }
                    let xv = self.ra(*x, regs, iter);
                    if let Some((_, dx, dp)) = lpdf_elem_partials(*kind, xv, &abuf) {
                        self.bump(*x, adj, iter, dx);
                        for j in 0..*k as usize {
                            self.bump(args[j], adj, iter, dp[j]);
                        }
                    }
                }
                Op::ScoreVal {
                    kind,
                    dst,
                    x,
                    args,
                    k,
                } => {
                    let g = adj[dst.at(iter)];
                    if g != 0.0 {
                        let mut abuf = [0f64; 3];
                        for j in 0..*k as usize {
                            abuf[j] = self.ra(args[j], regs, iter);
                        }
                        let xv = self.ra(*x, regs, iter);
                        if let Some((_, dx, dp)) = lpdf_elem_partials(*kind, xv, &abuf) {
                            self.bump(*x, adj, iter, dx * g);
                            for j in 0..*k as usize {
                                self.bump(args[j], adj, iter, dp[j] * g);
                            }
                        }
                    }
                }
                Op::ScoreSweep {
                    kind,
                    xs,
                    args,
                    k,
                    len,
                } => {
                    self.sweep_reverse(*kind, *xs, args, *k, *len, 1.0, regs, adj);
                }
                Op::ScoreSweepVal {
                    kind,
                    dst,
                    xs,
                    args,
                    k,
                    len,
                } => {
                    let g = adj[*dst as usize];
                    self.sweep_reverse(*kind, *xs, args, *k, *len, g, regs, adj);
                }
                Op::AddScore { a } => {
                    self.bump(*a, adj, iter, 1.0);
                }
                Op::AddScoreSpan { a, len } => {
                    for i in 0..*len as usize {
                        self.vbump(*a, adj, i, 1.0);
                    }
                }
                Op::Loop { trip, body } => {
                    for it in (0..*trip).rev() {
                        self.reverse_iter(body, regs, adj, it);
                    }
                }
            }
        }
    }

    // -- Lane-widened evaluation ------------------------------------------
    //
    // Each method below is the SoA mirror of its single-lane counterpart:
    // identical op walk, identical per-lane formulas and accumulation order,
    // identical reverse zero-guards (applied per lane), so lane l computes
    // bitwise what a single-point evaluation of lane l's point would.

    /// Loads a scalar operand's lane row (constants broadcast).
    #[inline]
    fn ra_l<const L: usize>(&self, a: A, regs: &[f64], iter: u32) -> [f64; L] {
        match a {
            A::Reg(r) => lane_row::<L>(regs, r.at(iter)),
            A::Const(c) => [c; L],
            A::Table(t) => [self.tables_f[t as usize][iter as usize]; L],
        }
    }

    /// Loads element `i` of a vector operand's lane rows.
    #[inline]
    fn va_l<const L: usize>(&self, a: VA, regs: &[f64], i: usize) -> [f64; L] {
        match a {
            VA::Span(s) => lane_row::<L>(regs, s as usize + i),
            VA::Table(t) => [self.tables_f[t as usize][i]; L],
            VA::RegS(r) => lane_row::<L>(regs, r.at(0)),
            VA::ConstS(c) => [c; L],
        }
    }

    #[inline]
    fn bump_l<const L: usize>(&self, a: A, adj: &mut [f64], iter: u32, v: &[f64; L]) {
        if let A::Reg(r) = a {
            let o = r.at(iter) * L;
            for l in 0..L {
                adj[o + l] += v[l];
            }
        }
    }

    #[inline]
    fn vbump_l<const L: usize>(&self, a: VA, adj: &mut [f64], i: usize, v: &[f64; L]) {
        match a {
            VA::Span(s) => {
                let o = (s as usize + i) * L;
                for l in 0..L {
                    adj[o + l] += v[l];
                }
            }
            VA::RegS(r) => {
                let o = r.at(0) * L;
                for l in 0..L {
                    adj[o + l] += v[l];
                }
            }
            VA::Table(_) | VA::ConstS(_) => {}
        }
    }

    /// Loads element `i` of a sweep's observed values as a lane row.
    #[inline]
    fn sweep_x_lanes<const L: usize>(&self, xs: VX, regs: &[f64], i: usize) -> [f64; L] {
        match xs {
            VX::Span(s) => lane_row::<L>(regs, s as usize + i),
            VX::TableF(t) => [self.tables_f[t as usize][i]; L],
            VX::TableI(t) => [self.tables_i[t as usize][i] as f64; L],
        }
    }

    /// Resolves a sweep's observed values for the lane element loops (one
    /// operand match per sweep — see [`LaneOp`]).
    #[inline]
    fn lane_x_op<'r, const L: usize>(&'r self, xs: VX, regs: &'r [f64], n: usize) -> LaneOp<'r, L> {
        match xs {
            VX::Span(s) => LaneOp::Rows(&regs[s as usize * L..(s as usize + n) * L]),
            VX::TableF(t) => LaneOp::Table(&self.tables_f[t as usize][..n]),
            VX::TableI(t) => LaneOp::Ints(&self.tables_i[t as usize][..n]),
        }
    }

    /// Resolves one sweep argument for the lane element loops.
    #[inline]
    fn lane_arg_op<'r, const L: usize>(
        &'r self,
        a: SA,
        regs: &'r [f64],
        n: usize,
    ) -> LaneOp<'r, L> {
        match a {
            SA::Sc(s) => LaneOp::Fixed(self.ra_l::<L>(s, regs, 0)),
            SA::Span(s) => LaneOp::Rows(&regs[s as usize * L..(s as usize + n) * L]),
            SA::TableF(t) => LaneOp::Table(&self.tables_f[t as usize][..n]),
            SA::TableI(t) => LaneOp::Ints(&self.tables_i[t as usize][..n]),
        }
    }

    /// Lane mirror of `sweep_sum`: per-lane sums in identical element order,
    /// with the same ImproperUniform and unsupported-family handling.
    fn sweep_sum_lanes<const L: usize>(
        &self,
        kind: DistKind,
        xs: VX,
        args: &[SA; 3],
        k: u8,
        len: u32,
        regs: &[f64],
    ) -> [f64; L] {
        let n = len as usize;
        let mut sum = [0.0; L];
        if kind == DistKind::ImproperUniform {
            let mut argv = [[0.0; L]; 3];
            for j in 0..(k as usize).min(sweep_arity(kind)) {
                if let SA::Sc(s) = args[j] {
                    argv[j] = self.ra_l::<L>(s, regs, 0);
                }
            }
            for i in 0..n {
                let xv = self.sweep_x_lanes::<L>(xs, regs, i);
                let lp = lpdf_elem_value_lanes::<L>(kind, &xv, &argv).unwrap_or([f64::NAN; L]);
                for l in 0..L {
                    sum[l] += lp[l];
                }
            }
            return sum;
        }
        // `lpdf_sweep`'s guards surface as NaN exactly like the single-lane
        // path (compile-time validation makes them unreachable in practice).
        if !supports_sweep(kind) || (k as usize) < sweep_arity(kind) {
            return [f64::NAN; L];
        }
        if kind == DistKind::Normal && k == 2 {
            return self.normal_sweep_sum_lanes::<L>(xs, args, n, regs);
        }
        let xo = self.lane_x_op::<L>(xs, regs, n);
        let mut aops = [LaneOp::Fixed([0.0; L]); 3];
        for j in 0..k as usize {
            aops[j] = self.lane_arg_op::<L>(args[j], regs, n);
        }
        for i in 0..n {
            let xv = xo.row(i);
            let argv = [aops[0].row(i), aops[1].row(i), aops[2].row(i)];
            let lp = lpdf_elem_value_lanes::<L>(kind, &xv, &argv).unwrap_or([f64::NAN; L]);
            for l in 0..L {
                sum[l] += lp[l];
            }
        }
        sum
    }

    /// Normal-sweep forward fast path: hoists the per-scale additive
    /// constant `-½·ln(2π) - ln σ` out of the element loop — per lane for a
    /// scalar-broadcast sigma, per element for a table sigma. Bitwise equal
    /// to the generic walk because the shared kernel computes exactly
    /// `normal_lpdf_from_const(normal_lpdf_const(σ), …)` per element, and
    /// `normal_lpdf_const` is deterministic in σ.
    fn normal_sweep_sum_lanes<const L: usize>(
        &self,
        xs: VX,
        args: &[SA; 3],
        n: usize,
        regs: &[f64],
    ) -> [f64; L] {
        let xo = self.lane_x_op::<L>(xs, regs, n);
        let mo = self.lane_arg_op::<L>(args[0], regs, n);
        let mut sum = [0.0; L];
        match self.lane_arg_op::<L>(args[1], regs, n) {
            LaneOp::Fixed(sig) => {
                let mut c = [0.0; L];
                for l in 0..L {
                    c[l] = normal_lpdf_const(sig[l]);
                }
                for i in 0..n {
                    let x = xo.row(i);
                    let mu = mo.row(i);
                    for l in 0..L {
                        sum[l] += normal_lpdf_from_const(c[l], x[l], mu[l], sig[l]);
                    }
                }
            }
            so @ (LaneOp::Table(_) | LaneOp::Ints(_)) => {
                for i in 0..n {
                    let sg = so.row(i);
                    // One scale per element, shared by every lane.
                    let ci = normal_lpdf_const(sg[0]);
                    let x = xo.row(i);
                    let mu = mo.row(i);
                    for l in 0..L {
                        sum[l] += normal_lpdf_from_const(ci, x[l], mu[l], sg[l]);
                    }
                }
            }
            so => {
                // Lane-varying per-element sigma: nothing to hoist but the
                // operand resolution and family dispatch.
                for i in 0..n {
                    let x = xo.row(i);
                    let mu = mo.row(i);
                    let sg = so.row(i);
                    for l in 0..L {
                        sum[l] +=
                            normal_lpdf_from_const(normal_lpdf_const(sg[l]), x[l], mu[l], sg[l]);
                    }
                }
            }
        }
        sum
    }

    /// Lane mirror of `sweep_reverse`, including the scalar-broadcast fast
    /// path's accumulate-then-bump structure. Zero-seed lanes are masked the
    /// way a zero seed skips the whole single-lane sweep.
    #[allow(clippy::too_many_arguments)]
    fn sweep_reverse_lanes<const L: usize>(
        &self,
        kind: DistKind,
        xs: VX,
        args: &[SA; 3],
        k: u8,
        len: u32,
        seed: &[f64; L],
        regs: &[f64],
        adj: &mut [f64],
    ) {
        if seed.iter().all(|&s| s == 0.0) || kind == DistKind::ImproperUniform {
            // Improper-uniform partials are identically zero.
            return;
        }
        let n = len as usize;
        if kind == DistKind::Normal && k == 2 {
            return self.normal_sweep_reverse_lanes::<L>(xs, args, n, seed, regs, adj);
        }
        let all_scalar = (0..k as usize).all(|j| matches!(args[j], SA::Sc(_)));
        let xo = self.lane_x_op::<L>(xs, regs, n);
        let mut aops = [LaneOp::Fixed([0.0; L]); 3];
        for j in 0..k as usize {
            aops[j] = self.lane_arg_op::<L>(args[j], regs, n);
        }
        if !matches!(xs, VX::Span(_)) && all_scalar {
            // Scalar-broadcast partials accumulate into per-argument lane
            // totals, bumped once after the element walk.
            let mut d = [[0.0; L]; 3];
            for i in 0..n {
                let xv = xo.row(i);
                let argv = [aops[0].row(i), aops[1].row(i), aops[2].row(i)];
                let Some((_dx, dp)) = lpdf_elem_partials_only_lanes::<L>(kind, &xv, &argv) else {
                    continue;
                };
                for j in 0..k as usize {
                    for l in 0..L {
                        if seed[l] != 0.0 {
                            d[j][l] += dp[j][l] * seed[l];
                        }
                    }
                }
            }
            for j in 0..k as usize {
                if let SA::Sc(a) = args[j] {
                    self.bump_l::<L>(a, adj, 0, &d[j]);
                }
            }
            return;
        }
        for i in 0..n {
            let xv = xo.row(i);
            let argv = [aops[0].row(i), aops[1].row(i), aops[2].row(i)];
            let Some((dx, dp)) = lpdf_elem_partials_only_lanes::<L>(kind, &xv, &argv) else {
                continue;
            };
            if let VX::Span(s) = xs {
                let o = (s as usize + i) * L;
                for l in 0..L {
                    if seed[l] != 0.0 {
                        adj[o + l] += dx[l] * seed[l];
                    }
                }
            }
            for j in 0..k as usize {
                match args[j] {
                    SA::Sc(a) => {
                        let mut b = [0.0; L];
                        for l in 0..L {
                            if seed[l] != 0.0 {
                                b[l] = dp[j][l] * seed[l];
                            }
                        }
                        self.bump_l::<L>(a, adj, 0, &b);
                    }
                    SA::Span(s) => {
                        let o = (s as usize + i) * L;
                        for l in 0..L {
                            if seed[l] != 0.0 {
                                adj[o + l] += dp[j][l] * seed[l];
                            }
                        }
                    }
                    SA::TableF(_) | SA::TableI(_) => {}
                }
            }
        }
    }

    /// Normal-sweep reverse fast path: partials via [`normal_partials_only`]
    /// — no per-element `ln` at all (the log appears only in the density
    /// value, which the reverse pass never consumes). The walk preserves the
    /// generic structure exactly: the scalar-broadcast accumulate-then-bump
    /// split, the element order, the x-then-args update order, and the
    /// per-lane zero-seed guards.
    fn normal_sweep_reverse_lanes<const L: usize>(
        &self,
        xs: VX,
        args: &[SA; 3],
        n: usize,
        seed: &[f64; L],
        regs: &[f64],
        adj: &mut [f64],
    ) {
        let xo = self.lane_x_op::<L>(xs, regs, n);
        let mo = self.lane_arg_op::<L>(args[0], regs, n);
        let so = self.lane_arg_op::<L>(args[1], regs, n);
        let all_scalar = matches!(args[0], SA::Sc(_)) && matches!(args[1], SA::Sc(_));
        if !matches!(xs, VX::Span(_)) && all_scalar {
            let mut dm = [0.0; L];
            let mut ds = [0.0; L];
            for i in 0..n {
                let x = xo.row(i);
                let mu = mo.row(i);
                let sg = so.row(i);
                for l in 0..L {
                    if seed[l] != 0.0 {
                        let (_, dmu, dsig) = normal_partials_only(x[l], mu[l], sg[l]);
                        dm[l] += dmu * seed[l];
                        ds[l] += dsig * seed[l];
                    }
                }
            }
            if let SA::Sc(a) = args[0] {
                self.bump_l::<L>(a, adj, 0, &dm);
            }
            if let SA::Sc(a) = args[1] {
                self.bump_l::<L>(a, adj, 0, &ds);
            }
            return;
        }
        for i in 0..n {
            let x = xo.row(i);
            let mu = mo.row(i);
            let sg = so.row(i);
            let mut dx = [0.0; L];
            let mut dmu = [0.0; L];
            let mut dsg = [0.0; L];
            for l in 0..L {
                let (a, b, c) = normal_partials_only(x[l], mu[l], sg[l]);
                dx[l] = a;
                dmu[l] = b;
                dsg[l] = c;
            }
            if let VX::Span(s) = xs {
                let o = (s as usize + i) * L;
                for l in 0..L {
                    if seed[l] != 0.0 {
                        adj[o + l] += dx[l] * seed[l];
                    }
                }
            }
            for (j, dp) in [dmu, dsg].iter().enumerate() {
                match args[j] {
                    SA::Sc(a) => {
                        let mut b = [0.0; L];
                        for l in 0..L {
                            if seed[l] != 0.0 {
                                b[l] = dp[l] * seed[l];
                            }
                        }
                        self.bump_l::<L>(a, adj, 0, &b);
                    }
                    SA::Span(s) => {
                        let o = (s as usize + i) * L;
                        for l in 0..L {
                            if seed[l] != 0.0 {
                                adj[o + l] += dp[l] * seed[l];
                            }
                        }
                    }
                    SA::TableF(_) | SA::TableI(_) => {}
                }
            }
        }
    }

    /// Lane mirror of `forward_iter`.
    fn forward_lanes<const L: usize>(
        &self,
        ops: &[Op],
        regs: &mut [f64],
        score: &mut [f64; L],
        jac: &mut [f64; L],
        iter: u32,
    ) {
        for op in ops {
            match op {
                Op::Bin { f, dst, a, b } => {
                    let va = self.ra_l::<L>(*a, regs, iter);
                    let vb = self.ra_l::<L>(*b, regs, iter);
                    let o = dst.at(iter) * L;
                    regs[o..o + L].copy_from_slice(&f.value_lanes::<L>(&va, &vb));
                }
                Op::Un { f, dst, a } => {
                    let va = self.ra_l::<L>(*a, regs, iter);
                    let o = dst.at(iter) * L;
                    regs[o..o + L].copy_from_slice(&f.value_lanes::<L>(&va));
                }
                Op::Mov { dst, a } => {
                    let va = self.ra_l::<L>(*a, regs, iter);
                    let o = dst.at(iter) * L;
                    regs[o..o + L].copy_from_slice(&va);
                }
                Op::VBin { f, dst, a, b, len } => {
                    for i in 0..*len as usize {
                        let va = self.va_l::<L>(*a, regs, i);
                        let vb = self.va_l::<L>(*b, regs, i);
                        let o = (*dst as usize + i) * L;
                        regs[o..o + L].copy_from_slice(&f.value_lanes::<L>(&va, &vb));
                    }
                }
                Op::VUn { f, dst, a, len } => {
                    for i in 0..*len as usize {
                        let va = self.va_l::<L>(*a, regs, i);
                        let o = (*dst as usize + i) * L;
                        regs[o..o + L].copy_from_slice(&f.value_lanes::<L>(&va));
                    }
                }
                Op::Dot { dst, a, b, len } => {
                    let mut s = [0.0; L];
                    for i in 0..*len as usize {
                        let va = self.va_l::<L>(*a, regs, i);
                        let vb = self.va_l::<L>(*b, regs, i);
                        for l in 0..L {
                            s[l] += va[l] * vb[l];
                        }
                    }
                    let o = *dst as usize * L;
                    regs[o..o + L].copy_from_slice(&s);
                }
                Op::Sum { dst, a, len } => {
                    let mut s = [0.0; L];
                    for i in 0..*len as usize {
                        let va = self.va_l::<L>(*a, regs, i);
                        for l in 0..L {
                            s[l] += va[l];
                        }
                    }
                    let o = *dst as usize * L;
                    regs[o..o + L].copy_from_slice(&s);
                }
                Op::MatVec {
                    dst,
                    mat,
                    x,
                    rows,
                    cols,
                } => {
                    let cols_ = *cols as usize;
                    for r in 0..*rows as usize {
                        let mut s = [0.0; L];
                        for c in 0..cols_ {
                            let m = self.tables_f[*mat as usize][r * cols_ + c];
                            let vx = self.va_l::<L>(*x, regs, c);
                            for l in 0..L {
                                s[l] += m * vx[l];
                            }
                        }
                        let o = (*dst as usize + r) * L;
                        regs[o..o + L].copy_from_slice(&s);
                    }
                }
                Op::MaxVal { dst, a, len } => {
                    let mut m = [f64::NEG_INFINITY; L];
                    for i in 0..*len as usize {
                        let va = self.va_l::<L>(*a, regs, i);
                        for l in 0..L {
                            m[l] = m[l].max(va[l]);
                        }
                    }
                    let o = *dst as usize * L;
                    regs[o..o + L].copy_from_slice(&m);
                }
                Op::Constrain {
                    kind,
                    src,
                    dst,
                    len,
                } => {
                    for c in 0..*len as usize {
                        let so = (*src as usize + c) * L;
                        let dof = (*dst as usize + c) * L;
                        for l in 0..L {
                            let u = regs[so + l];
                            regs[dof + l] = kind.to_constrained(u);
                            jac[l] += kind.log_jacobian(u);
                        }
                    }
                }
                Op::ScoreElem { kind, x, args, k } => {
                    let mut argv = [[0.0; L]; 3];
                    for j in 0..*k as usize {
                        argv[j] = self.ra_l::<L>(args[j], regs, iter);
                    }
                    let xv = self.ra_l::<L>(*x, regs, iter);
                    let lp = lpdf_elem_value_lanes::<L>(*kind, &xv, &argv).unwrap_or([f64::NAN; L]);
                    for l in 0..L {
                        score[l] += lp[l];
                    }
                }
                Op::ScoreVal {
                    kind,
                    dst,
                    x,
                    args,
                    k,
                } => {
                    let mut argv = [[0.0; L]; 3];
                    for j in 0..*k as usize {
                        argv[j] = self.ra_l::<L>(args[j], regs, iter);
                    }
                    let xv = self.ra_l::<L>(*x, regs, iter);
                    let lp = lpdf_elem_value_lanes::<L>(*kind, &xv, &argv).unwrap_or([f64::NAN; L]);
                    let o = dst.at(iter) * L;
                    regs[o..o + L].copy_from_slice(&lp);
                }
                Op::ScoreSweep {
                    kind,
                    xs,
                    args,
                    k,
                    len,
                } => {
                    let s = self.sweep_sum_lanes::<L>(*kind, *xs, args, *k, *len, regs);
                    for l in 0..L {
                        score[l] += s[l];
                    }
                }
                Op::ScoreSweepVal {
                    kind,
                    dst,
                    xs,
                    args,
                    k,
                    len,
                } => {
                    let s = self.sweep_sum_lanes::<L>(*kind, *xs, args, *k, *len, regs);
                    let o = *dst as usize * L;
                    regs[o..o + L].copy_from_slice(&s);
                }
                Op::AddScore { a } => {
                    let va = self.ra_l::<L>(*a, regs, iter);
                    for l in 0..L {
                        score[l] += va[l];
                    }
                }
                Op::AddScoreSpan { a, len } => {
                    for i in 0..*len as usize {
                        let va = self.va_l::<L>(*a, regs, i);
                        for l in 0..L {
                            score[l] += va[l];
                        }
                    }
                }
                Op::Loop { trip, body } => {
                    for it in 0..*trip {
                        self.forward_lanes::<L>(body, regs, score, jac, it);
                    }
                }
            }
        }
    }

    /// Lane mirror of `reverse_iter`. The single-lane `g != 0.0` guards are
    /// semantic (they keep `0 · ∞` from minting NaNs), so they apply **per
    /// lane**: a zero-adjoint lane contributes exactly 0.0, never a masked
    /// garbage product.
    fn reverse_lanes<const L: usize>(&self, ops: &[Op], regs: &[f64], adj: &mut [f64], iter: u32) {
        for op in ops.iter().rev() {
            match op {
                Op::Bin { f, dst, a, b } => {
                    let g = lane_row::<L>(adj, dst.at(iter));
                    if g.iter().any(|&x| x != 0.0) {
                        let va = self.ra_l::<L>(*a, regs, iter);
                        let vb = self.ra_l::<L>(*b, regs, iter);
                        // Partials for every lane (dispatch-once); the g != 0
                        // guard still gates the accumulation, so zero-adjoint
                        // lanes contribute exactly 0.0 as before.
                        let (pa, pb) = f.partials_lanes::<L>(&va, &vb);
                        let mut ga = [0.0; L];
                        let mut gb = [0.0; L];
                        for l in 0..L {
                            if g[l] != 0.0 {
                                ga[l] = pa[l] * g[l];
                                gb[l] = pb[l] * g[l];
                            }
                        }
                        self.bump_l::<L>(*a, adj, iter, &ga);
                        self.bump_l::<L>(*b, adj, iter, &gb);
                    }
                }
                Op::Un { f, dst, a } => {
                    let g = lane_row::<L>(adj, dst.at(iter));
                    if g.iter().any(|&x| x != 0.0) {
                        let va = self.ra_l::<L>(*a, regs, iter);
                        let fx = lane_row::<L>(regs, dst.at(iter));
                        let p = f.partial_lanes::<L>(&va, &fx);
                        let mut ga = [0.0; L];
                        for l in 0..L {
                            if g[l] != 0.0 {
                                ga[l] = p[l] * g[l];
                            }
                        }
                        self.bump_l::<L>(*a, adj, iter, &ga);
                    }
                }
                Op::Mov { dst, a } => {
                    let g = lane_row::<L>(adj, dst.at(iter));
                    if g.iter().any(|&x| x != 0.0) {
                        self.bump_l::<L>(*a, adj, iter, &g);
                    }
                }
                Op::VBin { f, dst, a, b, len } => {
                    for i in 0..*len as usize {
                        let g = lane_row::<L>(adj, *dst as usize + i);
                        if g.iter().any(|&x| x != 0.0) {
                            let va = self.va_l::<L>(*a, regs, i);
                            let vb = self.va_l::<L>(*b, regs, i);
                            let (pa, pb) = f.partials_lanes::<L>(&va, &vb);
                            let mut ga = [0.0; L];
                            let mut gb = [0.0; L];
                            for l in 0..L {
                                if g[l] != 0.0 {
                                    ga[l] = pa[l] * g[l];
                                    gb[l] = pb[l] * g[l];
                                }
                            }
                            self.vbump_l::<L>(*a, adj, i, &ga);
                            self.vbump_l::<L>(*b, adj, i, &gb);
                        }
                    }
                }
                Op::VUn { f, dst, a, len } => {
                    for i in 0..*len as usize {
                        let g = lane_row::<L>(adj, *dst as usize + i);
                        if g.iter().any(|&x| x != 0.0) {
                            let va = self.va_l::<L>(*a, regs, i);
                            let fx = lane_row::<L>(regs, *dst as usize + i);
                            let p = f.partial_lanes::<L>(&va, &fx);
                            let mut ga = [0.0; L];
                            for l in 0..L {
                                if g[l] != 0.0 {
                                    ga[l] = p[l] * g[l];
                                }
                            }
                            self.vbump_l::<L>(*a, adj, i, &ga);
                        }
                    }
                }
                Op::Dot { dst, a, b, len } => {
                    let g = lane_row::<L>(adj, *dst as usize);
                    if g.iter().any(|&x| x != 0.0) {
                        for i in 0..*len as usize {
                            let va = self.va_l::<L>(*a, regs, i);
                            let vb = self.va_l::<L>(*b, regs, i);
                            let mut ba = [0.0; L];
                            let mut bb = [0.0; L];
                            for l in 0..L {
                                if g[l] != 0.0 {
                                    ba[l] = vb[l] * g[l];
                                    bb[l] = va[l] * g[l];
                                }
                            }
                            self.vbump_l::<L>(*a, adj, i, &ba);
                            self.vbump_l::<L>(*b, adj, i, &bb);
                        }
                    }
                }
                Op::Sum { dst, a, len } => {
                    let g = lane_row::<L>(adj, *dst as usize);
                    if g.iter().any(|&x| x != 0.0) {
                        for i in 0..*len as usize {
                            self.vbump_l::<L>(*a, adj, i, &g);
                        }
                    }
                }
                Op::MatVec {
                    dst,
                    mat,
                    x,
                    rows,
                    cols,
                } => {
                    let cols_ = *cols as usize;
                    for r in 0..*rows as usize {
                        let g = lane_row::<L>(adj, *dst as usize + r);
                        if g.iter().any(|&x| x != 0.0) {
                            for c in 0..cols_ {
                                let m = self.tables_f[*mat as usize][r * cols_ + c];
                                let mut bx = [0.0; L];
                                for l in 0..L {
                                    if g[l] != 0.0 {
                                        bx[l] = m * g[l];
                                    }
                                }
                                self.vbump_l::<L>(*x, adj, c, &bx);
                            }
                        }
                    }
                }
                Op::MaxVal { .. } => {}
                Op::Constrain {
                    kind,
                    src,
                    dst,
                    len,
                } => {
                    for c in 0..*len as usize {
                        let so = (*src as usize + c) * L;
                        let dof = (*dst as usize + c) * L;
                        for l in 0..L {
                            let u = regs[so + l];
                            let g = adj[dof + l];
                            let (dxdu, djdu) = constraint_partials(*kind, u);
                            adj[so + l] += g * dxdu + djdu;
                        }
                    }
                }
                Op::ScoreElem { kind, x, args, k } => {
                    let mut argv = [[0.0; L]; 3];
                    for j in 0..*k as usize {
                        argv[j] = self.ra_l::<L>(args[j], regs, iter);
                    }
                    let xv = self.ra_l::<L>(*x, regs, iter);
                    if let Some((dx, dp)) = lpdf_elem_partials_only_lanes::<L>(*kind, &xv, &argv) {
                        self.bump_l::<L>(*x, adj, iter, &dx);
                        for j in 0..*k as usize {
                            self.bump_l::<L>(args[j], adj, iter, &dp[j]);
                        }
                    }
                }
                Op::ScoreVal {
                    kind,
                    dst,
                    x,
                    args,
                    k,
                } => {
                    let g = lane_row::<L>(adj, dst.at(iter));
                    if g.iter().any(|&x| x != 0.0) {
                        let mut argv = [[0.0; L]; 3];
                        for j in 0..*k as usize {
                            argv[j] = self.ra_l::<L>(args[j], regs, iter);
                        }
                        let xv = self.ra_l::<L>(*x, regs, iter);
                        if let Some((dx, dp)) =
                            lpdf_elem_partials_only_lanes::<L>(*kind, &xv, &argv)
                        {
                            let mut gx = [0.0; L];
                            let mut gp = [[0.0; L]; 3];
                            for l in 0..L {
                                if g[l] != 0.0 {
                                    gx[l] = dx[l] * g[l];
                                    for (gpj, dpj) in gp.iter_mut().zip(&dp).take(*k as usize) {
                                        gpj[l] = dpj[l] * g[l];
                                    }
                                }
                            }
                            self.bump_l::<L>(*x, adj, iter, &gx);
                            for j in 0..*k as usize {
                                self.bump_l::<L>(args[j], adj, iter, &gp[j]);
                            }
                        }
                    }
                }
                Op::ScoreSweep {
                    kind,
                    xs,
                    args,
                    k,
                    len,
                } => {
                    self.sweep_reverse_lanes::<L>(*kind, *xs, args, *k, *len, &[1.0; L], regs, adj);
                }
                Op::ScoreSweepVal {
                    kind,
                    dst,
                    xs,
                    args,
                    k,
                    len,
                } => {
                    let g = lane_row::<L>(adj, *dst as usize);
                    self.sweep_reverse_lanes::<L>(*kind, *xs, args, *k, *len, &g, regs, adj);
                }
                Op::AddScore { a } => {
                    self.bump_l::<L>(*a, adj, iter, &[1.0; L]);
                }
                Op::AddScoreSpan { a, len } => {
                    for i in 0..*len as usize {
                        self.vbump_l::<L>(*a, adj, i, &[1.0; L]);
                    }
                }
                Op::Loop { trip, body } => {
                    for it in (0..*trip).rev() {
                        self.reverse_lanes::<L>(body, regs, adj, it);
                    }
                }
            }
        }
    }
}

/// Score accumulators, kept separate so `score + jac` reproduces the
/// interpreted path's `result.score + log_jac` summation exactly.
#[derive(Default)]
struct Accum {
    score: f64,
    jac: f64,
}

/// `(∂x/∂u, ∂log|J|/∂u)` of a constraint transform — the analytic partials
/// of [`Constraint::to_constrained`] / [`Constraint::log_jacobian`].
fn constraint_partials(kind: Constraint, u: f64) -> (f64, f64) {
    match kind {
        Constraint::None => (1.0, 0.0),
        Constraint::Lower(_) => (u.exp(), 1.0),
        Constraint::Upper(_) => (-u.exp(), 1.0),
        Constraint::Bounded(l, h) => {
            let s = minidiff::special::sigmoid(u);
            ((h - l) * s * (1.0 - s), 1.0 - 2.0 * s)
        }
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

static NO_EXT: NoExternals = NoExternals;

/// One element of a symbolic vector: a baked constant or an absolute
/// register.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Elem {
    K(f64),
    R(u32),
}

/// The compile-time binding of a frame slot on the symbolic side.
#[derive(Debug, Clone, PartialEq)]
enum SymVal {
    Scalar(u32),
    Vector(Vec<Elem>),
}

/// An expression compilation result.
#[derive(Debug, Clone, PartialEq)]
enum CVal {
    /// Fully data-determined: folded at compile time.
    Known(Value<f64>),
    /// A symbolic scalar in an absolute register.
    Scalar(u32),
    /// A symbolic flat real vector.
    Vector(Vec<Elem>),
}

/// A scalar-or-span view used by the element-wise combinators.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CV1 {
    S(A),
    V(VA, u32),
}

/// The compile-time binding of a slot *inside* a compiled loop body.
#[derive(Debug, Clone)]
enum LBind {
    /// The loop counter (`value = lo + iter`).
    Counter,
    /// Known per-iteration values (data indexed by the counter).
    IterKnown(std::rc::Rc<Vec<Value<f64>>>),
    /// A symbolic scalar, possibly strided by the iteration.
    Reg(Reg),
}

/// Scalar-expansion chain of one loop-carried slot: `w` writes per
/// iteration over `w·trip + 1` registers, `chain[0]` holding the pre-loop
/// value.
#[derive(Debug, Clone, Copy)]
struct Chain {
    start: u32,
    w: u32,
    k: u32,
}

/// A pending element-map update from an indexed write inside a loop.
#[derive(Debug, Clone, Copy)]
struct ElemWrite {
    slot: u32,
    base: u32,
    idx0: usize,
}

/// Loop-compilation state (one level; nested symbolic loops decline).
struct Lc {
    counter: u32,
    lo: i64,
    trip: u32,
    ops: Vec<Op>,
    binds: HashMap<u32, LBind>,
    chains: HashMap<u32, Chain>,
    elem_writes: Vec<ElemWrite>,
    /// Slots whose elements the loop writes (reads of these decline).
    vec_writes: Vec<u32>,
}

/// Classification of an expression's dependencies inside a loop body.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
enum Dep {
    /// Only globally known slots: folds to one constant.
    Invariant,
    /// Known slots plus the counter / per-iteration-known slots: folds to a
    /// per-iteration table.
    CounterKnown,
    /// Reads a symbolic register somewhere.
    Symbolic,
}

struct Compiler<'a> {
    resolved: &'a ResolvedProgram,
    functions: &'a [FunDecl],
    /// Data-determined slot values; symbolic slots are cleared here.
    known: Frame<f64>,
    sym: HashMap<u32, SymVal>,
    /// Constrained-register layout of each parameter slot. The frame slot is
    /// only *bound* when its `sample` site executes, mirroring the
    /// interpreter's trace semantics (a parameter read before its site is an
    /// unbound-variable error, which such programs keep by declining).
    param_regs: HashMap<u32, SymVal>,
    /// Cache of materialized spans per slot, invalidated on rebinding.
    span_cache: HashMap<u32, u32>,
    next_reg: u32,
    const_init: Vec<(u32, f64)>,
    tables_f: Vec<Vec<f64>>,
    tables_i: Vec<Vec<i64>>,
    outer_ops: Vec<Op>,
    lc: Option<Lc>,
}

/// Whether a sweep could not compile directly but its retained fallback
/// loop should be compiled instead (shapes where the runtime would also
/// take the fallback — and succeed).
struct UseLoop;

fn decline(reason: impl Into<String>) -> Decline {
    Decline::new(reason)
}

fn for_each_slot(e: &RExpr, f: &mut impl FnMut(u32)) {
    match e {
        RExpr::IntLit(_) | RExpr::RealLit(_) | RExpr::StringLit(_) => {}
        RExpr::Slot(s) => f(*s),
        RExpr::Call(_, _, args) => args.iter().for_each(|a| for_each_slot(a, f)),
        RExpr::Binary(_, a, b) | RExpr::Range(a, b) => {
            for_each_slot(a, f);
            for_each_slot(b, f);
        }
        RExpr::Unary(_, a) => for_each_slot(a, f),
        RExpr::Index(base, indices) => {
            for_each_slot(base, f);
            for idx in indices {
                match idx {
                    RIndex::One(e) => for_each_slot(e, f),
                    RIndex::Slice(a, b) => {
                        for_each_slot(a, f);
                        for_each_slot(b, f);
                    }
                }
            }
        }
        RExpr::ArrayLit(items) | RExpr::VectorLit(items) => {
            items.iter().for_each(|i| for_each_slot(i, f))
        }
        RExpr::Ternary(c, a, b) => {
            for_each_slot(c, f);
            for_each_slot(a, f);
            for_each_slot(b, f);
        }
    }
}

impl<'a> Compiler<'a> {
    fn alloc(&mut self, n: u32) -> u32 {
        let base = self.next_reg;
        self.next_reg += n;
        base
    }

    fn emit(&mut self, op: Op) {
        match &mut self.lc {
            Some(lc) => lc.ops.push(op),
            None => self.outer_ops.push(op),
        }
    }

    fn emit_outer(&mut self, op: Op) {
        self.outer_ops.push(op);
    }

    /// A fresh destination register: a single register at top level, a span
    /// of `trip` stride-1 registers inside a loop body.
    fn fresh_dst(&mut self) -> Reg {
        match &self.lc {
            Some(lc) => {
                let trip = lc.trip;
                Reg {
                    base: self.alloc(trip),
                    stride: 1,
                }
            }
            None => Reg::abs(self.alloc(1)),
        }
    }

    fn table_f(&mut self, v: Vec<f64>) -> u32 {
        self.tables_f.push(v);
        (self.tables_f.len() - 1) as u32
    }

    fn table_i(&mut self, v: Vec<i64>) -> u32 {
        self.tables_i.push(v);
        (self.tables_i.len() - 1) as u32
    }

    fn keval(&self, e: &RExpr) -> Result<Value<f64>, Decline> {
        let ctx = RCtx::new(self.resolved, self.functions, &NO_EXT);
        reval_expr(e, &self.known, &ctx)
            .map_err(|err| decline(format!("compile-time evaluation failed: {}", err.message())))
    }

    fn kint(&self, e: &RExpr) -> Result<i64, Decline> {
        self.keval(e)?
            .as_int()
            .map_err(|err| decline(format!("compile-time evaluation failed: {}", err.message())))
    }

    fn bind_known(&mut self, slot: u32, v: Value<f64>) {
        self.sym.remove(&slot);
        self.span_cache.remove(&slot);
        self.known.set(slot, v);
    }

    fn bind_sym(&mut self, slot: u32, sv: SymVal) {
        self.known.clear(slot);
        self.span_cache.remove(&slot);
        self.sym.insert(slot, sv);
    }

    fn unbind(&mut self, slot: u32) {
        self.sym.remove(&slot);
        self.span_cache.remove(&slot);
        self.known.clear(slot);
    }

    fn bind_cval(&mut self, slot: u32, v: CVal) {
        match v {
            CVal::Known(v) => self.bind_known(slot, v),
            CVal::Scalar(r) => self.bind_sym(slot, SymVal::Scalar(r)),
            CVal::Vector(elems) => self.bind_sym(slot, SymVal::Vector(elems)),
        }
    }

    /// Dependency class of an expression given the current bindings.
    fn dep(&self, e: &RExpr) -> Dep {
        let mut d = Dep::Invariant;
        for_each_slot(e, &mut |s| {
            let class = if let Some(lc) = &self.lc {
                match lc.binds.get(&s) {
                    Some(LBind::Counter) | Some(LBind::IterKnown(_)) => Dep::CounterKnown,
                    Some(LBind::Reg(_)) => Dep::Symbolic,
                    None => {
                        if self.sym.contains_key(&s) {
                            Dep::Symbolic
                        } else {
                            Dep::Invariant
                        }
                    }
                }
            } else if self.sym.contains_key(&s) {
                Dep::Symbolic
            } else {
                Dep::Invariant
            };
            if class > d {
                d = class;
            }
        });
        d
    }

    /// Materializes a symbolic vector as a contiguous register span,
    /// emitting (outer) moves only for non-contiguous layouts. `slot_hint`
    /// enables caching across repeated reads of the same binding.
    fn materialize(&mut self, elems: &[Elem], slot_hint: Option<u32>) -> u32 {
        if let Some(slot) = slot_hint {
            if let Some(&span) = self.span_cache.get(&slot) {
                return span;
            }
        }
        // Already-contiguous registers alias for free.
        if let Some(Elem::R(first)) = elems.first() {
            if elems
                .iter()
                .enumerate()
                .all(|(i, e)| matches!(e, Elem::R(r) if *r == first + i as u32))
            {
                if let Some(slot) = slot_hint {
                    self.span_cache.insert(slot, *first);
                }
                return *first;
            }
        }
        let span = self.alloc(elems.len() as u32);
        for (i, e) in elems.iter().enumerate() {
            let dst = span + i as u32;
            match e {
                Elem::K(v) => self.const_init.push((dst, *v)),
                Elem::R(r) => self.emit_outer(Op::Mov {
                    dst: Reg::abs(dst),
                    a: A::Reg(Reg::abs(*r)),
                }),
            }
        }
        if let Some(slot) = slot_hint {
            self.span_cache.insert(slot, span);
        }
        span
    }

    /// Converts an expression result to the scalar-or-span view used by the
    /// element-wise combinators. Known containers become constant tables;
    /// known nested arrays flatten exactly as `as_real_vec` does.
    fn cv1(&mut self, v: CVal) -> Result<CV1, Decline> {
        Ok(match v {
            CVal::Known(Value::Real(x)) => CV1::S(A::Const(x)),
            CVal::Known(Value::Int(k)) => CV1::S(A::Const(k as f64)),
            CVal::Known(ref kv @ (Value::Vector(_) | Value::IntArray(_) | Value::Array(_))) => {
                let flat = kv
                    .as_real_vec()
                    .map_err(|e| decline(format!("container flatten failed: {}", e.message())))?;
                let n = flat.len() as u32;
                CV1::V(VA::Table(self.table_f(flat)), n)
            }
            CVal::Known(Value::Unit) => return Err(decline("unit value in arithmetic")),
            CVal::Scalar(r) => CV1::S(A::Reg(Reg::abs(r))),
            CVal::Vector(elems) => {
                let n = elems.len() as u32;
                let span = self.materialize(&elems, None);
                CV1::V(VA::Span(span), n)
            }
        })
    }

    fn cval_of(&mut self, v: CV1) -> CVal {
        match v {
            CV1::S(A::Reg(r)) => CVal::Scalar(r.base),
            CV1::S(A::Const(c)) => CVal::Known(Value::Real(c)),
            CV1::S(A::Table(_)) => unreachable!("tables do not appear at top level"),
            CV1::V(VA::Span(s), n) => CVal::Vector((0..n).map(|i| Elem::R(s + i)).collect()),
            CV1::V(VA::Table(t), _) => {
                CVal::Known(Value::Vector(self.tables_f[t as usize].clone()))
            }
            CV1::V(..) => unreachable!("broadcast operands are not results"),
        }
    }

    /// Emits `f` element-wise (or scalar) over one operand.
    fn map1(&mut self, f: UF, a: CV1) -> CV1 {
        match a {
            CV1::S(a) => {
                let dst = self.fresh_dst();
                self.emit(Op::Un { f, dst, a });
                CV1::S(A::Reg(dst))
            }
            CV1::V(a, len) => {
                let dst = self.alloc(len);
                self.emit(Op::VUn { f, dst, a, len });
                CV1::V(VA::Span(dst), len)
            }
        }
    }

    /// Compiles a top-level expression (no enclosing loop).
    fn cexpr(&mut self, e: &RExpr) -> Result<CVal, Decline> {
        if self.dep(e) == Dep::Invariant {
            return Ok(CVal::Known(self.keval(e)?));
        }
        match e {
            RExpr::Slot(s) => match self.sym.get(s) {
                Some(SymVal::Scalar(r)) => Ok(CVal::Scalar(*r)),
                Some(SymVal::Vector(elems)) => Ok(CVal::Vector(elems.clone())),
                None => Err(decline("symbolic slot lost its binding")),
            },
            RExpr::IntLit(_) | RExpr::RealLit(_) | RExpr::StringLit(_) | RExpr::Range(..) => {
                Err(decline("literal classified symbolic")) // unreachable
            }
            RExpr::Unary(op, a) => {
                let v = self.cexpr(a)?;
                match op {
                    UnOp::Plus => Ok(v),
                    UnOp::Neg => {
                        let v = self.cv1(v)?;
                        let r = self.map1(UF::R(UnFn::Neg), v);
                        Ok(self.cval_of(r))
                    }
                    UnOp::Not => Err(decline("logical not of a parameter-dependent value")),
                }
            }
            RExpr::Binary(op, a, b) => self.cbinary(*op, a, b),
            RExpr::Index(base, indices) => self.cindex(base, indices),
            RExpr::Ternary(c, a, b) => {
                if self.dep(c) != Dep::Invariant {
                    return Err(decline("parameter-dependent ternary condition"));
                }
                let cond = self
                    .keval(c)?
                    .as_real()
                    .map_err(|e| decline(e.message().to_string()))?;
                if cond != 0.0 {
                    self.cexpr(a)
                } else {
                    self.cexpr(b)
                }
            }
            RExpr::ArrayLit(items) | RExpr::VectorLit(items) => {
                // All-scalar literals promote to a flat vector on both
                // evaluators; symbolic literals with non-scalar items decline.
                let mut elems = Vec::with_capacity(items.len());
                for item in items {
                    match self.cexpr(item)? {
                        CVal::Known(v) => elems.push(Elem::K(
                            v.as_real().map_err(|e| decline(e.message().to_string()))?,
                        )),
                        CVal::Scalar(r) => elems.push(Elem::R(r)),
                        CVal::Vector(_) => {
                            return Err(decline("nested symbolic container literal"))
                        }
                    }
                }
                Ok(CVal::Vector(elems))
            }
            RExpr::Call(name, target, args) => {
                if matches!(target, crate::resolved::CallTarget::User(_)) {
                    return Err(decline(format!(
                        "user-defined function call `{name}` (interpreted via EnvView)"
                    )));
                }
                self.cbuiltin(name, args)
            }
        }
    }

    fn cbinary(&mut self, op: BinOp, a: &RExpr, b: &RExpr) -> Result<CVal, Decline> {
        use BinOp::*;
        if matches!(op, Eq | Neq | Lt | Leq | Gt | Geq | And | Or) {
            return Err(decline(
                "comparison or logical operator on parameter-dependent values",
            ));
        }
        let va = self.cexpr(a)?;
        let vb = self.cexpr(b)?;
        // Known matrix × symbolic vector: a regression head.
        if matches!(op, Mul) {
            if let (CVal::Known(Value::Array(rows)), vb @ (CVal::Vector(_) | CVal::Known(_))) =
                (&va, &vb)
            {
                let xb = self.cv1(vb.clone())?;
                if let CV1::V(x, xlen) = xb {
                    let nrows = rows.len();
                    let mut flat = Vec::with_capacity(nrows * xlen as usize);
                    for row in rows {
                        let r = row
                            .as_real_vec()
                            .map_err(|e| decline(e.message().to_string()))?;
                        if r.len() != xlen as usize {
                            return Err(decline("matrix-vector dimension mismatch"));
                        }
                        flat.extend(r);
                    }
                    let mat = self.table_f(flat);
                    let dst = self.alloc(nrows as u32);
                    self.emit(Op::MatVec {
                        dst,
                        mat,
                        x,
                        rows: nrows as u32,
                        cols: xlen,
                    });
                    return Ok(CVal::Vector(
                        (0..nrows as u32).map(|i| Elem::R(dst + i)).collect(),
                    ));
                }
            }
            if matches!(&va, CVal::Vector(_) | CVal::Known(Value::Array(_)))
                && matches!(&vb, CVal::Known(Value::Array(_)))
            {
                return Err(decline("symbolic value times matrix"));
            }
        }
        if matches!(&va, CVal::Known(Value::Array(_)))
            || matches!(&vb, CVal::Known(Value::Array(_)))
        {
            return Err(decline("nested-array operand in symbolic arithmetic"));
        }
        let ca = self.cv1(va)?;
        let cb = self.cv1(vb)?;
        let f = match op {
            Add => BinF::Add,
            Sub => BinF::Sub,
            EltMul => BinF::Mul,
            Div | EltDiv => BinF::Div,
            Mod => BinF::ZeroMod,
            Mul => {
                if let (CV1::V(a, n), CV1::V(b, m)) = (ca, cb) {
                    // vector · vector is the dot product.
                    if n != m {
                        return Err(decline(format!("vector length mismatch: {n} vs {m}")));
                    }
                    let dst = self.alloc(1);
                    self.emit(Op::Dot { dst, a, b, len: n });
                    return Ok(CVal::Scalar(dst));
                }
                BinF::Mul
            }
            Pow => {
                // Constant exponents keep gradients exact (powi/powf); a
                // parameter-dependent exponent declines.
                let CV1::S(A::Const(p)) = cb else {
                    return Err(decline("parameter-dependent exponent"));
                };
                let f = if p.fract() == 0.0 && p.abs() < 1e6 {
                    UF::R(UnFn::Powi(p as i32))
                } else {
                    UF::R(UnFn::Powf(p))
                };
                let r = self.map1(f, ca);
                return Ok(self.cval_of(r));
            }
            _ => unreachable!(),
        };
        let r = self.map2(f, ca, cb)?;
        Ok(self.cval_of(r))
    }

    fn cindex(&mut self, base: &RExpr, indices: &[RIndex]) -> Result<CVal, Decline> {
        let mut cur = self.cexpr(base)?;
        for idx in indices {
            match idx {
                RIndex::One(i) => {
                    if self.dep(i) != Dep::Invariant {
                        return Err(decline("parameter-dependent index"));
                    }
                    let i = self.kint(i)?;
                    cur = match cur {
                        CVal::Known(v) => {
                            CVal::Known(v.index(i).map_err(|e| decline(e.message().to_string()))?)
                        }
                        CVal::Vector(elems) => {
                            if i < 1 || i as usize > elems.len() {
                                return Err(decline(format!(
                                    "index {i} out of bounds for length {}",
                                    elems.len()
                                )));
                            }
                            match elems[(i - 1) as usize] {
                                Elem::K(v) => CVal::Known(Value::Real(v)),
                                Elem::R(r) => CVal::Scalar(r),
                            }
                        }
                        CVal::Scalar(_) => return Err(decline("cannot index a scalar")),
                    };
                }
                RIndex::Slice(lo, hi) => {
                    if self.dep(lo) != Dep::Invariant || self.dep(hi) != Dep::Invariant {
                        return Err(decline("parameter-dependent slice bounds"));
                    }
                    let lo = self.kint(lo)?;
                    let hi = self.kint(hi)?;
                    cur = match cur {
                        CVal::Known(v) => CVal::Known(
                            crate::eval::slice_value(&v, lo, hi)
                                .map_err(|e| decline(e.message().to_string()))?,
                        ),
                        CVal::Vector(elems) => {
                            if lo < 1 || hi as usize > elems.len() || lo > hi + 1 {
                                return Err(decline(format!(
                                    "slice {lo}:{hi} out of bounds for length {}",
                                    elems.len()
                                )));
                            }
                            CVal::Vector(elems[(lo - 1) as usize..hi as usize].to_vec())
                        }
                        CVal::Scalar(_) => return Err(decline("cannot slice a scalar")),
                    };
                }
            }
        }
        Ok(cur)
    }

    /// Emits `f` element-wise with scalar broadcast over two operands.
    /// Vector–vector shapes must have equal lengths (callers validate).
    fn map2(&mut self, f: BinF, a: CV1, b: CV1) -> Result<CV1, Decline> {
        let broadcast = |v: CV1| -> VA {
            match v {
                CV1::S(A::Reg(r)) => VA::RegS(r),
                CV1::S(A::Const(c)) => VA::ConstS(c),
                CV1::S(A::Table(_)) => unreachable!("tables are loop-local"),
                CV1::V(va, _) => va,
            }
        };
        match (a, b) {
            (CV1::S(a), CV1::S(b)) => {
                let dst = self.fresh_dst();
                self.emit(Op::Bin { f, dst, a, b });
                Ok(CV1::S(A::Reg(dst)))
            }
            (a, b) => {
                let len = match (a, b) {
                    (CV1::V(_, n), CV1::S(_)) | (CV1::S(_), CV1::V(_, n)) => n,
                    (CV1::V(_, n), CV1::V(_, m)) => {
                        if n != m {
                            return Err(decline(format!("vector length mismatch: {n} vs {m}")));
                        }
                        n
                    }
                    _ => unreachable!(),
                };
                let dst = self.alloc(len);
                self.emit(Op::VBin {
                    f,
                    dst,
                    a: broadcast(a),
                    b: broadcast(b),
                    len,
                });
                Ok(CV1::V(VA::Span(dst), len))
            }
        }
    }

    /// Compiles a builtin call with at least one symbolic argument.
    fn cbuiltin(&mut self, name: &str, args: &[RExpr]) -> Result<CVal, Decline> {
        // `*_lpdf` family first: scored through the elem/sweep kernels.
        if let Some(dist_name) = crate::eval::strip_lpdf_suffix(name) {
            let Some(kind) = DistKind::from_name(dist_name) else {
                return Err(decline(format!("unknown distribution `{dist_name}`")));
            };
            if args.is_empty() {
                return Err(decline(format!("{name}: missing observed value")));
            }
            let x = self.cexpr(&args[0])?;
            let dargs: Vec<CVal> = args[1..]
                .iter()
                .map(|a| self.cexpr(a))
                .collect::<Result<_, _>>()?;
            return match self.site_operands(kind, x, dargs)? {
                Site::Elem { x, args, k } => {
                    let dst = self.fresh_dst();
                    self.emit(Op::ScoreVal {
                        kind,
                        dst,
                        x,
                        args,
                        k,
                    });
                    Ok(CVal::Scalar(dst.base))
                }
                Site::Sweep { xs, args, k, len } => {
                    let dst = self.alloc(1);
                    self.emit(Op::ScoreSweepVal {
                        kind,
                        dst,
                        xs,
                        args,
                        k,
                        len,
                    });
                    Ok(CVal::Scalar(dst))
                }
            };
        }
        if name.ends_with("_lcdf") || name.ends_with("_lccdf") || name.ends_with("_cdf") {
            return Err(decline(format!("cumulative distribution `{name}`")));
        }
        if name.ends_with("_rng") {
            return Err(decline(format!("rng builtin `{name}` in the density body")));
        }

        let one = |c: &mut Self, args: &[RExpr]| -> Result<CV1, Decline> {
            let v = c.cexpr(&args[0])?;
            c.cv1(v)
        };
        let scalar_arg = |c: &mut Self, e: &RExpr| -> Result<A, Decline> {
            match c.cexpr(e)? {
                CVal::Known(v) => Ok(A::Const(
                    v.as_real().map_err(|e| decline(e.message().to_string()))?,
                )),
                CVal::Scalar(r) => Ok(A::Reg(Reg::abs(r))),
                CVal::Vector(_) => Err(decline(format!("{name}: container where scalar expected"))),
            }
        };
        let need = |n: usize| -> Result<(), Decline> {
            if args.len() < n {
                Err(decline(format!("{name}: missing arguments")))
            } else {
                Ok(())
            }
        };

        const UNARY: &[&str] = &[
            "log",
            "log1p",
            "log1m",
            "log1p_exp",
            "exp",
            "expm1",
            "sqrt",
            "square",
            "inv",
            "inv_sqrt",
            "inv_logit",
            "logit",
            "fabs",
            "abs",
            "floor",
            "ceil",
            "round",
            "step",
            "sin",
            "cos",
            "tan",
            "tanh",
            "atan",
            "lgamma",
            "tgamma",
            "digamma",
            "erf",
            "Phi",
            "Phi_approx",
            "std_normal_cdf",
        ];
        if UNARY.contains(&name) {
            need(1)?;
            let v = one(self, args)?;
            if let Some(r) = self.unary_map(name, v)? {
                return Ok(self.cval_of(r));
            }
        }

        match name {
            "sum" => {
                need(1)?;
                match one(self, args)? {
                    CV1::S(a) => Ok(self.cval_of(CV1::S(a))),
                    CV1::V(a, len) => {
                        let dst = self.alloc(1);
                        self.emit(Op::Sum { dst, a, len });
                        Ok(CVal::Scalar(dst))
                    }
                }
            }
            "mean" => {
                need(1)?;
                match one(self, args)? {
                    CV1::S(a) => {
                        let r = self.map2(BinF::Div, CV1::S(a), CV1::S(A::Const(1.0)))?;
                        Ok(self.cval_of(r))
                    }
                    CV1::V(a, len) => {
                        let dst = self.alloc(1);
                        self.emit(Op::Sum { dst, a, len });
                        let r = self.map2(
                            BinF::Div,
                            CV1::S(A::Reg(Reg::abs(dst))),
                            CV1::S(A::Const(len as f64)),
                        )?;
                        Ok(self.cval_of(r))
                    }
                }
            }
            "prod" => {
                need(1)?;
                match one(self, args)? {
                    CV1::S(a) => {
                        let r = self.map2(BinF::Mul, CV1::S(A::Const(1.0)), CV1::S(a))?;
                        Ok(self.cval_of(r))
                    }
                    CV1::V(a, len) => {
                        let mut acc = CV1::S(A::Const(1.0));
                        for i in 0..len {
                            let e = self.span_elem(a, i);
                            acc = self.map2(BinF::Mul, acc, CV1::S(e))?;
                        }
                        Ok(self.cval_of(acc))
                    }
                }
            }
            "min" | "max" => {
                let f = if name == "min" { BinF::Min } else { BinF::Max };
                if args.len() == 2 {
                    let a = scalar_arg(self, &args[0])?;
                    let b = scalar_arg(self, &args[1])?;
                    let r = self.map2(f, CV1::S(a), CV1::S(b))?;
                    return Ok(self.cval_of(r));
                }
                need(1)?;
                match one(self, args)? {
                    CV1::S(a) => Ok(self.cval_of(CV1::S(a))),
                    CV1::V(a, len) => {
                        if len == 0 {
                            return Err(decline(format!("{name} of an empty vector")));
                        }
                        let mut acc = CV1::S(self.span_elem(a, 0));
                        for i in 1..len {
                            let e = self.span_elem(a, i);
                            acc = self.map2(f, acc, CV1::S(e))?;
                        }
                        Ok(self.cval_of(acc))
                    }
                }
            }
            "dot_product" | "dot_self" => {
                need(1)?;
                let a = one(self, args)?;
                let b = if name == "dot_self" {
                    a
                } else {
                    need(2)?;
                    let v = self.cexpr(&args[1])?;
                    self.cv1(v)?
                };
                match (a, b) {
                    (CV1::V(a, n), CV1::V(b, m)) => {
                        if n != m {
                            return Err(decline("dot_product length mismatch"));
                        }
                        let dst = self.alloc(1);
                        self.emit(Op::Dot { dst, a, b, len: n });
                        Ok(CVal::Scalar(dst))
                    }
                    (CV1::S(a), CV1::S(b)) => {
                        let r = self.map2(BinF::Mul, CV1::S(a), CV1::S(b))?;
                        Ok(self.cval_of(r))
                    }
                    _ => Err(decline("dot_product length mismatch")),
                }
            }
            "log_sum_exp" => {
                if args.len() == 2 {
                    let a = scalar_arg(self, &args[0])?;
                    let b = scalar_arg(self, &args[1])?;
                    return self.log_sum_exp_pair(a, b);
                }
                need(1)?;
                match one(self, args)? {
                    CV1::S(a) => {
                        // Single scalar: m = x, result = x + ln(exp(0)) = x.
                        // The builtin computes m + ln(exp(x - m)) with m = x.
                        let m = self.map2(
                            BinF::ZeroMaxVal,
                            CV1::S(a),
                            CV1::S(A::Const(f64::NEG_INFINITY)),
                        )?;
                        let d = self.map2(BinF::Sub, CV1::S(a), m)?;
                        let e = self.map1(UF::R(UnFn::Exp), d);
                        let l = self.map1(UF::R(UnFn::Ln), e);
                        let r = self.map2(BinF::Add, m, l)?;
                        Ok(self.cval_of(r))
                    }
                    CV1::V(a, len) => {
                        let m = self.alloc(1);
                        self.emit(Op::MaxVal { dst: m, a, len });
                        let mm = CV1::S(A::Reg(Reg::abs(m)));
                        let d = self.map2(BinF::Sub, CV1::V(a, len), mm)?;
                        let e = self.map1(UF::R(UnFn::Exp), d);
                        let CV1::V(ea, _) = e else { unreachable!() };
                        let s = self.alloc(1);
                        self.emit(Op::Sum { dst: s, a: ea, len });
                        let l = self.map1(UF::R(UnFn::Ln), CV1::S(A::Reg(Reg::abs(s))));
                        let r = self.map2(BinF::Add, mm, l)?;
                        Ok(self.cval_of(r))
                    }
                }
            }
            "log_mix" => {
                need(3)?;
                let theta = scalar_arg(self, &args[0])?;
                let a = scalar_arg(self, &args[1])?;
                let b = scalar_arg(self, &args[2])?;
                // m = max(a.value, b.value) (untracked); then
                // m + ln(theta·e^{a-m} + (1-theta)·e^{b-m}).
                let m = self.map2(BinF::ZeroMaxVal, CV1::S(a), CV1::S(b))?;
                let da = self.map2(BinF::Sub, CV1::S(a), m)?;
                let ea = self.map1(UF::R(UnFn::Exp), da);
                let t1 = self.map2(BinF::Mul, CV1::S(theta), ea)?;
                let onem = self.map2(BinF::Sub, CV1::S(A::Const(1.0)), CV1::S(theta))?;
                let db = self.map2(BinF::Sub, CV1::S(b), m)?;
                let eb = self.map1(UF::R(UnFn::Exp), db);
                let t2 = self.map2(BinF::Mul, onem, eb)?;
                let s = self.map2(BinF::Add, t1, t2)?;
                let l = self.map1(UF::R(UnFn::Ln), s);
                let r = self.map2(BinF::Add, m, l)?;
                Ok(self.cval_of(r))
            }
            "pow" => {
                need(2)?;
                let x = scalar_arg(self, &args[0])?;
                let p = match self.cexpr(&args[1])? {
                    CVal::Known(v) => v.as_real().map_err(|e| decline(e.message().to_string()))?,
                    _ => return Err(decline("parameter-dependent exponent")),
                };
                let f = if p.fract() == 0.0 && p.abs() < 1e6 {
                    UF::R(UnFn::Powi(p as i32))
                } else {
                    UF::R(UnFn::Powf(p))
                };
                let r = self.map1(f, CV1::S(x));
                Ok(self.cval_of(r))
            }
            "fmax" | "fmin" => {
                need(2)?;
                let a = scalar_arg(self, &args[0])?;
                let b = scalar_arg(self, &args[1])?;
                let f = if name == "fmax" { BinF::Max } else { BinF::Min };
                let r = self.map2(f, CV1::S(a), CV1::S(b))?;
                Ok(self.cval_of(r))
            }
            "fma" => {
                need(3)?;
                let a = scalar_arg(self, &args[0])?;
                let b = scalar_arg(self, &args[1])?;
                let cc = scalar_arg(self, &args[2])?;
                let t = self.map2(BinF::Mul, CV1::S(a), CV1::S(b))?;
                let r = self.map2(BinF::Add, t, CV1::S(cc))?;
                Ok(self.cval_of(r))
            }
            "hypot" => {
                need(2)?;
                let a = scalar_arg(self, &args[0])?;
                let b = scalar_arg(self, &args[1])?;
                let aa = self.map2(BinF::Mul, CV1::S(a), CV1::S(a))?;
                let bb = self.map2(BinF::Mul, CV1::S(b), CV1::S(b))?;
                let s = self.map2(BinF::Add, aa, bb)?;
                let r = self.map1(UF::R(UnFn::Sqrt), s);
                Ok(self.cval_of(r))
            }
            "atan2" => {
                need(2)?;
                let a = scalar_arg(self, &args[0])?;
                let b = scalar_arg(self, &args[1])?;
                let r = self.map2(BinF::ZeroAtan2, CV1::S(a), CV1::S(b))?;
                Ok(self.cval_of(r))
            }
            "if_else" => {
                need(3)?;
                if self.dep(&args[0]) != Dep::Invariant {
                    return Err(decline("parameter-dependent if_else condition"));
                }
                // The builtin evaluates every argument eagerly.
                let c = self
                    .keval(&args[0])?
                    .as_real()
                    .map_err(|e| decline(e.message().to_string()))?;
                let t = self.cexpr(&args[1])?;
                let f = self.cexpr(&args[2])?;
                Ok(if c != 0.0 { t } else { f })
            }
            "num_elements" | "size" | "rows" | "cols" => {
                need(1)?;
                let len = match self.cexpr(&args[0])? {
                    CVal::Known(v) => v.len(),
                    CVal::Scalar(_) => 1,
                    CVal::Vector(elems) => elems.len(),
                };
                Ok(CVal::Known(Value::Int(len as i64)))
            }
            "to_vector" | "to_array_1d" | "to_row_vector" => {
                need(1)?;
                match self.cexpr(&args[0])? {
                    CVal::Vector(elems) => Ok(CVal::Vector(elems)),
                    CVal::Scalar(r) => Ok(CVal::Vector(vec![Elem::R(r)])),
                    CVal::Known(v) => {
                        let flat = v
                            .as_real_vec()
                            .map_err(|e| decline(e.message().to_string()))?;
                        Ok(CVal::Known(Value::Vector(flat)))
                    }
                }
            }
            "rep_vector" | "rep_row_vector" => {
                need(2)?;
                let x = scalar_arg(self, &args[0])?;
                if self.dep(&args[1]) != Dep::Invariant {
                    return Err(decline("parameter-dependent replication count"));
                }
                let n = self.kint(&args[1])?.max(0) as usize;
                let e = match x {
                    A::Const(c) => Elem::K(c),
                    A::Reg(r) => Elem::R(r.base),
                    A::Table(_) => unreachable!(),
                };
                Ok(CVal::Vector(vec![e; n]))
            }
            other => Err(decline(format!(
                "builtin `{other}` has no density-program rule"
            ))),
        }
    }

    /// Unary element-wise builtin chains, mirroring `call_builtin`'s
    /// `map_unary` formulas operation for operation (so primal values match
    /// the interpreter exactly). Returns `None` for names outside the table.
    fn unary_map(&mut self, name: &str, v: CV1) -> Result<Option<CV1>, Decline> {
        let r = |f: UnFn| UF::R(f);
        let c = self;
        Ok(Some(match name {
            "log" => c.map1(r(UnFn::Ln), v),
            "log1p" => c.map1(r(UnFn::Ln1p), v),
            "log1m" => {
                let t = c.map2(BinF::Sub, CV1::S(A::Const(1.0)), v)?;
                c.map1(r(UnFn::Ln), t)
            }
            "log1p_exp" => c.map1(r(UnFn::Softplus), v),
            "exp" => c.map1(r(UnFn::Exp), v),
            "expm1" => {
                let t = c.map1(r(UnFn::Exp), v);
                c.map2(BinF::Sub, t, CV1::S(A::Const(1.0)))?
            }
            "sqrt" => c.map1(r(UnFn::Sqrt), v),
            "square" => c.map2(BinF::Mul, v, v)?,
            "inv" => c.map2(BinF::Div, CV1::S(A::Const(1.0)), v)?,
            "inv_sqrt" => {
                let t = c.map1(r(UnFn::Sqrt), v);
                c.map2(BinF::Div, CV1::S(A::Const(1.0)), t)?
            }
            "inv_logit" => c.map1(r(UnFn::Sigmoid), v),
            "logit" => {
                let d = c.map2(BinF::Sub, CV1::S(A::Const(1.0)), v)?;
                let t = c.map2(BinF::Div, v, d)?;
                c.map1(r(UnFn::Ln), t)
            }
            "fabs" | "abs" => c.map1(r(UnFn::Abs), v),
            "floor" => c.map1(UF::Floor, v),
            "ceil" => c.map1(UF::Ceil, v),
            "round" => c.map1(UF::Round, v),
            "step" => c.map1(UF::Step, v),
            "sin" => c.map1(r(UnFn::Sin), v),
            "cos" => c.map1(r(UnFn::Cos), v),
            "tan" => {
                let s = c.map1(r(UnFn::Sin), v);
                let co = c.map1(r(UnFn::Cos), v);
                c.map2(BinF::Div, s, co)?
            }
            "tanh" => c.map1(r(UnFn::Tanh), v),
            "atan" => c.map1(UF::Atan, v),
            "lgamma" => c.map1(r(UnFn::Lgamma), v),
            "tgamma" => {
                let t = c.map1(r(UnFn::Lgamma), v);
                c.map1(r(UnFn::Exp), t)
            }
            "digamma" => c.map1(UF::Digamma, v),
            "erf" => c.map1(UF::Erf, v),
            "Phi" | "Phi_approx" | "std_normal_cdf" => c.map1(UF::NormCdf, v),
            _ => return Ok(None),
        }))
    }

    /// One element of a span-like operand as a scalar A (sequential folds).
    fn span_elem(&mut self, a: VA, i: u32) -> A {
        match a {
            VA::Span(s) => A::Reg(Reg::abs(s + i)),
            VA::Table(t) => A::Const(self.tables_f[t as usize][i as usize]),
            VA::RegS(r) => A::Reg(r),
            VA::ConstS(c) => A::Const(c),
        }
    }

    fn log_sum_exp_pair(&mut self, a: A, b: A) -> Result<CVal, Decline> {
        // vec![a, b] then the stabilized fold: m = max by value; then
        // m + ln(e^{a-m} + e^{b-m}), summed in element order.
        let m = self.map2(BinF::ZeroMaxVal, CV1::S(a), CV1::S(b))?;
        let da = self.map2(BinF::Sub, CV1::S(a), m)?;
        let ea = self.map1(UF::R(UnFn::Exp), da);
        let db = self.map2(BinF::Sub, CV1::S(b), m)?;
        let eb = self.map1(UF::R(UnFn::Exp), db);
        let s = self.map2(BinF::Add, ea, eb)?;
        let l = self.map1(UF::R(UnFn::Ln), s);
        let r = self.map2(BinF::Add, m, l)?;
        Ok(self.cval_of(r))
    }

    /// Resolves a score site's observed value and distribution arguments to
    /// op operands, mirroring `score_tilde`'s fused dispatch: scalar values
    /// score through the elem kernel, flat containers through the batched
    /// sweep kernel. Shapes the runtime path would reject decline (so the
    /// retained path owns the identical error).
    fn site_operands(&mut self, kind: DistKind, x: CVal, args: Vec<CVal>) -> Result<Site, Decline> {
        if kind.is_multivariate() || kind.has_vector_param() {
            return Err(decline(format!(
                "distribution `{}` has no elem kernel",
                kind.name()
            )));
        }
        if !supports_elem(kind) {
            return Err(decline(format!(
                "distribution `{}` has no elem kernel",
                kind.name()
            )));
        }
        let k = sweep_arity(kind);
        // improper_uniform tolerates missing bounds (they default to ±inf);
        // every other family requires its full arity.
        let improper = kind == DistKind::ImproperUniform;
        if !improper && args.len() < k {
            return Err(decline(format!("{}: missing arguments", kind.name())));
        }
        let scalar_of = |c: &mut Self, v: &CVal| -> Result<Option<A>, Decline> {
            Ok(match v {
                CVal::Known(Value::Real(x)) => Some(A::Const(*x)),
                CVal::Known(Value::Int(i)) => Some(A::Const(*i as f64)),
                CVal::Scalar(r) => Some(A::Reg(Reg::abs(*r))),
                _ => {
                    let _ = c;
                    None
                }
            })
        };
        let mut sargs = [A::Const(0.0); 3];
        if improper {
            // dist_from_kind maps a missing or non-scalar bound to ±inf.
            for (j, default) in [(0usize, f64::NEG_INFINITY), (1usize, f64::INFINITY)] {
                sargs[j] = match args.get(j) {
                    Some(CVal::Known(v)) => A::Const(v.as_real().unwrap_or(default)),
                    Some(CVal::Scalar(_)) | Some(CVal::Vector(_)) => {
                        return Err(decline("parameter-dependent improper_uniform bound"))
                    }
                    None => A::Const(default),
                };
            }
        }
        match x {
            CVal::Known(Value::Real(_)) | CVal::Known(Value::Int(_)) | CVal::Scalar(_) => {
                let x = scalar_of(self, &x)?.expect("scalar checked");
                if !improper {
                    for j in 0..k {
                        sargs[j] = scalar_of(self, &args[j])?.ok_or_else(|| {
                            decline(format!(
                                "{}: container argument where a scalar is required",
                                kind.name()
                            ))
                        })?;
                    }
                }
                Ok(Site::Elem {
                    x,
                    args: sargs,
                    k: k as u8,
                })
            }
            CVal::Known(ref v @ (Value::Vector(_) | Value::IntArray(_) | Value::Array(_))) => {
                let xs = match v {
                    Value::IntArray(ints) => VX::TableI(self.table_i(ints.clone())),
                    other => {
                        let flat = other
                            .as_real_vec()
                            .map_err(|e| decline(e.message().to_string()))?;
                        VX::TableF(self.table_f(flat))
                    }
                };
                let n = match xs {
                    VX::TableF(t) => self.tables_f[t as usize].len(),
                    VX::TableI(t) => self.tables_i[t as usize].len(),
                    VX::Span(_) => unreachable!(),
                };
                self.sweep_args(kind, xs, n, args, sargs, improper, k)
            }
            CVal::Vector(elems) => {
                let n = elems.len();
                let span = self.materialize(&elems, None);
                self.sweep_args(kind, VX::Span(span), n, args, sargs, improper, k)
            }
            CVal::Known(Value::Unit) => Err(decline("unit observed value")),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn sweep_args(
        &mut self,
        kind: DistKind,
        xs: VX,
        n: usize,
        args: Vec<CVal>,
        scalar_args: [A; 3],
        improper: bool,
        k: usize,
    ) -> Result<Site, Decline> {
        let mut out = [SA::Sc(A::Const(0.0)); 3];
        if improper {
            for j in 0..k {
                out[j] = SA::Sc(scalar_args[j]);
            }
            return Ok(Site::Sweep {
                xs,
                args: out,
                k: k as u8,
                len: n as u32,
            });
        }
        for j in 0..k {
            out[j] = match &args[j] {
                CVal::Known(Value::Real(x)) => SA::Sc(A::Const(*x)),
                CVal::Known(Value::Int(i)) => SA::Sc(A::Const(*i as f64)),
                CVal::Scalar(r) => SA::Sc(A::Reg(Reg::abs(*r))),
                CVal::Known(Value::IntArray(v)) if v.len() == n && n > 1 => {
                    SA::TableI(self.table_i(v.clone()))
                }
                CVal::Known(kv @ (Value::Vector(_) | Value::Array(_))) => {
                    let flat = kv
                        .as_real_vec()
                        .map_err(|e| decline(e.message().to_string()))?;
                    if flat.len() == n && n > 1 {
                        SA::TableF(self.table_f(flat))
                    } else {
                        return Err(decline(format!(
                            "{}: broadcast shape not batchable",
                            kind.name()
                        )));
                    }
                }
                CVal::Vector(elems) if elems.len() == n && n > 1 => {
                    SA::Span(self.materialize(elems, None))
                }
                _ => {
                    return Err(decline(format!(
                        "{}: broadcast shape not batchable",
                        kind.name()
                    )))
                }
            };
        }
        Ok(Site::Sweep {
            xs,
            args: out,
            k: k as u8,
            len: n as u32,
        })
    }

    /// Scores `value ~ dist(args)` at the top level.
    fn score_site(&mut self, dist: &RDistCall, value: CVal) -> Result<(), Decline> {
        let Some(kind) = dist.kind else {
            return Err(decline(format!("unknown distribution `{}`", dist.name)));
        };
        let args: Vec<CVal> = dist
            .args
            .iter()
            .map(|a| self.cexpr(a))
            .collect::<Result<_, _>>()?;
        match self.site_operands(kind, value, args)? {
            Site::Elem { x, args, k } => self.emit(Op::ScoreElem { kind, x, args, k }),
            Site::Sweep { xs, args, k, len } => {
                self.emit(Op::ScoreSweep {
                    kind,
                    xs,
                    args,
                    k,
                    len,
                });
            }
        }
        Ok(())
    }
}

/// Resolved operands of one score site.
enum Site {
    Elem {
        x: A,
        args: [A; 3],
        k: u8,
    },
    Sweep {
        xs: VX,
        args: [SA; 3],
        k: u8,
        len: u32,
    },
}

/// Syntactic scan of a symbolic loop body.
#[derive(Default)]
struct BodyScan {
    whole_writes: Vec<(u32, u32)>,
    indexed_writes: Vec<u32>,
    reads: Vec<u32>,
    bad: Option<&'static str>,
}

impl BodyScan {
    fn read_expr(&mut self, e: &RExpr) {
        for_each_slot(e, &mut |s| self.reads.push(s));
    }

    fn bump_write(&mut self, slot: u32) {
        match self.whole_writes.iter_mut().find(|(s, _)| *s == slot) {
            Some((_, n)) => *n += 1,
            None => self.whole_writes.push((slot, 1)),
        }
    }

    fn scan(&mut self, e: &RGExpr) {
        let mut cur = e;
        loop {
            match cur {
                RGExpr::Unit => return,
                RGExpr::LetDet { slot, value, body } => {
                    self.read_expr(value);
                    self.bump_write(*slot);
                    cur = body;
                }
                RGExpr::LetIndexed {
                    slot,
                    indices,
                    value,
                    body,
                } => {
                    for i in indices {
                        self.read_expr(i);
                    }
                    self.read_expr(value);
                    self.indexed_writes.push(*slot);
                    cur = body;
                }
                RGExpr::Observe { dist, value, body } => {
                    self.read_expr(value);
                    for a in &dist.args {
                        self.read_expr(a);
                    }
                    cur = body;
                }
                RGExpr::Factor { value, body } => {
                    self.read_expr(value);
                    cur = body;
                }
                RGExpr::Return(_) => {
                    // The `return(lhs(s))` state tuple that closes a
                    // compiled loop body: a whole-value read that compiles
                    // to no ops (lstmt verifies it is a plain bound-slot
                    // tuple), so it does not constrain element writes.
                    return;
                }
                RGExpr::LetDecl { .. } => {
                    self.bad = Some("declaration inside a compiled loop");
                    return;
                }
                RGExpr::LetSample { .. } => {
                    self.bad = Some("sample site inside a compiled loop");
                    return;
                }
                RGExpr::If { .. } => {
                    self.bad = Some("conditional inside a compiled loop");
                    return;
                }
                RGExpr::LetLoop { .. } => {
                    self.bad = Some("nested loop inside a compiled loop");
                    return;
                }
                RGExpr::ObserveSweep { .. } => {
                    self.bad = Some("batched sweep inside a compiled loop");
                    return;
                }
            }
        }
    }
}

fn push_expr_slots(x: &RExpr, out: &mut Vec<u32>) {
    for_each_slot(x, &mut |s| out.push(s));
}

fn subtree_slots(e: &RGExpr, out: &mut Vec<u32>) {
    match e {
        RGExpr::Unit => {}
        RGExpr::Return(v) => push_expr_slots(v, out),
        RGExpr::LetDecl { decl, body } => {
            out.push(decl.slot);
            for d in &decl.dims {
                push_expr_slots(d, out);
            }
            if let Some(i) = &decl.init {
                push_expr_slots(i, out);
            }
            dims_of_decl(decl, &mut |x| push_expr_slots(x, out));
            subtree_slots(body, out);
        }
        RGExpr::LetDet { slot, value, body } => {
            out.push(*slot);
            push_expr_slots(value, out);
            subtree_slots(body, out);
        }
        RGExpr::LetIndexed {
            slot,
            indices,
            value,
            body,
        } => {
            out.push(*slot);
            for i in indices {
                push_expr_slots(i, out);
            }
            push_expr_slots(value, out);
            subtree_slots(body, out);
        }
        RGExpr::LetSample { slot, dist, body } => {
            out.push(*slot);
            for a in &dist.args {
                push_expr_slots(a, out);
            }
            for s in &dist.shape {
                push_expr_slots(s, out);
            }
            subtree_slots(body, out);
        }
        RGExpr::Observe { dist, value, body } => {
            push_expr_slots(value, out);
            for a in &dist.args {
                push_expr_slots(a, out);
            }
            subtree_slots(body, out);
        }
        RGExpr::Factor { value, body } => {
            push_expr_slots(value, out);
            subtree_slots(body, out);
        }
        RGExpr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            push_expr_slots(cond, out);
            subtree_slots(then_branch, out);
            subtree_slots(else_branch, out);
        }
        RGExpr::LetLoop {
            kind,
            loop_body,
            body,
        } => {
            match kind {
                RLoopKind::Range { slot, lo, hi } => {
                    out.push(*slot);
                    push_expr_slots(lo, out);
                    push_expr_slots(hi, out);
                }
                RLoopKind::ForEach { slot, collection } => {
                    out.push(*slot);
                    push_expr_slots(collection, out);
                }
                RLoopKind::While { cond } => push_expr_slots(cond, out),
            }
            subtree_slots(loop_body, out);
            subtree_slots(body, out);
        }
        RGExpr::ObserveSweep {
            sweep,
            fallback,
            body,
        } => {
            out.push(sweep.loop_slot);
            subtree_slots(fallback, out);
            subtree_slots(body, out);
        }
    }
}

fn dims_of_decl(decl: &RDecl, expr: &mut impl FnMut(&RExpr)) {
    match &decl.kind {
        crate::resolved::RDeclKind::Int | crate::resolved::RDeclKind::Real => {}
        crate::resolved::RDeclKind::Vector(n) | crate::resolved::RDeclKind::Square(n) => expr(n),
        crate::resolved::RDeclKind::Matrix(r, c) => {
            expr(r);
            expr(c);
        }
    }
}

fn subtree_has_effects(e: &RGExpr) -> bool {
    match e {
        RGExpr::Unit => false,
        RGExpr::Return(_) => true,
        RGExpr::LetDecl { body, .. }
        | RGExpr::LetDet { body, .. }
        | RGExpr::LetIndexed { body, .. } => subtree_has_effects(body),
        RGExpr::LetSample { .. } | RGExpr::Observe { .. } | RGExpr::Factor { .. } => true,
        RGExpr::If {
            then_branch,
            else_branch,
            ..
        } => subtree_has_effects(then_branch) || subtree_has_effects(else_branch),
        RGExpr::LetLoop {
            loop_body, body, ..
        } => subtree_has_effects(loop_body) || subtree_has_effects(body),
        RGExpr::ObserveSweep { .. } => true,
    }
}

impl<'a> Compiler<'a> {
    /// Compiles the resolved body (top level).
    fn cstmt(&mut self, e: &RGExpr) -> Result<(), Decline> {
        let mut cur = e;
        loop {
            match cur {
                RGExpr::Unit => return Ok(()),
                RGExpr::Return(v) => {
                    // The density path discards the return value, but the
                    // expression must still evaluate without error. The
                    // compiler-generated parameter tuple (an `ArrayLit` of
                    // bound slots) trivially cannot fail; anything else must
                    // compile (and is then discarded).
                    if !self.safe_discard(v) {
                        let _ = self.cexpr(v)?;
                    }
                    return Ok(());
                }
                RGExpr::LetDecl { decl, body } => {
                    self.do_decl(decl)?;
                    cur = body;
                }
                RGExpr::LetDet { slot, value, body } => {
                    let v = self.cexpr(value)?;
                    self.bind_cval(*slot, v);
                    cur = body;
                }
                RGExpr::LetIndexed {
                    slot,
                    indices,
                    value,
                    body,
                } => {
                    self.do_indexed(*slot, indices, value)?;
                    cur = body;
                }
                RGExpr::LetSample { slot, dist, body } => {
                    let Some(binding) = self.param_regs.get(slot).cloned() else {
                        return Err(decline(format!(
                            "sample site `{}` is not a parameter",
                            self.resolved.name_of(*slot)
                        )));
                    };
                    let v = match &binding {
                        SymVal::Scalar(r) => CVal::Scalar(*r),
                        SymVal::Vector(elems) => CVal::Vector(elems.clone()),
                    };
                    // The runtime evaluates the site's arguments *before*
                    // binding the traced value into the frame; mirror that
                    // order so self-referential arguments see the pre-site
                    // state (or its unbound-variable error, via decline).
                    let args: Vec<CVal> = dist
                        .args
                        .iter()
                        .map(|a| self.cexpr(a))
                        .collect::<Result<_, _>>()?;
                    self.bind_sym(*slot, binding);
                    let Some(kind) = dist.kind else {
                        return Err(decline(format!("unknown distribution `{}`", dist.name)));
                    };
                    match self.site_operands(kind, v, args)? {
                        Site::Elem { x, args, k } => self.emit(Op::ScoreElem { kind, x, args, k }),
                        Site::Sweep { xs, args, k, len } => self.emit(Op::ScoreSweep {
                            kind,
                            xs,
                            args,
                            k,
                            len,
                        }),
                    }
                    cur = body;
                }
                RGExpr::Observe { dist, value, body } => {
                    let v = self.cexpr(value)?;
                    self.score_site(dist, v)?;
                    cur = body;
                }
                RGExpr::Factor { value, body } => {
                    self.do_factor(value)?;
                    cur = body;
                }
                RGExpr::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    if self.dep(cond) != Dep::Invariant {
                        return Err(decline("parameter-dependent branch"));
                    }
                    let c = self
                        .keval(cond)?
                        .as_real()
                        .map_err(|e| decline(e.message().to_string()))?;
                    // The compiler pushed the continuation into both
                    // branches, so the chosen branch is the whole rest.
                    cur = if c != 0.0 { then_branch } else { else_branch };
                }
                RGExpr::LetLoop {
                    kind,
                    loop_body,
                    body,
                } => {
                    self.do_loop(kind, loop_body)?;
                    cur = body;
                }
                RGExpr::ObserveSweep {
                    sweep,
                    fallback,
                    body,
                } => {
                    if self.try_sweep_compile(sweep)?.is_some() {
                        // Shapes the runtime fallback would handle: compile
                        // the retained scalar loop instead.
                        self.cstmt(fallback)?;
                    }
                    cur = body;
                }
            }
        }
    }

    fn do_decl(&mut self, decl: &RDecl) -> Result<(), Decline> {
        match &decl.init {
            Some(e) => {
                let v = self.cexpr(e)?;
                self.bind_cval(decl.slot, v);
            }
            None => {
                let ctx = RCtx::new(self.resolved, self.functions, &NO_EXT);
                let v = default_rvalue(decl, &self.known, &ctx).map_err(|e| {
                    decline(format!(
                        "declaration default failed at compile time: {}",
                        e.message()
                    ))
                })?;
                self.bind_known(decl.slot, v);
            }
        }
        Ok(())
    }

    fn do_indexed(&mut self, slot: u32, indices: &[RExpr], value: &RExpr) -> Result<(), Decline> {
        for i in indices {
            if self.dep(i) != Dep::Invariant {
                return Err(decline("parameter-dependent index in assignment"));
            }
        }
        let idx: Vec<i64> = indices
            .iter()
            .map(|i| self.kint(i))
            .collect::<Result<_, _>>()?;
        let v = self.cexpr(value)?;
        let target_known = self.known.get(slot).is_some();
        match (target_known, v) {
            (true, CVal::Known(v)) => {
                let target = self
                    .known
                    .get_mut(slot)
                    .expect("known binding checked above");
                crate::eval::set_nested(target, &idx, v)
                    .map_err(|e| decline(e.message().to_string()))?;
                self.span_cache.remove(&slot);
                Ok(())
            }
            (_, v) => {
                // A symbolic write (or a write into a symbolic container):
                // flat single-index vectors only.
                let [i] = idx.as_slice() else {
                    return Err(decline("multi-dimensional symbolic indexed assignment"));
                };
                let elem = match v {
                    CVal::Known(kv) => {
                        Elem::K(kv.as_real().map_err(|e| decline(e.message().to_string()))?)
                    }
                    CVal::Scalar(r) => Elem::R(r),
                    CVal::Vector(_) => {
                        return Err(decline("container value in indexed assignment"))
                    }
                };
                let mut elems = self.promote_vector(slot)?;
                if *i < 1 || *i as usize > elems.len() {
                    return Err(decline(format!(
                        "index {i} out of bounds for length {}",
                        elems.len()
                    )));
                }
                elems[(*i - 1) as usize] = elem;
                self.bind_sym(slot, SymVal::Vector(elems));
                Ok(())
            }
        }
    }

    /// Whether discarding this expression's value is trivially error-free:
    /// literals, reads of bound slots, and array literals of those (the
    /// shape of every compiler-generated `return` tuple). Such expressions
    /// need no ops at all on the density path.
    fn safe_discard(&self, e: &RExpr) -> bool {
        match e {
            RExpr::IntLit(_) | RExpr::RealLit(_) | RExpr::StringLit(_) => true,
            RExpr::Slot(s) => {
                if let Some(lc) = &self.lc {
                    if lc.binds.contains_key(s) {
                        return true;
                    }
                }
                self.sym.contains_key(s) || self.known.get(*s).is_some()
            }
            RExpr::ArrayLit(items) => items.iter().all(|i| self.safe_discard(i)),
            _ => false,
        }
    }

    /// The slot's value as a flat element vector (promoting known flat
    /// containers, mirroring `Value::set_index`'s int-array promotion).
    fn promote_vector(&mut self, slot: u32) -> Result<Vec<Elem>, Decline> {
        if let Some(sv) = self.sym.get(&slot) {
            return match sv {
                SymVal::Vector(elems) => Ok(elems.clone()),
                SymVal::Scalar(_) => Err(decline("cannot assign into a scalar")),
            };
        }
        match self.known.get(slot) {
            Some(Value::Vector(v)) => Ok(v.iter().map(|&x| Elem::K(x)).collect()),
            Some(Value::IntArray(v)) => Ok(v.iter().map(|&k| Elem::K(k as f64)).collect()),
            Some(other) => Err(decline(format!(
                "symbolic assignment into a {}",
                other.kind()
            ))),
            None => Err(decline("assignment into an unbound container")),
        }
    }

    fn do_factor(&mut self, value: &RExpr) -> Result<(), Decline> {
        match self.cexpr(value)? {
            CVal::Known(v) => {
                let s = v
                    .sum_as_real()
                    .map_err(|e| decline(e.message().to_string()))?;
                self.emit(Op::AddScore { a: A::Const(s) });
            }
            CVal::Scalar(r) => self.emit(Op::AddScore {
                a: A::Reg(Reg::abs(r)),
            }),
            CVal::Vector(elems) => {
                let len = elems.len() as u32;
                let span = self.materialize(&elems, None);
                self.emit(Op::AddScoreSpan {
                    a: VA::Span(span),
                    len,
                });
            }
        }
        Ok(())
    }

    /// Compiles a loop: fully data-determined score-free subtrees fold by
    /// compile-time execution; counted loops with symbolic work compile to a
    /// [`Op::Loop`]; everything else declines.
    fn do_loop(&mut self, kind: &RLoopKind, loop_body: &RGExpr) -> Result<(), Decline> {
        // Fold: no symbolic slots anywhere in the subtree and no
        // probabilistic statements — execute the loop now against the known
        // frame with the shared interpreter.
        let node = RGExpr::LetLoop {
            kind: kind.clone(),
            loop_body: Box::new(loop_body.clone()),
            body: Box::new(RGExpr::Unit),
        };
        let mut touched = Vec::new();
        subtree_slots(&node, &mut touched);
        let any_sym = touched.iter().any(|s| self.sym.contains_key(s));
        if !any_sym && !subtree_has_effects(&node) {
            let ctx = RCtx::new(self.resolved, self.functions, &NO_EXT);
            let empty = Frame::new(0);
            let mut interp = RInterp::new(&ctx, RMode::Trace(&empty));
            return match interp.run(&node, &mut self.known) {
                Ok(_) => {
                    for s in touched {
                        self.span_cache.remove(&s);
                    }
                    Ok(())
                }
                Err(e) => Err(decline(format!(
                    "compile-time loop execution failed: {}",
                    e.message()
                ))),
            };
        }
        let RLoopKind::Range { slot, lo, hi } = kind else {
            return Err(decline(
                "only counted loops compile; foreach/while with symbolic work decline",
            ));
        };
        if self.lc.is_some() {
            return Err(decline("nested loop inside a compiled loop"));
        }
        if self.dep(lo) != Dep::Invariant || self.dep(hi) != Dep::Invariant {
            return Err(decline("parameter-dependent loop bounds"));
        }
        let lo = self.kint(lo)?;
        let hi = self.kint(hi)?;
        if hi < lo {
            self.unbind(*slot);
            return Ok(());
        }
        let trip = (hi - lo + 1) as u32;
        self.do_sym_loop(*slot, lo, trip, loop_body)
    }

    fn do_sym_loop(
        &mut self,
        counter: u32,
        lo: i64,
        trip: u32,
        loop_body: &RGExpr,
    ) -> Result<(), Decline> {
        let mut scan = BodyScan::default();
        scan.scan(loop_body);
        if let Some(bad) = scan.bad {
            return Err(decline(bad));
        }
        if scan.indexed_writes.iter().any(|s| scan.reads.contains(s)) {
            return Err(decline(
                "loop both reads and element-writes the same container",
            ));
        }
        let mut binds: HashMap<u32, LBind> = HashMap::new();
        let mut chains: HashMap<u32, Chain> = HashMap::new();
        binds.insert(counter, LBind::Counter);
        for &(w, nwrites) in &scan.whole_writes {
            match self.sym.get(&w).cloned() {
                Some(SymVal::Scalar(r)) => {
                    let start = self.alloc(nwrites * trip + 1);
                    self.emit_outer(Op::Mov {
                        dst: Reg::abs(start),
                        a: A::Reg(Reg::abs(r)),
                    });
                    chains.insert(
                        w,
                        Chain {
                            start,
                            w: nwrites,
                            k: 0,
                        },
                    );
                    binds.insert(
                        w,
                        LBind::Reg(Reg {
                            base: start,
                            stride: nwrites,
                        }),
                    );
                    self.bind_sym(w, SymVal::Scalar(start)); // placeholder; fixed after the loop
                }
                Some(SymVal::Vector(_)) => {
                    return Err(decline("container rebound inside a compiled loop"));
                }
                None => match self.known.get(w).cloned() {
                    Some(v @ (Value::Real(_) | Value::Int(_))) => {
                        let init = v.as_real().map_err(|e| decline(e.message().to_string()))?;
                        let start = self.alloc(nwrites * trip + 1);
                        self.const_init.push((start, init));
                        chains.insert(
                            w,
                            Chain {
                                start,
                                w: nwrites,
                                k: 0,
                            },
                        );
                        binds.insert(
                            w,
                            LBind::Reg(Reg {
                                base: start,
                                stride: nwrites,
                            }),
                        );
                        self.bind_sym(w, SymVal::Scalar(start));
                    }
                    Some(_) => {
                        return Err(decline("container rebound inside a compiled loop"));
                    }
                    // Fresh loop-local: first write binds it.
                    None => {}
                },
            }
        }
        self.lc = Some(Lc {
            counter,
            lo,
            trip,
            ops: Vec::new(),
            binds,
            chains,
            elem_writes: Vec::new(),
            vec_writes: scan.indexed_writes.clone(),
        });
        let result = self.lstmt(loop_body);
        let lc = self.lc.take().expect("loop context present");
        result?;
        self.emit_outer(Op::Loop { trip, body: lc.ops });
        // Post-loop bindings.
        for (w, chain) in &lc.chains {
            self.bind_sym(*w, SymVal::Scalar(chain.start + chain.w * trip));
        }
        for (w, bind) in &lc.binds {
            if *w == counter || lc.chains.contains_key(w) {
                continue;
            }
            match bind {
                LBind::Reg(r) => {
                    self.bind_sym(*w, SymVal::Scalar(r.base + r.stride * (trip - 1)));
                }
                LBind::IterKnown(vals) => {
                    self.bind_known(*w, vals[trip as usize - 1].clone());
                }
                LBind::Counter => {}
            }
        }
        // Apply indexed writes iteration-major (last write per cell wins).
        if !lc.elem_writes.is_empty() {
            let mut vectors: HashMap<u32, Vec<Elem>> = HashMap::new();
            for ew in &lc.elem_writes {
                if let std::collections::hash_map::Entry::Vacant(e) = vectors.entry(ew.slot) {
                    e.insert(self.promote_vector(ew.slot)?);
                }
            }
            for it in 0..trip as usize {
                for ew in &lc.elem_writes {
                    let elems = vectors.get_mut(&ew.slot).expect("promoted above");
                    elems[ew.idx0 + it] = Elem::R(ew.base + it as u32);
                }
            }
            for (slot, elems) in vectors {
                self.bind_sym(slot, SymVal::Vector(elems));
            }
        }
        self.unbind(counter);
        Ok(())
    }

    /// Compiles one loop-body statement chain.
    fn lstmt(&mut self, e: &RGExpr) -> Result<(), Decline> {
        let mut cur = e;
        loop {
            match cur {
                RGExpr::Unit => return Ok(()),
                RGExpr::LetDet { slot, value, body } => {
                    self.l_letdet(*slot, value)?;
                    cur = body;
                }
                RGExpr::LetIndexed {
                    slot,
                    indices,
                    value,
                    body,
                } => {
                    self.l_letindexed(*slot, indices, value)?;
                    cur = body;
                }
                RGExpr::Observe { dist, value, body } => {
                    self.l_observe(dist, value)?;
                    cur = body;
                }
                RGExpr::Factor { value, body } => {
                    self.l_factor(value)?;
                    cur = body;
                }
                RGExpr::Return(v) => {
                    // The state tuple closing the body: must be error-free
                    // per iteration (its value is discarded).
                    if !self.safe_discard(v) {
                        return Err(decline("loop-body return is not a plain state tuple"));
                    }
                    return Ok(());
                }
                other => {
                    // The pre-scan declined every other form already.
                    return Err(decline(format!(
                        "unsupported statement inside a compiled loop: {other:?}"
                    )));
                }
            }
        }
    }

    /// Evaluates a data-and-counter-determined expression for every
    /// iteration at compile time.
    fn eval_per_iter(&mut self, e: &RExpr) -> Result<Vec<Value<f64>>, Decline> {
        let (counter, lo, trip, iter_known) = {
            let lc = self.lc.as_ref().expect("loop context");
            let ik: Vec<(u32, std::rc::Rc<Vec<Value<f64>>>)> = lc
                .binds
                .iter()
                .filter_map(|(s, b)| match b {
                    LBind::IterKnown(v) => Some((*s, v.clone())),
                    _ => None,
                })
                .collect();
            (lc.counter, lc.lo, lc.trip, ik)
        };
        let mut out = Vec::with_capacity(trip as usize);
        let mut failure = None;
        for it in 0..trip {
            self.known.set(counter, Value::Int(lo + it as i64));
            for (s, vals) in &iter_known {
                self.known.set(*s, vals[it as usize].clone());
            }
            match self.keval(e) {
                Ok(v) => out.push(v),
                Err(d) => {
                    failure = Some(d);
                    break;
                }
            }
        }
        self.known.clear(counter);
        for (s, _) in &iter_known {
            self.known.clear(*s);
        }
        match failure {
            Some(d) => Err(d),
            None => Ok(out),
        }
    }

    /// A per-iteration scalar table from compile-time values.
    fn iter_table(&mut self, vals: &[Value<f64>]) -> Result<u32, Decline> {
        let mut flat = Vec::with_capacity(vals.len());
        for v in vals {
            flat.push(v.as_real().map_err(|e| decline(e.message().to_string()))?);
        }
        Ok(self.table_f(flat))
    }

    /// Compiles a scalar expression inside a loop body to an operand.
    fn cexpr_loop(&mut self, e: &RExpr) -> Result<A, Decline> {
        match self.dep(e) {
            Dep::Invariant => {
                let saved = self.lc.take();
                let r = self.cexpr(e);
                self.lc = saved;
                match r? {
                    CVal::Known(v) => Ok(A::Const(
                        v.as_real().map_err(|e| decline(e.message().to_string()))?,
                    )),
                    CVal::Scalar(r) => Ok(A::Reg(Reg::abs(r))),
                    CVal::Vector(_) => Err(decline("container value inside a compiled loop")),
                }
            }
            Dep::CounterKnown => {
                let vals = self.eval_per_iter(e)?;
                let t = self.iter_table(&vals)?;
                Ok(A::Table(t))
            }
            Dep::Symbolic => self.cexpr_loop_sym(e),
        }
    }

    fn cexpr_loop_sym(&mut self, e: &RExpr) -> Result<A, Decline> {
        match e {
            RExpr::Slot(s) => {
                let lb = self
                    .lc
                    .as_ref()
                    .expect("loop context")
                    .binds
                    .get(s)
                    .cloned();
                match lb {
                    Some(LBind::Reg(r)) => Ok(A::Reg(r)),
                    Some(_) => unreachable!("counter/iter-known reads classify CounterKnown"),
                    None => match self.sym.get(s) {
                        Some(SymVal::Scalar(r)) => Ok(A::Reg(Reg::abs(*r))),
                        Some(SymVal::Vector(_)) => {
                            Err(decline("container value inside a compiled loop"))
                        }
                        None => Err(decline("symbolic slot lost its binding")),
                    },
                }
            }
            RExpr::Unary(op, a) => match op {
                UnOp::Plus => self.cexpr_loop(a),
                UnOp::Neg => {
                    let a = self.cexpr_loop(a)?;
                    let r = self.map1(UF::R(UnFn::Neg), CV1::S(a));
                    let CV1::S(a) = r else { unreachable!() };
                    Ok(a)
                }
                UnOp::Not => Err(decline("logical not of a parameter-dependent value")),
            },
            RExpr::Binary(op, a, b) => {
                use BinOp::*;
                if matches!(op, Eq | Neq | Lt | Leq | Gt | Geq | And | Or) {
                    return Err(decline(
                        "comparison or logical operator on parameter-dependent values",
                    ));
                }
                if matches!(op, Pow) {
                    if self.dep(b) != Dep::Invariant {
                        return Err(decline("parameter-dependent exponent"));
                    }
                    let p = self
                        .keval(b)?
                        .as_real()
                        .map_err(|e| decline(e.message().to_string()))?;
                    let a = self.cexpr_loop(a)?;
                    let f = if p.fract() == 0.0 && p.abs() < 1e6 {
                        UF::R(UnFn::Powi(p as i32))
                    } else {
                        UF::R(UnFn::Powf(p))
                    };
                    let CV1::S(r) = self.map1(f, CV1::S(a)) else {
                        unreachable!()
                    };
                    return Ok(r);
                }
                let f = match op {
                    Add => BinF::Add,
                    Sub => BinF::Sub,
                    Mul | EltMul => BinF::Mul,
                    Div | EltDiv => BinF::Div,
                    Mod => BinF::ZeroMod,
                    _ => unreachable!(),
                };
                let a = self.cexpr_loop(a)?;
                let b = self.cexpr_loop(b)?;
                let CV1::S(r) = self.map2(f, CV1::S(a), CV1::S(b))? else {
                    unreachable!()
                };
                Ok(r)
            }
            RExpr::Index(base, indices) => self.l_index(base, indices),
            RExpr::Call(name, target, args) => {
                if matches!(target, crate::resolved::CallTarget::User(_)) {
                    return Err(decline(format!("user-defined function call `{name}`")));
                }
                self.l_builtin(name, args)
            }
            RExpr::Ternary(c, ..) => {
                if self.dep(c) == Dep::Invariant {
                    // Condition constant: pick the branch.
                    let cond = self
                        .keval(c)?
                        .as_real()
                        .map_err(|e| decline(e.message().to_string()))?;
                    let RExpr::Ternary(_, a, b) = e else {
                        unreachable!()
                    };
                    if cond != 0.0 {
                        self.cexpr_loop(a)
                    } else {
                        self.cexpr_loop(b)
                    }
                } else {
                    Err(decline("loop-varying ternary condition"))
                }
            }
            RExpr::ArrayLit(_) | RExpr::VectorLit(_) | RExpr::Range(..) => {
                Err(decline("container value inside a compiled loop"))
            }
            RExpr::IntLit(_) | RExpr::RealLit(_) | RExpr::StringLit(_) => {
                unreachable!("literals classify invariant")
            }
        }
    }

    /// A symbolic element read `vec[counter + c]` (or known-index element)
    /// inside a loop body.
    fn l_index(&mut self, base: &RExpr, indices: &[RIndex]) -> Result<A, Decline> {
        let RExpr::Slot(s) = base else {
            return Err(decline("unsupported indexing in a compiled loop"));
        };
        let [RIndex::One(idx)] = indices else {
            return Err(decline("unsupported indexing in a compiled loop"));
        };
        let Some(SymVal::Vector(elems)) = self.sym.get(s).cloned() else {
            return Err(decline("unsupported indexing in a compiled loop"));
        };
        let (counter, lo, trip) = {
            let lc = self.lc.as_ref().expect("loop context");
            if lc.vec_writes.contains(s) {
                return Err(decline(
                    "loop both reads and element-writes the same container",
                ));
            }
            (lc.counter, lc.lo, lc.trip)
        };
        if let Some(off) = affine_offset(idx, counter) {
            let first = lo + off - 1; // 0-based element index at iter 0
            if first < 0 || (first + trip as i64) > elems.len() as i64 {
                return Err(decline(format!(
                    "loop window {}..{} out of bounds for length {}",
                    first + 1,
                    first + trip as i64,
                    elems.len()
                )));
            }
            let span = self.materialize(&elems, Some(*s));
            return Ok(A::Reg(Reg {
                base: span + first as u32,
                stride: 1,
            }));
        }
        if self.dep(idx) == Dep::Invariant {
            let i = self.kint(idx)?;
            if i < 1 || i as usize > elems.len() {
                return Err(decline(format!(
                    "index {i} out of bounds for length {}",
                    elems.len()
                )));
            }
            return Ok(match elems[(i - 1) as usize] {
                Elem::K(v) => A::Const(v),
                Elem::R(r) => A::Reg(Reg::abs(r)),
            });
        }
        Err(decline("unsupported indexing in a compiled loop"))
    }

    /// Scalar builtin calls inside a loop body.
    fn l_builtin(&mut self, name: &str, args: &[RExpr]) -> Result<A, Decline> {
        if let Some(dist_name) = crate::eval::strip_lpdf_suffix(name) {
            let Some(kind) = DistKind::from_name(dist_name) else {
                return Err(decline(format!("unknown distribution `{dist_name}`")));
            };
            if args.is_empty() {
                return Err(decline(format!("{name}: missing observed value")));
            }
            let x = self.cexpr_loop(&args[0])?;
            let (sargs, k) = self.l_site_args(kind, &args[1..])?;
            let dst = self.fresh_dst();
            self.emit(Op::ScoreVal {
                kind,
                dst,
                x,
                args: sargs,
                k,
            });
            return Ok(A::Reg(dst));
        }
        if name.ends_with("_lcdf") || name.ends_with("_lccdf") || name.ends_with("_cdf") {
            return Err(decline(format!("cumulative distribution `{name}`")));
        }
        if name.ends_with("_rng") {
            return Err(decline(format!("rng builtin `{name}` in the density body")));
        }
        // Unary chains over scalar operands reuse the shared table.
        if args.len() == 1 {
            let a = self.cexpr_loop(&args[0])?;
            if let Some(r) = self.unary_map(name, CV1::S(a))? {
                let CV1::S(a) = r else { unreachable!() };
                return Ok(a);
            }
            // Not in the unary table: fall through to the n-ary matches.
        }
        let sarg = |c: &mut Self, i: usize| -> Result<A, Decline> {
            args.get(i)
                .ok_or_else(|| decline(format!("{name}: missing argument {i}")))
                .and_then(|e| c.cexpr_loop(e))
        };
        let s = |a: A| CV1::S(a);
        let unwrap = |v: CV1| -> A {
            let CV1::S(a) = v else { unreachable!() };
            a
        };
        match name {
            "pow" => {
                if self.dep(&args[1]) != Dep::Invariant {
                    return Err(decline("parameter-dependent exponent"));
                }
                let p = self
                    .keval(&args[1])?
                    .as_real()
                    .map_err(|e| decline(e.message().to_string()))?;
                let x = sarg(self, 0)?;
                let f = if p.fract() == 0.0 && p.abs() < 1e6 {
                    UF::R(UnFn::Powi(p as i32))
                } else {
                    UF::R(UnFn::Powf(p))
                };
                Ok(unwrap(self.map1(f, s(x))))
            }
            "fmax" | "max" => {
                let a = sarg(self, 0)?;
                let b = sarg(self, 1)?;
                Ok(unwrap(self.map2(BinF::Max, s(a), s(b))?))
            }
            "fmin" | "min" => {
                let a = sarg(self, 0)?;
                let b = sarg(self, 1)?;
                Ok(unwrap(self.map2(BinF::Min, s(a), s(b))?))
            }
            "fma" => {
                let a = sarg(self, 0)?;
                let b = sarg(self, 1)?;
                let c0 = sarg(self, 2)?;
                let t = self.map2(BinF::Mul, s(a), s(b))?;
                Ok(unwrap(self.map2(BinF::Add, t, s(c0))?))
            }
            "hypot" => {
                let a = sarg(self, 0)?;
                let b = sarg(self, 1)?;
                let aa = self.map2(BinF::Mul, s(a), s(a))?;
                let bb = self.map2(BinF::Mul, s(b), s(b))?;
                let sum = self.map2(BinF::Add, aa, bb)?;
                Ok(unwrap(self.map1(UF::R(UnFn::Sqrt), sum)))
            }
            "atan2" => {
                let a = sarg(self, 0)?;
                let b = sarg(self, 1)?;
                Ok(unwrap(self.map2(BinF::ZeroAtan2, s(a), s(b))?))
            }
            "log_sum_exp" if args.len() == 2 => {
                let a = sarg(self, 0)?;
                let b = sarg(self, 1)?;
                match self.log_sum_exp_pair(a, b)? {
                    CVal::Scalar(r) => Ok(A::Reg(Reg::abs(r))),
                    _ => unreachable!(),
                }
            }
            "log_mix" => {
                let theta = sarg(self, 0)?;
                let a = sarg(self, 1)?;
                let b = sarg(self, 2)?;
                let m = self.map2(BinF::ZeroMaxVal, s(a), s(b))?;
                let da = self.map2(BinF::Sub, s(a), m)?;
                let ea = self.map1(UF::R(UnFn::Exp), da);
                let t1 = self.map2(BinF::Mul, s(theta), ea)?;
                let onem = self.map2(BinF::Sub, s(A::Const(1.0)), s(theta))?;
                let db = self.map2(BinF::Sub, s(b), m)?;
                let eb = self.map1(UF::R(UnFn::Exp), db);
                let t2 = self.map2(BinF::Mul, onem, eb)?;
                let sum = self.map2(BinF::Add, t1, t2)?;
                let l = self.map1(UF::R(UnFn::Ln), sum);
                Ok(unwrap(self.map2(BinF::Add, m, l)?))
            }
            other => Err(decline(format!(
                "builtin `{other}` has no in-loop density-program rule"
            ))),
        }
    }

    /// Distribution arguments of an in-loop score site.
    fn l_site_args(&mut self, kind: DistKind, args: &[RExpr]) -> Result<([A; 3], u8), Decline> {
        if kind.is_multivariate() || kind.has_vector_param() || !supports_elem(kind) {
            return Err(decline(format!(
                "distribution `{}` has no elem kernel",
                kind.name()
            )));
        }
        let k = sweep_arity(kind);
        let mut out = [A::Const(0.0); 3];
        if kind == DistKind::ImproperUniform {
            for (j, default) in [(0usize, f64::NEG_INFINITY), (1usize, f64::INFINITY)] {
                out[j] = match args.get(j) {
                    None => A::Const(default),
                    Some(e) => {
                        if self.dep(e) == Dep::Invariant {
                            A::Const(self.keval(e)?.as_real().unwrap_or(default))
                        } else {
                            return Err(decline("parameter-dependent improper_uniform bound"));
                        }
                    }
                };
            }
            return Ok((out, k as u8));
        }
        if args.len() < k {
            return Err(decline(format!("{}: missing arguments", kind.name())));
        }
        for (j, item) in out.iter_mut().enumerate().take(k) {
            *item = self.cexpr_loop(&args[j])?;
        }
        Ok((out, k as u8))
    }

    fn l_observe(&mut self, dist: &RDistCall, value: &RExpr) -> Result<(), Decline> {
        let Some(kind) = dist.kind else {
            return Err(decline(format!("unknown distribution `{}`", dist.name)));
        };
        let x = self.cexpr_loop(value)?;
        let (args, k) = self.l_site_args(kind, &dist.args)?;
        self.emit(Op::ScoreElem { kind, x, args, k });
        Ok(())
    }

    fn l_factor(&mut self, value: &RExpr) -> Result<(), Decline> {
        match self.dep(value) {
            Dep::Invariant | Dep::CounterKnown => {
                let vals = self.eval_per_iter(value)?;
                let mut flat = Vec::with_capacity(vals.len());
                for v in vals {
                    flat.push(
                        v.sum_as_real()
                            .map_err(|e| decline(e.message().to_string()))?,
                    );
                }
                let t = self.table_f(flat);
                self.emit(Op::AddScore { a: A::Table(t) });
            }
            Dep::Symbolic => {
                let a = self.cexpr_loop(value)?;
                self.emit(Op::AddScore { a });
            }
        }
        Ok(())
    }

    fn l_letdet(&mut self, slot: u32, value: &RExpr) -> Result<(), Decline> {
        let dep = self.dep(value);
        let chained = self
            .lc
            .as_ref()
            .expect("loop context")
            .chains
            .contains_key(&slot);
        if chained {
            let a = match dep {
                Dep::Invariant | Dep::CounterKnown => {
                    let vals = self.eval_per_iter(value)?;
                    let t = self.iter_table(&vals)?;
                    A::Table(t)
                }
                Dep::Symbolic => self.cexpr_loop(value)?,
            };
            let lc = self.lc.as_mut().expect("loop context");
            let chain = lc.chains.get_mut(&slot).expect("chained");
            chain.k += 1;
            let dst = Reg {
                base: chain.start + chain.k,
                stride: chain.w,
            };
            lc.binds.insert(slot, LBind::Reg(dst));
            self.emit(Op::Mov { dst, a });
            return Ok(());
        }
        match dep {
            Dep::Invariant | Dep::CounterKnown => {
                let vals = self.eval_per_iter(value)?;
                self.lc
                    .as_mut()
                    .expect("loop context")
                    .binds
                    .insert(slot, LBind::IterKnown(std::rc::Rc::new(vals)));
            }
            Dep::Symbolic => {
                let a = self.cexpr_loop(value)?;
                let r = match a {
                    A::Reg(r) => r,
                    // A constant/table value written to a fresh local still
                    // needs a register so later reads are uniform.
                    other => {
                        let dst = self.fresh_dst();
                        self.emit(Op::Mov { dst, a: other });
                        dst
                    }
                };
                self.lc
                    .as_mut()
                    .expect("loop context")
                    .binds
                    .insert(slot, LBind::Reg(r));
            }
        }
        Ok(())
    }

    fn l_letindexed(&mut self, slot: u32, indices: &[RExpr], value: &RExpr) -> Result<(), Decline> {
        let [index] = indices else {
            return Err(decline(
                "multi-dimensional indexed write in a compiled loop",
            ));
        };
        let (counter, lo, trip) = {
            let lc = self.lc.as_ref().expect("loop context");
            (lc.counter, lc.lo, lc.trip)
        };
        let Some(off) = affine_offset(index, counter) else {
            return Err(decline(
                "indexed write without a unit-stride affine index in a compiled loop",
            ));
        };
        // Validate the target window against the container's length now.
        let len = match (self.sym.get(&slot), self.known.get(slot)) {
            (Some(SymVal::Vector(elems)), _) => elems.len(),
            (Some(SymVal::Scalar(_)), _) => return Err(decline("cannot assign into a scalar")),
            (None, Some(Value::Vector(v))) => v.len(),
            (None, Some(Value::IntArray(v))) => v.len(),
            (None, Some(other)) => {
                return Err(decline(format!(
                    "symbolic assignment into a {}",
                    other.kind()
                )))
            }
            (None, None) => return Err(decline("assignment into an unbound container")),
        };
        let first = lo + off - 1;
        if first < 0 || (first + trip as i64) > len as i64 {
            return Err(decline(format!(
                "loop write window {}..{} out of bounds for length {len}",
                first + 1,
                first + trip as i64
            )));
        }
        let a = match self.dep(value) {
            Dep::Invariant | Dep::CounterKnown => {
                let vals = self.eval_per_iter(value)?;
                let t = self.iter_table(&vals)?;
                A::Table(t)
            }
            Dep::Symbolic => self.cexpr_loop(value)?,
        };
        let base = self.alloc(trip);
        self.emit(Op::Mov {
            dst: Reg { base, stride: 1 },
            a,
        });
        self.lc
            .as_mut()
            .expect("loop context")
            .elem_writes
            .push(ElemWrite {
                slot,
                base,
                idx0: first as usize,
            });
        Ok(())
    }

    /// Compiles a lowered observe sweep as a batch-kernel op. `Ok(Some(_))`
    /// means the shapes are ones the *runtime* would send to the retained
    /// fallback loop (which may succeed) — the caller compiles that loop
    /// instead. Hard errors (shapes whose runtime path raises) decline the
    /// whole program so the retained path reports them identically.
    fn try_sweep_compile(&mut self, sweep: &RSweep) -> Result<Option<UseLoop>, Decline> {
        if !supports_sweep(sweep.kind) {
            return Ok(Some(UseLoop));
        }
        if self.dep(&sweep.lo) != Dep::Invariant || self.dep(&sweep.hi) != Dep::Invariant {
            return Err(decline("parameter-dependent loop bounds"));
        }
        let lo = self.kint(&sweep.lo)?;
        let hi = self.kint(&sweep.hi)?;
        if hi < lo {
            self.unbind(sweep.loop_slot);
            return Ok(None);
        }
        let n = (hi - lo + 1) as usize;
        let window = |len: usize, off: i64| -> Result<usize, Decline> {
            let start = lo + off;
            let end = hi + off;
            if start < 1 || end as usize > len {
                Err(decline(format!(
                    "sweep window {start}..{end} out of bounds for length {len}"
                )))
            } else {
                Ok((start - 1) as usize)
            }
        };
        let target_hint = match &sweep.target.base {
            RExpr::Slot(s) => Some(*s),
            _ => None,
        };
        let xs = match self.cexpr(&sweep.target.base)? {
            CVal::Known(Value::Vector(v)) => {
                let s = window(v.len(), sweep.target.offset)?;
                VX::TableF(self.table_f(v[s..s + n].to_vec()))
            }
            CVal::Known(Value::IntArray(v)) => {
                let s = window(v.len(), sweep.target.offset)?;
                VX::TableI(self.table_i(v[s..s + n].to_vec()))
            }
            CVal::Vector(elems) => {
                let s = window(elems.len(), sweep.target.offset)?;
                let span = self.materialize(&elems, target_hint);
                VX::Span(span + s as u32)
            }
            // Nested arrays (and scalars) make the runtime take the
            // fallback loop; compile that loop instead.
            _ => return Ok(Some(UseLoop)),
        };
        let mut sargs = [SA::Sc(A::Const(0.0)); 3];
        let k = sweep.args.len().min(3);
        for (j, spec) in sweep.args.iter().enumerate().take(3) {
            sargs[j] = match spec {
                SweepArgSpec::Invariant(e) => match self.cexpr(e)? {
                    CVal::Known(Value::Real(x)) => SA::Sc(A::Const(x)),
                    CVal::Known(Value::Int(i)) => SA::Sc(A::Const(i as f64)),
                    CVal::Scalar(r) => SA::Sc(A::Reg(Reg::abs(r))),
                    _ => return Err(decline("container-valued invariant sweep argument")),
                },
                SweepArgSpec::Indexed(access) => {
                    let hint = match &access.base {
                        RExpr::Slot(s) => Some(*s),
                        _ => None,
                    };
                    match self.cexpr(&access.base)? {
                        CVal::Known(Value::Vector(v)) => {
                            let s = window(v.len(), access.offset)?;
                            SA::TableF(self.table_f(v[s..s + n].to_vec()))
                        }
                        CVal::Known(Value::IntArray(v)) => {
                            let s = window(v.len(), access.offset)?;
                            SA::TableI(self.table_i(v[s..s + n].to_vec()))
                        }
                        CVal::Vector(elems) => {
                            let s = window(elems.len(), access.offset)?;
                            let span = self.materialize(&elems, hint);
                            SA::Span(span + s as u32)
                        }
                        _ => return Ok(Some(UseLoop)),
                    }
                }
                SweepArgSpec::Elementwise(e) => {
                    match self.windowed(e, sweep.loop_slot, lo, hi) {
                        Ok(CV1::V(VA::Span(s), m)) if m as usize == n => SA::Span(s),
                        Ok(CV1::V(VA::Table(t), m)) if m as usize == n => SA::TableF(t),
                        // Anything else (including failures): the generic
                        // loop path owns the precise outcome.
                        _ => return Ok(Some(UseLoop)),
                    }
                }
            };
        }
        self.emit(Op::ScoreSweep {
            kind: sweep.kind,
            xs,
            args: sargs,
            k: k as u8,
            len: n as u32,
        });
        self.unbind(sweep.loop_slot);
        Ok(None)
    }

    /// Vectorizes an element-wise sweep argument over the counter window:
    /// the expression's affine element reads become window spans/tables and
    /// scalar operations become span ops. Any failure routes the sweep to
    /// the generic loop path.
    fn windowed(&mut self, e: &RExpr, counter: u32, lo: i64, hi: i64) -> Result<CV1, Decline> {
        let n = (hi - lo + 1) as u32;
        if !crate::resolved::mentions_slot(e, counter) {
            // Loop-invariant: one scalar broadcast.
            return match self.cexpr(e)? {
                CVal::Known(Value::Real(x)) => Ok(CV1::S(A::Const(x))),
                CVal::Known(Value::Int(i)) => Ok(CV1::S(A::Const(i as f64))),
                CVal::Scalar(r) => Ok(CV1::S(A::Reg(Reg::abs(r)))),
                _ => Err(decline("container-valued element in a windowed expression")),
            };
        }
        // Counter-dependent but data-determined: evaluate per element.
        let mut all_known = true;
        for_each_slot(e, &mut |s| {
            if s != counter && self.sym.contains_key(&s) {
                all_known = false;
            }
        });
        if all_known {
            let vals = self.eval_window(e, counter, lo, hi)?;
            return Ok(CV1::V(VA::Table(self.table_f(vals)), n));
        }
        match e {
            RExpr::Slot(_) => Err(decline("loop counter used as a value")), // only the counter reaches here
            RExpr::Unary(op, a) => match op {
                UnOp::Plus => self.windowed(a, counter, lo, hi),
                UnOp::Neg => {
                    let v = self.windowed(a, counter, lo, hi)?;
                    Ok(self.map1(UF::R(UnFn::Neg), v))
                }
                UnOp::Not => Err(decline("logical not in a windowed expression")),
            },
            RExpr::Binary(op, a, b) => {
                use BinOp::*;
                if matches!(op, Eq | Neq | Lt | Leq | Gt | Geq | And | Or) {
                    return Err(decline("comparison in a windowed expression"));
                }
                if matches!(op, Pow) {
                    let CV1::S(A::Const(p)) = self.windowed(b, counter, lo, hi)? else {
                        return Err(decline("non-constant exponent in a windowed expression"));
                    };
                    let va = self.windowed(a, counter, lo, hi)?;
                    let f = if p.fract() == 0.0 && p.abs() < 1e6 {
                        UF::R(UnFn::Powi(p as i32))
                    } else {
                        UF::R(UnFn::Powf(p))
                    };
                    return Ok(self.map1(f, va));
                }
                let f = match op {
                    Add => BinF::Add,
                    Sub => BinF::Sub,
                    // Per-element scalar semantics: multiplication is
                    // element-wise here, never a dot product.
                    Mul | EltMul => BinF::Mul,
                    Div | EltDiv => BinF::Div,
                    Mod => BinF::ZeroMod,
                    _ => unreachable!(),
                };
                let va = self.windowed(a, counter, lo, hi)?;
                let vb = self.windowed(b, counter, lo, hi)?;
                self.map2(f, va, vb)
            }
            RExpr::Index(base, indices) => {
                let RExpr::Slot(s) = &**base else {
                    return Err(decline("unsupported windowed indexing"));
                };
                let [RIndex::One(idx)] = indices.as_slice() else {
                    return Err(decline("unsupported windowed indexing"));
                };
                let Some(off) = affine_offset(idx, counter) else {
                    return Err(decline("unsupported windowed indexing"));
                };
                let Some(SymVal::Vector(elems)) = self.sym.get(s).cloned() else {
                    return Err(decline("unsupported windowed indexing"));
                };
                let first = lo + off - 1;
                if first < 0 || (first + n as i64) > elems.len() as i64 {
                    return Err(decline("windowed read out of bounds"));
                }
                let span = self.materialize(&elems, Some(*s));
                Ok(CV1::V(VA::Span(span + first as u32), n))
            }
            RExpr::Call(name, target, args) => {
                if matches!(target, crate::resolved::CallTarget::User(_)) {
                    return Err(decline(format!("user-defined function call `{name}`")));
                }
                if args.len() == 1 {
                    let v = self.windowed(&args[0], counter, lo, hi)?;
                    if let Some(r) = self.unary_map(name, v)? {
                        return Ok(r);
                    }
                }
                Err(decline(format!(
                    "builtin `{name}` has no windowed density-program rule"
                )))
            }
            _ => Err(decline("unsupported windowed expression")),
        }
    }

    /// Per-element compile-time evaluation of a data-and-counter expression.
    fn eval_window(
        &mut self,
        e: &RExpr,
        counter: u32,
        lo: i64,
        hi: i64,
    ) -> Result<Vec<f64>, Decline> {
        let mut out = Vec::with_capacity((hi - lo + 1) as usize);
        let mut failure = None;
        for v in lo..=hi {
            self.known.set(counter, Value::Int(v));
            match self
                .keval(e)
                .and_then(|x| x.as_real().map_err(|e| decline(e.message().to_string())))
            {
                Ok(x) => out.push(x),
                Err(d) => {
                    failure = Some(d);
                    break;
                }
            }
        }
        self.known.clear(counter);
        match failure {
            Some(d) => Err(d),
            None => Ok(out),
        }
    }
}

/// Compiles a bound model's resolved body into a tape-free density program,
/// or declines with a stated reason (the model then keeps the `Var`/tape
/// gradient path).
///
/// `slots` is the unconstrained parameter layout (parallel to
/// `resolved.params`), and `data_frame` the post-`transformed data` frame
/// the model evaluates against.
///
/// # Errors
/// Returns a [`Decline`] naming the construct without a compiled rule.
pub fn compile(
    program: &GProbProgram,
    resolved: &ResolvedProgram,
    data_frame: &Frame<f64>,
    slots: &[ParamSlot],
) -> Result<DProg, Decline> {
    if !program.networks.is_empty() {
        return Err(decline("model declares external network functions"));
    }
    if !resolved.fused {
        return Err(decline("scalar (unfused) resolution configuration"));
    }
    let dim: usize = slots.iter().map(|s| s.size).sum();
    let mut c = Compiler {
        resolved,
        functions: &program.functions,
        known: data_frame.clone(),
        sym: HashMap::new(),
        param_regs: HashMap::new(),
        span_cache: HashMap::new(),
        next_reg: dim as u32,
        const_init: Vec::new(),
        tables_f: Vec::new(),
        tables_i: Vec::new(),
        outer_ops: Vec::new(),
        lc: None,
    };
    for (ps, rp) in slots.iter().zip(&resolved.params) {
        if ps.dims.len() > 1 {
            return Err(decline(format!("matrix-shaped parameter `{}`", ps.name)));
        }
        let len = ps.size as u32;
        let dst = c.alloc(len);
        c.emit_outer(Op::Constrain {
            kind: ps.constraint,
            src: ps.offset as u32,
            dst,
            len,
        });
        let binding = if ps.dims.is_empty() {
            SymVal::Scalar(dst)
        } else {
            SymVal::Vector((0..len).map(|i| Elem::R(dst + i)).collect())
        };
        // Ensure the data frame cannot shadow a parameter slot.
        c.known.clear(rp.slot);
        c.param_regs.insert(rp.slot, binding);
    }
    c.cstmt(&resolved.body)?;
    Ok(DProg {
        n_inputs: dim,
        n_regs: c.next_reg as usize,
        const_init: c.const_init,
        ops: c.outer_ops,
        tables_f: c.tables_f,
        tables_i: c.tables_i,
    })
}

#[cfg(test)]
mod tests {
    use super::AlignedBuf;

    #[test]
    fn aligned_pools_are_64_byte_aligned_zeroed_and_cloneable() {
        for len in [1usize, 7, 8, 64, 1000] {
            let mut buf = AlignedBuf::zeroed(len);
            assert_eq!(buf.as_ptr() as usize % 64, 0, "len {len} misaligned");
            assert_eq!(buf.len(), len);
            assert!(buf.iter().all(|&x| x == 0.0), "len {len} not zeroed");
            buf[len - 1] = 3.5;
            let clone = buf.clone();
            assert_eq!(clone.as_ptr() as usize % 64, 0);
            assert_eq!(clone[len - 1], 3.5);
            // The clone owns its storage.
            assert_ne!(clone.as_ptr(), buf.as_ptr());
        }
        let empty = AlignedBuf::zeroed(0);
        assert_eq!(empty.len(), 0);
    }
}
