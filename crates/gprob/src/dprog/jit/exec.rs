//! Executable code pages with a W^X lifecycle.
//!
//! A [`CodeBuf`] owns one anonymous private mapping obtained from `mmap`.
//! The page is created **read+write** (never executable), the emitted bytes
//! are copied in, and the protection is then flipped to **read+execute**
//! with `mprotect` before the buffer is ever entered. There is no point in
//! the lifecycle where the mapping is simultaneously writable and
//! executable, and a published buffer is immutable until `munmap` at drop.
//!
//! The syscall wrappers are declared directly (`extern "C"` against the
//! libc the standard library already links) so the crate stays free of
//! vendored dependencies. Everything here is gated to `x86_64-linux`; other
//! targets decline JIT compilation before reaching this module.

/// Raw libc bindings for the three calls the code-page lifecycle needs.
mod sys {
    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const PROT_EXEC: i32 = 4;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_ANONYMOUS: i32 = 0x20;

    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn mprotect(addr: *mut u8, len: usize, prot: i32) -> i32;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }
}

/// One published, immutable, executable code page (see the module docs for
/// the W^X lifecycle).
pub(super) struct CodeBuf {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

// The mapping is exclusively owned, written only before publication, and
// read-only (RX) afterwards: sharing references across threads is safe.
unsafe impl Send for CodeBuf {}
unsafe impl Sync for CodeBuf {}

impl CodeBuf {
    /// Maps a fresh RW page, copies `code` in, and flips it to RX.
    ///
    /// # Errors
    /// A short message when `mmap` or `mprotect` refuses (the caller turns
    /// this into a JIT decline; the interpreted program stays in place).
    pub(super) fn publish(code: &[u8]) -> Result<CodeBuf, String> {
        if code.is_empty() {
            return Err("empty code buffer".to_string());
        }
        let len = code.len();
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr.is_null() || ptr as usize == usize::MAX {
            return Err("mmap failed".to_string());
        }
        unsafe { std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, len) };
        if unsafe { sys::mprotect(ptr, len, sys::PROT_READ | sys::PROT_EXEC) } != 0 {
            unsafe { sys::munmap(ptr, len) };
            return Err("mprotect(RX) failed".to_string());
        }
        Ok(CodeBuf {
            ptr: std::ptr::NonNull::new(ptr).expect("non-null mapping"),
            len,
        })
    }

    /// Base address of the mapping (stable for the buffer's lifetime).
    pub(super) fn base(&self) -> *const u8 {
        self.ptr.as_ptr()
    }

    /// Mapping length in bytes.
    pub(super) fn len(&self) -> usize {
        self.len
    }

    /// The function entry at byte offset `off`, as the JIT ABI type.
    ///
    /// # Safety
    /// `off` must be the start offset of a function emitted into this
    /// buffer whose machine code implements the
    /// `extern "C" fn(*mut f64, *mut f64) -> f64` contract.
    pub(super) unsafe fn entry(
        &self,
        off: usize,
    ) -> unsafe extern "C" fn(*mut f64, *mut f64) -> f64 {
        debug_assert!(off < self.len);
        std::mem::transmute::<*const u8, unsafe extern "C" fn(*mut f64, *mut f64) -> f64>(
            self.ptr.as_ptr().add(off),
        )
    }
}

impl Drop for CodeBuf {
    fn drop(&mut self) {
        unsafe { sys::munmap(self.ptr.as_ptr(), self.len) };
    }
}
