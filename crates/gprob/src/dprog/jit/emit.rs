//! The x86_64 emitter: lowers a [`DProg`] to two straight-line native
//! functions (value-only, and value+gradient) in one byte buffer.
//!
//! # Strategy: full unrolling
//!
//! Every loop trip count, span length, and table index in a `DProg` is
//! static (the compiler constant-folds data at bind time), so the emitted
//! code is *pure straight-line*: loops and span ops unroll completely,
//! `A::Table`/`VA::Table` operands fold to immediate constants, and
//! `Reg { base, stride }` references resolve to absolute byte displacements
//! off the register-file base pointer. There are no back-edges — the only
//! branches are short forward skips implementing the interpreter's reverse
//! zero-guards and `Option` checks. Programs whose unrolled form exceeds
//! [`MAX_CODE_BYTES`] decline and keep the interpreter.
//!
//! # Fidelity contract
//!
//! The emitted instruction sequence replicates the interpreter's arithmetic
//! *operation by operation*: the same IEEE ops in the same order, the same
//! accumulation order (`score`/`jac` kept in dedicated stack slots), literal
//! `partial * g` multiplies even when the partial is `±1.0` (an algebraic
//! shortcut would differ bitwise on NaN adjoints), and zero-guards compiled
//! as `ucomisd` + `jp`(body) + `je`(skip) so a NaN adjoint takes the body
//! exactly as `g != 0.0` does in Rust. Anything transcendental or branchy
//! calls the interpreter's own code through the [`super::abi`] shims.
//! `tests/jit_equivalence.rs` holds the result to bitwise equality.
//!
//! # Register and stack discipline
//!
//! See [`super`] (the module-level docs) for the frame layout and ABI. In
//! short: `r12` = register-file base, `r13` = adjoint base (both
//! callee-saved, live across shim calls), `rax` = scratch for immediate
//! materialization and call targets, `xmm0..xmm4` = expression operands,
//! `xmm5` = negation mask scratch, `xmm6` = read-modify-write scratch for
//! `+=` sequences, `xmm7` = the zero for guard compares. Values that must
//! survive a shim call (the adjoint seed `g`, the `MaxVal` accumulator) are
//! spilled to fixed frame slots, since every XMM register is caller-saved.

use super::super::UF;
use super::super::{constraint_partials, BinF, DProg, Decline, Op, A, VA};
use super::abi;
use minidiff::rules::UnFn;
use probdist::Constraint;

/// Unrolled-code budget; programs that exceed it decline to the interpreter
/// (straight-line code far past this stops being an instruction-cache win).
const MAX_CODE_BYTES: usize = 4 << 20;

// Frame-slot displacements off `rsp` (64-byte scratch area, see prologue).
const OFF_SCORE: i32 = 0; // running `acc.score`
const OFF_JAC: i32 = 8; // running `acc.jac`
const OFF_OUT: i32 = 16; // 4-slot shim output: [dx, d0, d1, d2]
const OFF_G: i32 = 48; // adjoint seed spilled across shim calls
const OFF_ACC: i32 = 56; // reduction accumulator live across shim calls
const FRAME: u8 = 64;

/// The emitted buffer plus the byte offsets of its two entry points.
pub(super) struct Emitted {
    pub(super) code: Vec<u8>,
    pub(super) value_off: usize,
    pub(super) grad_off: usize,
}

/// Memory-operand base registers the emitter addresses through.
#[derive(Clone, Copy, PartialEq)]
enum Base {
    /// `r12` — the register file (`ws.regs`).
    Regs,
    /// `r13` — the adjoint buffer (`ws.adj`).
    Adj,
    /// `rsp` — the 64-byte scratch frame.
    Rsp,
}

/// Raw instruction encoder. Every method appends one instruction; memory
/// operands are always `[base + disp32]` (mod=10), with a SIB byte when the
/// base is `rsp`/`r12` and `REX.B` when it is `r12`/`r13`.
struct Asm {
    code: Vec<u8>,
}

impl Asm {
    fn pos(&self) -> usize {
        self.code.len()
    }

    fn byte(&mut self, b: u8) {
        self.code.push(b);
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.code.extend_from_slice(bs);
    }

    fn imm32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn imm64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn mem_modrm(&mut self, reg: u8, base: Base, disp: i32) {
        match base {
            Base::Regs | Base::Rsp => {
                // rm=100 → SIB follows; SIB 0x24 = no index, base = rsp/r12.
                self.byte(0x80 | (reg << 3) | 0x04);
                self.byte(0x24);
            }
            Base::Adj => {
                self.byte(0x80 | (reg << 3) | 0x05);
            }
        }
        self.imm32(disp as u32);
    }

    /// Two-byte-opcode SSE instruction, register-register form.
    fn sse_rr(&mut self, prefix: u8, opcode: u8, dst: u8, src: u8) {
        self.byte(prefix);
        self.byte(0x0F);
        self.byte(opcode);
        self.byte(0xC0 | (dst << 3) | src);
    }

    /// Two-byte-opcode SSE instruction with a `[base + disp]` operand.
    fn sse_mem(&mut self, prefix: u8, opcode: u8, xmm: u8, base: Base, disp: i32) {
        self.byte(prefix);
        if base != Base::Rsp {
            self.byte(0x41); // REX.B for r12/r13
        }
        self.byte(0x0F);
        self.byte(opcode);
        self.mem_modrm(xmm, base, disp);
    }

    /// `ucomisd` result dispatch for the interpreter's `if g != 0.0` guard:
    /// unordered (NaN) jumps into the body via `jp`, equal-to-zero skips it
    /// via `je`. Returns the `je` fixup to [`Asm::bind`] at the skip label.
    fn jump_if_zero(&mut self) -> usize {
        self.bytes(&[0x7A, 0x06]); // jp +6 (over the je) → body
        self.bytes(&[0x0F, 0x84]); // je rel32 → skip
        let fix = self.pos();
        self.imm32(0);
        fix
    }

    /// `jz rel32` with a fixup (after `test eax, eax`).
    fn jz(&mut self) -> usize {
        self.bytes(&[0x0F, 0x84]);
        let fix = self.pos();
        self.imm32(0);
        fix
    }

    /// Patches a recorded rel32 fixup to jump to the current position.
    fn bind(&mut self, fix: usize) {
        let rel = (self.pos() as i64 - (fix as i64 + 4)) as i32;
        self.code[fix..fix + 4].copy_from_slice(&rel.to_le_bytes());
    }
}

/// The per-program emitter: walks the op list (twice — value entry and
/// gradient entry) translating each op exactly as the interpreter executes
/// it.
struct E<'a> {
    dp: &'a DProg,
    a: Asm,
}

/// Where a scalar/vector operand's adjoint lands, if anywhere — `None`
/// operands (constants, tables) take no reverse bump and their ops can be
/// skipped entirely when nothing else observes them.
fn a_adj(a: A, iter: u32) -> Option<usize> {
    match a {
        A::Reg(r) => Some(r.at(iter)),
        A::Const(_) | A::Table(_) => None,
    }
}

fn va_adj(a: VA, i: usize) -> Option<usize> {
    match a {
        VA::Span(s) => Some(s as usize + i),
        VA::RegS(r) => Some(r.at(0)),
        VA::Table(_) | VA::ConstS(_) => None,
    }
}

fn a_live(a: &A) -> bool {
    matches!(a, A::Reg(_))
}

fn va_live(a: &VA) -> bool {
    matches!(a, VA::Span(_) | VA::RegS(_))
}

/// Whether reversing this op can write any adjoint (if not, the emitted
/// reverse pass omits it — the interpreter would execute it with no
/// observable effect).
fn has_reverse_effect(op: &Op) -> bool {
    match op {
        Op::Bin { a, b, .. } => a_live(a) || a_live(b),
        Op::Un { a, .. } | Op::Mov { a, .. } | Op::AddScore { a } => a_live(a),
        Op::VBin { a, b, .. } => va_live(a) || va_live(b),
        Op::VUn { a, .. } | Op::Sum { a, .. } | Op::AddScoreSpan { a, .. } => va_live(a),
        Op::Dot { a, b, .. } => va_live(a) || va_live(b),
        Op::MatVec { x, .. } => va_live(x),
        Op::MaxVal { .. } => false,
        Op::Constrain { .. } => true,
        Op::ScoreElem { x, args, k, .. } | Op::ScoreVal { x, args, k, .. } => {
            a_live(x) || args[..*k as usize].iter().any(a_live)
        }
        Op::ScoreSweep { xs, args, k, .. } | Op::ScoreSweepVal { xs, args, k, .. } => {
            matches!(xs, super::super::VX::Span(_))
                || args[..*k as usize].iter().any(|sa| {
                    matches!(
                        sa,
                        super::super::SA::Span(_) | super::super::SA::Sc(A::Reg(_))
                    )
                })
        }
        Op::Loop { body, .. } => body.iter().any(has_reverse_effect),
    }
}

impl<'a> E<'a> {
    fn err(msg: &str) -> Decline {
        Decline::new(format!("jit: {msg}"))
    }

    fn check_size(&self) -> Result<(), Decline> {
        if self.a.pos() > MAX_CODE_BYTES {
            return Err(Self::err("unrolled code exceeds the size cap"));
        }
        Ok(())
    }

    fn table_f(&self, t: u32, i: usize) -> Result<f64, Decline> {
        self.dp
            .tables_f
            .get(t as usize)
            .and_then(|v| v.get(i))
            .copied()
            .ok_or_else(|| Self::err("table operand out of range"))
    }

    // -- value materialization --------------------------------------------

    /// `xmm<x> = c` (xorpd for +0.0, else a 64-bit immediate through rax).
    fn load_const(&mut self, x: u8, c: f64) {
        let bits = c.to_bits();
        if bits == 0 {
            self.a.sse_rr(0x66, 0x57, x, x); // xorpd x, x
        } else {
            self.a.bytes(&[0x48, 0xB8]); // mov rax, imm64
            self.a.imm64(bits);
            self.a.bytes(&[0x66, 0x48, 0x0F, 0x6E]); // movq x, rax
            self.a.byte(0xC0 | (x << 3));
        }
    }

    fn load_reg(&mut self, x: u8, idx: usize) {
        self.a.sse_mem(0xF2, 0x10, x, Base::Regs, (idx * 8) as i32);
    }

    fn store_reg(&mut self, x: u8, idx: usize) {
        self.a.sse_mem(0xF2, 0x11, x, Base::Regs, (idx * 8) as i32);
    }

    fn load_adj(&mut self, x: u8, idx: usize) {
        self.a.sse_mem(0xF2, 0x10, x, Base::Adj, (idx * 8) as i32);
    }

    /// `adj[idx] += xmm<x>` (through xmm6; `x` must not be 6).
    fn add_adj(&mut self, x: u8, idx: usize) {
        debug_assert_ne!(x, 6);
        let d = (idx * 8) as i32;
        self.a.sse_mem(0xF2, 0x10, 6, Base::Adj, d);
        self.a.sse_rr(0xF2, 0x58, 6, x); // addsd xmm6, x → adj + v
        self.a.sse_mem(0xF2, 0x11, 6, Base::Adj, d);
    }

    /// `[rsp+off] += xmm<x>` — the score/jac accumulators.
    fn acc_add(&mut self, x: u8, off: i32) {
        debug_assert_ne!(x, 6);
        self.a.sse_mem(0xF2, 0x10, 6, Base::Rsp, off);
        self.a.sse_rr(0xF2, 0x58, 6, x);
        self.a.sse_mem(0xF2, 0x11, 6, Base::Rsp, off);
    }

    fn spill(&mut self, x: u8, off: i32) {
        self.a.sse_mem(0xF2, 0x11, x, Base::Rsp, off);
    }

    fn reload(&mut self, x: u8, off: i32) {
        self.a.sse_mem(0xF2, 0x10, x, Base::Rsp, off);
    }

    /// `xmm<x> = -xmm<x>` via sign-bit xor (bitwise `f64::neg`).
    fn negate(&mut self, x: u8) {
        self.load_const(5, f64::from_bits(0x8000_0000_0000_0000));
        self.a.sse_rr(0x66, 0x57, x, 5); // xorpd x, xmm5
    }

    fn load_a(&mut self, x: u8, a: A, iter: u32) -> Result<(), Decline> {
        match a {
            A::Reg(r) => self.load_reg(x, r.at(iter)),
            A::Const(c) => self.load_const(x, c),
            A::Table(t) => {
                let c = self.table_f(t, iter as usize)?;
                self.load_const(x, c);
            }
        }
        Ok(())
    }

    fn load_va(&mut self, x: u8, a: VA, i: usize) -> Result<(), Decline> {
        match a {
            VA::Span(s) => self.load_reg(x, s as usize + i),
            VA::Table(t) => {
                let c = self.table_f(t, i)?;
                self.load_const(x, c);
            }
            VA::RegS(r) => self.load_reg(x, r.at(0)),
            VA::ConstS(c) => self.load_const(x, c),
        }
        Ok(())
    }

    // -- calls -------------------------------------------------------------

    fn call(&mut self, f: usize) {
        self.a.bytes(&[0x48, 0xB8]); // mov rax, imm64
        self.a.imm64(f as u64);
        self.a.bytes(&[0xFF, 0xD0]); // call rax
    }

    fn mov_rdi_imm(&mut self, v: u64) {
        self.a.bytes(&[0x48, 0xBF]);
        self.a.imm64(v);
    }

    fn mov_rsi_imm(&mut self, v: u64) {
        self.a.bytes(&[0x48, 0xBE]);
        self.a.imm64(v);
    }

    /// `lea rsi, [rsp + disp]` — a scratch-slot out-pointer for shims.
    fn lea_rsi_rsp(&mut self, disp: i32) {
        self.a.bytes(&[0x48, 0x8D, 0xB4, 0x24]);
        self.a.imm32(disp as u32);
    }

    /// `lea rsi, [r12 + 8·idx]` — `&mut regs[idx]` for the constrain shim.
    fn lea_rsi_regs(&mut self, idx: usize) {
        self.a.bytes(&[0x49, 0x8D, 0xB4, 0x24]);
        self.a.imm32((idx * 8) as u32);
    }

    fn mov_rdx_r12(&mut self) {
        self.a.bytes(&[0x4C, 0x89, 0xE2]);
    }

    fn mov_rcx_r13(&mut self) {
        self.a.bytes(&[0x4C, 0x89, 0xE9]);
    }

    /// Guard prologue for `if g != 0.0` with `g` in `xmm<x>`; returns the
    /// skip fixup.
    fn guard_nonzero(&mut self, x: u8) -> usize {
        self.a.sse_rr(0x66, 0x57, 7, 7); // xorpd xmm7, xmm7
        self.a.sse_rr(0x66, 0x2E, x, 7); // ucomisd x, xmm7
        self.a.jump_if_zero()
    }

    // -- function frame ----------------------------------------------------

    /// `extern "C" fn(regs: *mut f64, adj: *mut f64) -> f64` entry: saves
    /// rbp/r12/r13 (three pushes keep rsp 16-byte aligned at call sites),
    /// opens the 64-byte scratch frame, parks the base pointers, zeroes the
    /// score/jac accumulators.
    fn prologue(&mut self) {
        self.a.byte(0x55); // push rbp
        self.a.bytes(&[0x41, 0x54]); // push r12
        self.a.bytes(&[0x41, 0x55]); // push r13
        self.a.bytes(&[0x48, 0x83, 0xEC, FRAME]); // sub rsp, 64
        self.a.bytes(&[0x49, 0x89, 0xFC]); // mov r12, rdi
        self.a.bytes(&[0x49, 0x89, 0xF5]); // mov r13, rsi
        self.load_const(0, 0.0);
        self.spill(0, OFF_SCORE);
        self.spill(0, OFF_JAC);
    }

    /// Returns `score + jac` (the interpreter's `acc.score + acc.jac`).
    fn epilogue(&mut self) {
        self.reload(0, OFF_SCORE);
        self.a.sse_mem(0xF2, 0x58, 0, Base::Rsp, OFF_JAC); // addsd xmm0, [jac]
        self.a.bytes(&[0x48, 0x83, 0xC4, FRAME]); // add rsp, 64
        self.a.bytes(&[0x41, 0x5D]); // pop r13
        self.a.bytes(&[0x41, 0x5C]); // pop r12
        self.a.byte(0x5D); // pop rbp
        self.a.byte(0xC3); // ret
    }

    // -- shared scalar-function bodies ------------------------------------

    /// `xmm0 = f(xmm0, xmm1)` (forward `BinF::value`).
    fn binf_value(&mut self, f: &BinF) {
        match f {
            BinF::Add => self.a.sse_rr(0xF2, 0x58, 0, 1),
            BinF::Sub => self.a.sse_rr(0xF2, 0x5C, 0, 1),
            BinF::Mul => self.a.sse_rr(0xF2, 0x59, 0, 1),
            BinF::Div => self.a.sse_rr(0xF2, 0x5E, 0, 1),
            _ => {
                self.mov_rdi_imm(f as *const BinF as usize as u64);
                self.call(abi::binf_value_c as *const () as usize);
            }
        }
    }

    /// `xmm0 = f(xmm0)` (forward `UF::value`).
    fn uf_value(&mut self, f: &UF) {
        match f {
            UF::R(UnFn::Neg) => self.negate(0),
            UF::R(UnFn::Sqrt) => self.a.sse_rr(0xF2, 0x51, 0, 0),
            UF::R(UnFn::Recip) => {
                self.a.sse_rr(0xF2, 0x10, 1, 0); // movsd xmm1, xmm0
                self.load_const(0, 1.0);
                self.a.sse_rr(0xF2, 0x5E, 0, 1); // 1.0 / x
            }
            _ => {
                self.mov_rdi_imm(f as *const UF as usize as u64);
                self.call(abi::uf_value_c as *const () as usize);
            }
        }
    }

    /// `adj[idx] += xmm<x> * g` with `g` in `xmm<gx>` (clobbers `xmm<x>`).
    fn mul_g_bump(&mut self, x: u8, gx: u8, idx: usize) {
        self.a.sse_rr(0xF2, 0x59, x, gx); // partial * g
        self.add_adj(x, idx);
    }

    /// One binary op's reverse body, with the guard already taken and `g`
    /// in xmm0. `la`/`lb` load the operand values; `ai`/`bi` are the
    /// operands' adjoint slots. Mirrors `f.partials(va, vb)` then
    /// `bump(a, da·g); bump(b, db·g)` exactly.
    #[allow(clippy::too_many_arguments)]
    fn bin_reverse_body(
        &mut self,
        f: &BinF,
        la: &dyn Fn(&mut Self, u8) -> Result<(), Decline>,
        lb: &dyn Fn(&mut Self, u8) -> Result<(), Decline>,
        ai: Option<usize>,
        bi: Option<usize>,
    ) -> Result<(), Decline> {
        match f {
            BinF::Add | BinF::Sub => {
                // (1.0, 1.0) / (1.0, -1.0): literal `da * g` multiplies.
                let db = if matches!(f, BinF::Add) { 1.0 } else { -1.0 };
                if let Some(i) = ai {
                    self.load_const(1, 1.0);
                    self.mul_g_bump(1, 0, i);
                }
                if let Some(i) = bi {
                    self.load_const(1, db);
                    self.mul_g_bump(1, 0, i);
                }
            }
            BinF::Mul => {
                // (da, db) = (vb, va)
                if let Some(i) = ai {
                    lb(self, 1)?;
                    self.mul_g_bump(1, 0, i);
                }
                if let Some(i) = bi {
                    la(self, 1)?;
                    self.mul_g_bump(1, 0, i);
                }
            }
            BinF::Div => {
                if let Some(i) = ai {
                    // da = 1.0 / vb
                    self.load_const(1, 1.0);
                    lb(self, 2)?;
                    self.a.sse_rr(0xF2, 0x5E, 1, 2);
                    self.mul_g_bump(1, 0, i);
                }
                if let Some(i) = bi {
                    // db = -va / (vb * vb)
                    la(self, 1)?;
                    self.negate(1);
                    lb(self, 2)?;
                    self.a.sse_rr(0xF2, 0x59, 2, 2);
                    self.a.sse_rr(0xF2, 0x5E, 1, 2);
                    self.mul_g_bump(1, 0, i);
                }
            }
            _ => {
                // Max/Min/Zero*: partials through the interpreter's table.
                self.spill(0, OFF_G);
                la(self, 0)?;
                lb(self, 1)?;
                self.mov_rdi_imm(f as *const BinF as usize as u64);
                self.lea_rsi_rsp(OFF_OUT);
                self.call(abi::binf_partials_c as *const () as usize);
                self.reload(0, OFF_G);
                if let Some(i) = ai {
                    self.reload(1, OFF_OUT);
                    self.mul_g_bump(1, 0, i);
                }
                if let Some(i) = bi {
                    self.reload(1, OFF_OUT + 8);
                    self.mul_g_bump(1, 0, i);
                }
            }
        }
        Ok(())
    }

    /// One unary op's reverse body (guard taken, `g` in xmm0, operand
    /// adjoint slot `ai`, result register `fx_idx`). Mirrors
    /// `bump(a, f.partial(va, fx) * g)`.
    fn un_reverse_body(
        &mut self,
        f: &UF,
        la: &dyn Fn(&mut Self, u8) -> Result<(), Decline>,
        ai: usize,
        fx_idx: usize,
    ) -> Result<(), Decline> {
        match f {
            UF::R(UnFn::Neg) => {
                self.load_const(1, -1.0);
                self.mul_g_bump(1, 0, ai);
            }
            UF::R(UnFn::Exp) => {
                // partial = fx
                self.load_reg(1, fx_idx);
                self.mul_g_bump(1, 0, ai);
            }
            UF::R(UnFn::Ln) => {
                // partial = 1.0 / x
                self.load_const(1, 1.0);
                la(self, 2)?;
                self.a.sse_rr(0xF2, 0x5E, 1, 2);
                self.mul_g_bump(1, 0, ai);
            }
            UF::R(UnFn::Sqrt) => {
                // partial = 0.5 / fx
                self.load_const(1, 0.5);
                self.load_reg(2, fx_idx);
                self.a.sse_rr(0xF2, 0x5E, 1, 2);
                self.mul_g_bump(1, 0, ai);
            }
            UF::R(UnFn::Recip) => {
                // partial = -1.0 / (x * x)
                self.load_const(1, -1.0);
                la(self, 2)?;
                self.a.sse_rr(0xF2, 0x59, 2, 2);
                self.a.sse_rr(0xF2, 0x5E, 1, 2);
                self.mul_g_bump(1, 0, ai);
            }
            UF::R(UnFn::Tanh) => {
                // partial = 1.0 - fx * fx
                self.load_const(1, 1.0);
                self.load_reg(2, fx_idx);
                self.a.sse_rr(0xF2, 0x59, 2, 2);
                self.a.sse_rr(0xF2, 0x5C, 1, 2);
                self.mul_g_bump(1, 0, ai);
            }
            _ => {
                self.spill(0, OFF_G);
                la(self, 0)?; // x
                self.load_reg(1, fx_idx); // fx
                self.mov_rdi_imm(f as *const UF as usize as u64);
                self.call(abi::uf_partial_c as *const () as usize);
                // partial * g
                self.a.sse_mem(0xF2, 0x59, 0, Base::Rsp, OFF_G);
                self.add_adj(0, ai);
            }
        }
        Ok(())
    }

    /// Loads `x` and the first `k` args of a score op into xmm0..xmm3
    /// (unused arg lanes zeroed, matching the interpreter's zero-filled
    /// `abuf`) and parks `&kind` in rdi.
    fn score_call_args(
        &mut self,
        kind: &probdist::DistKind,
        x: &A,
        args: &[A; 3],
        k: u8,
        iter: u32,
    ) -> Result<(), Decline> {
        self.mov_rdi_imm(kind as *const probdist::DistKind as usize as u64);
        self.load_a(0, *x, iter)?;
        for (j, arg) in args.iter().enumerate() {
            if j < k as usize {
                self.load_a(1 + j as u8, *arg, iter)?;
            } else {
                self.load_const(1 + j as u8, 0.0);
            }
        }
        Ok(())
    }

    /// Parks the sweep shim's pointer arguments: `(dp, op, regs[, adj])`.
    fn sweep_call_args(&mut self, op: &Op, with_adj: bool) {
        self.mov_rdi_imm(self.dp as *const DProg as usize as u64);
        self.mov_rsi_imm(op as *const Op as usize as u64);
        self.mov_rdx_r12();
        if with_adj {
            self.mov_rcx_r13();
        }
    }

    // -- forward pass ------------------------------------------------------

    fn forward_ops(&mut self, ops: &[Op], iter: u32) -> Result<(), Decline> {
        for op in ops {
            self.check_size()?;
            match op {
                Op::Bin { f, dst, a, b } => {
                    self.load_a(0, *a, iter)?;
                    self.load_a(1, *b, iter)?;
                    self.binf_value(f);
                    self.store_reg(0, dst.at(iter));
                }
                Op::Un { f, dst, a } => {
                    self.load_a(0, *a, iter)?;
                    self.uf_value(f);
                    self.store_reg(0, dst.at(iter));
                }
                Op::Mov { dst, a } => {
                    self.load_a(0, *a, iter)?;
                    self.store_reg(0, dst.at(iter));
                }
                Op::VBin { f, dst, a, b, len } => {
                    for i in 0..*len as usize {
                        self.check_size()?;
                        self.load_va(0, *a, i)?;
                        self.load_va(1, *b, i)?;
                        self.binf_value(f);
                        self.store_reg(0, *dst as usize + i);
                    }
                }
                Op::VUn { f, dst, a, len } => {
                    for i in 0..*len as usize {
                        self.check_size()?;
                        self.load_va(0, *a, i)?;
                        self.uf_value(f);
                        self.store_reg(0, *dst as usize + i);
                    }
                }
                Op::Dot { dst, a, b, len } => {
                    self.load_const(4, 0.0);
                    for i in 0..*len as usize {
                        self.check_size()?;
                        self.load_va(0, *a, i)?;
                        self.load_va(1, *b, i)?;
                        self.a.sse_rr(0xF2, 0x59, 0, 1); // va * vb
                        self.a.sse_rr(0xF2, 0x58, 4, 0); // s += …
                    }
                    self.store_reg(4, *dst as usize);
                }
                Op::Sum { dst, a, len } => {
                    self.load_const(4, 0.0);
                    for i in 0..*len as usize {
                        self.check_size()?;
                        self.load_va(0, *a, i)?;
                        self.a.sse_rr(0xF2, 0x58, 4, 0);
                    }
                    self.store_reg(4, *dst as usize);
                }
                Op::MatVec {
                    dst,
                    mat,
                    x,
                    rows,
                    cols,
                } => {
                    let cols_u = *cols as usize;
                    for r in 0..*rows as usize {
                        self.check_size()?;
                        self.load_const(4, 0.0);
                        for c in 0..cols_u {
                            let m = self.table_f(*mat, r * cols_u + c)?;
                            self.load_const(0, m);
                            self.load_va(1, *x, c)?;
                            self.a.sse_rr(0xF2, 0x59, 0, 1); // m · x[c]
                            self.a.sse_rr(0xF2, 0x58, 4, 0);
                        }
                        self.store_reg(4, *dst as usize + r);
                    }
                }
                Op::MaxVal { dst, a, len } => {
                    // m = m.max(v) through the f64::max shim (maxsd differs
                    // on NaN); the accumulator lives in a frame slot across
                    // the calls.
                    self.load_const(0, f64::NEG_INFINITY);
                    self.spill(0, OFF_ACC);
                    for i in 0..*len as usize {
                        self.check_size()?;
                        self.reload(0, OFF_ACC);
                        self.load_va(1, *a, i)?;
                        self.call(abi::fmax_c as *const () as usize);
                        self.spill(0, OFF_ACC);
                    }
                    self.reload(0, OFF_ACC);
                    self.store_reg(0, *dst as usize);
                }
                Op::Constrain {
                    kind,
                    src,
                    dst,
                    len,
                } => {
                    for c in 0..*len as usize {
                        self.check_size()?;
                        let src_i = *src as usize + c;
                        let dst_i = *dst as usize + c;
                        if matches!(kind, Constraint::None) {
                            // to_constrained = identity, log_jacobian = 0.0
                            self.load_reg(0, src_i);
                            self.store_reg(0, dst_i);
                            self.load_const(0, 0.0);
                            self.acc_add(0, OFF_JAC);
                        } else {
                            self.mov_rdi_imm(kind as *const Constraint as usize as u64);
                            self.lea_rsi_regs(dst_i);
                            self.load_reg(0, src_i);
                            self.call(abi::constrain_forward_c as *const () as usize);
                            self.acc_add(0, OFF_JAC);
                        }
                    }
                }
                Op::ScoreElem { kind, x, args, k } => {
                    self.score_call_args(kind, x, args, *k, iter)?;
                    self.call(abi::elem_value_c as *const () as usize);
                    self.acc_add(0, OFF_SCORE);
                }
                Op::ScoreVal {
                    kind,
                    dst,
                    x,
                    args,
                    k,
                } => {
                    self.score_call_args(kind, x, args, *k, iter)?;
                    self.call(abi::elem_value_c as *const () as usize);
                    self.store_reg(0, dst.at(iter));
                }
                Op::ScoreSweep { .. } => {
                    self.sweep_call_args(op, false);
                    self.call(abi::sweep_sum_c as *const () as usize);
                    self.acc_add(0, OFF_SCORE);
                }
                Op::ScoreSweepVal { dst, .. } => {
                    self.sweep_call_args(op, false);
                    self.call(abi::sweep_sum_c as *const () as usize);
                    self.store_reg(0, *dst as usize);
                }
                Op::AddScore { a } => {
                    self.load_a(0, *a, iter)?;
                    self.acc_add(0, OFF_SCORE);
                }
                Op::AddScoreSpan { a, len } => {
                    for i in 0..*len as usize {
                        self.check_size()?;
                        self.load_va(0, *a, i)?;
                        self.acc_add(0, OFF_SCORE);
                    }
                }
                Op::Loop { trip, body } => {
                    for it in 0..*trip {
                        self.forward_ops(body, it)?;
                    }
                }
            }
        }
        Ok(())
    }

    // -- reverse pass ------------------------------------------------------

    fn reverse_ops(&mut self, ops: &[Op], iter: u32) -> Result<(), Decline> {
        for op in ops.iter().rev() {
            self.check_size()?;
            if !has_reverse_effect(op) {
                continue;
            }
            match op {
                Op::Bin { f, dst, a, b } => {
                    self.load_adj(0, dst.at(iter));
                    let skip = self.guard_nonzero(0);
                    let (av, bv) = (*a, *b);
                    self.bin_reverse_body(
                        f,
                        &move |e, x| e.load_a(x, av, iter),
                        &move |e, x| e.load_a(x, bv, iter),
                        a_adj(av, iter),
                        a_adj(bv, iter),
                    )?;
                    self.a.bind(skip);
                }
                Op::Un { f, dst, a } => {
                    let Some(ai) = a_adj(*a, iter) else { continue };
                    self.load_adj(0, dst.at(iter));
                    let skip = self.guard_nonzero(0);
                    let av = *a;
                    self.un_reverse_body(f, &move |e, x| e.load_a(x, av, iter), ai, dst.at(iter))?;
                    self.a.bind(skip);
                }
                Op::Mov { dst, a } => {
                    let Some(ai) = a_adj(*a, iter) else { continue };
                    self.load_adj(0, dst.at(iter));
                    let skip = self.guard_nonzero(0);
                    self.add_adj(0, ai); // bump(a, g)
                    self.a.bind(skip);
                }
                Op::VBin { f, dst, a, b, len } => {
                    for i in 0..*len as usize {
                        self.check_size()?;
                        self.load_adj(0, *dst as usize + i);
                        let skip = self.guard_nonzero(0);
                        let (av, bv) = (*a, *b);
                        self.bin_reverse_body(
                            f,
                            &move |e, x| e.load_va(x, av, i),
                            &move |e, x| e.load_va(x, bv, i),
                            va_adj(av, i),
                            va_adj(bv, i),
                        )?;
                        self.a.bind(skip);
                    }
                }
                Op::VUn { f, dst, a, len } => {
                    for i in 0..*len as usize {
                        self.check_size()?;
                        let Some(ai) = va_adj(*a, i) else { continue };
                        self.load_adj(0, *dst as usize + i);
                        let skip = self.guard_nonzero(0);
                        let av = *a;
                        self.un_reverse_body(
                            f,
                            &move |e, x| e.load_va(x, av, i),
                            ai,
                            *dst as usize + i,
                        )?;
                        self.a.bind(skip);
                    }
                }
                Op::Dot { dst, a, b, len } => {
                    self.load_adj(0, *dst as usize);
                    let skip = self.guard_nonzero(0);
                    for i in 0..*len as usize {
                        self.check_size()?;
                        if let Some(ai) = va_adj(*a, i) {
                            self.load_va(1, *b, i)?; // da = vb
                            self.mul_g_bump(1, 0, ai);
                        }
                        if let Some(bi) = va_adj(*b, i) {
                            self.load_va(1, *a, i)?; // db = va
                            self.mul_g_bump(1, 0, bi);
                        }
                    }
                    self.a.bind(skip);
                }
                Op::Sum { dst, a, len } => {
                    self.load_adj(0, *dst as usize);
                    let skip = self.guard_nonzero(0);
                    for i in 0..*len as usize {
                        self.check_size()?;
                        if let Some(ai) = va_adj(*a, i) {
                            self.add_adj(0, ai); // vbump(a, i, g)
                        }
                    }
                    self.a.bind(skip);
                }
                Op::MatVec {
                    dst,
                    mat,
                    x,
                    rows,
                    cols,
                } => {
                    let cols_u = *cols as usize;
                    for r in 0..*rows as usize {
                        self.check_size()?;
                        self.load_adj(0, *dst as usize + r);
                        let skip = self.guard_nonzero(0);
                        for c in 0..cols_u {
                            if let Some(xi) = va_adj(*x, c) {
                                let m = self.table_f(*mat, r * cols_u + c)?;
                                self.load_const(1, m);
                                self.mul_g_bump(1, 0, xi); // m · g
                            }
                        }
                        self.a.bind(skip);
                    }
                }
                Op::MaxVal { .. } => {}
                Op::Constrain {
                    kind,
                    src,
                    dst,
                    len,
                } => {
                    // Unguarded, forward element order, exactly
                    // `adj[src+c] += g·dxdu + djdu`.
                    for c in 0..*len as usize {
                        self.check_size()?;
                        let src_i = *src as usize + c;
                        let dst_i = *dst as usize + c;
                        if matches!(kind, Constraint::None) {
                            let (dxdu, djdu) = constraint_partials(*kind, 0.0);
                            self.load_adj(0, dst_i);
                            self.load_const(1, dxdu);
                            self.a.sse_rr(0xF2, 0x59, 0, 1); // g · dxdu
                            self.load_const(1, djdu);
                            self.a.sse_rr(0xF2, 0x58, 0, 1); // + djdu
                            self.add_adj(0, src_i);
                        } else {
                            self.load_reg(0, src_i); // u
                            self.mov_rdi_imm(kind as *const Constraint as usize as u64);
                            self.lea_rsi_rsp(OFF_OUT);
                            self.call(abi::constrain_partials_c as *const () as usize);
                            self.load_adj(0, dst_i);
                            self.a.sse_mem(0xF2, 0x59, 0, Base::Rsp, OFF_OUT); // g·dxdu
                            self.a.sse_mem(0xF2, 0x58, 0, Base::Rsp, OFF_OUT + 8); // +djdu
                            self.add_adj(0, src_i);
                        }
                    }
                }
                Op::ScoreElem { kind, x, args, k } => {
                    // No guard and no seed multiply: bumps are dx / dp[j]
                    // directly, skipped only when the kernel returns None.
                    self.score_call_args(kind, x, args, *k, iter)?;
                    self.lea_rsi_rsp(OFF_OUT);
                    self.call(abi::elem_partials_c as *const () as usize);
                    self.a.bytes(&[0x85, 0xC0]); // test eax, eax
                    let skip = self.a.jz();
                    if let Some(xi) = a_adj(*x, iter) {
                        self.reload(1, OFF_OUT);
                        self.add_adj(1, xi);
                    }
                    for (j, arg) in args.iter().enumerate().take(*k as usize) {
                        if let Some(aj) = a_adj(*arg, iter) {
                            self.reload(1, OFF_OUT + 8 + 8 * j as i32);
                            self.add_adj(1, aj);
                        }
                    }
                    self.a.bind(skip);
                }
                Op::ScoreVal {
                    kind,
                    dst,
                    x,
                    args,
                    k,
                } => {
                    self.load_adj(0, dst.at(iter));
                    let guard = self.guard_nonzero(0);
                    self.spill(0, OFF_G);
                    self.score_call_args(kind, x, args, *k, iter)?;
                    self.lea_rsi_rsp(OFF_OUT);
                    self.call(abi::elem_partials_c as *const () as usize);
                    self.a.bytes(&[0x85, 0xC0]);
                    let skip = self.a.jz();
                    if let Some(xi) = a_adj(*x, iter) {
                        self.reload(1, OFF_OUT);
                        self.a.sse_mem(0xF2, 0x59, 1, Base::Rsp, OFF_G); // dx·g
                        self.add_adj(1, xi);
                    }
                    for (j, arg) in args.iter().enumerate().take(*k as usize) {
                        if let Some(aj) = a_adj(*arg, iter) {
                            self.reload(1, OFF_OUT + 8 + 8 * j as i32);
                            self.a.sse_mem(0xF2, 0x59, 1, Base::Rsp, OFF_G);
                            self.add_adj(1, aj);
                        }
                    }
                    self.a.bind(skip);
                    self.a.bind(guard);
                }
                Op::ScoreSweep { .. } => {
                    self.sweep_call_args(op, true);
                    self.load_const(0, 1.0); // seed
                    self.call(abi::sweep_reverse_c as *const () as usize);
                }
                Op::ScoreSweepVal { dst, .. } => {
                    // Seed = adj[dst], passed unguarded (the shim's early
                    // return on 0.0 is the interpreter's own).
                    self.sweep_call_args(op, true);
                    self.load_adj(0, *dst as usize);
                    self.call(abi::sweep_reverse_c as *const () as usize);
                }
                Op::AddScore { a } => {
                    if let Some(ai) = a_adj(*a, iter) {
                        self.load_const(0, 1.0);
                        self.add_adj(0, ai);
                    }
                }
                Op::AddScoreSpan { a, len } => {
                    self.load_const(0, 1.0);
                    for i in 0..*len as usize {
                        self.check_size()?;
                        if let Some(ai) = va_adj(*a, i) {
                            self.add_adj(0, ai);
                        }
                    }
                }
                Op::Loop { trip, body } => {
                    for it in (0..*trip).rev() {
                        self.reverse_ops(body, it)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Emits the value and gradient entry points for `dp` into one buffer.
///
/// # Errors
/// Declines (never panics) when the unrolled code would exceed the size
/// cap, a displacement would overflow rel32 addressing, or a table operand
/// is malformed.
pub(super) fn emit(dp: &DProg) -> Result<Emitted, Decline> {
    if dp.n_regs.saturating_mul(8) > i32::MAX as usize {
        return Err(E::err("register file too large for disp32 addressing"));
    }
    let mut e = E {
        dp,
        a: Asm {
            code: Vec::with_capacity(4096),
        },
    };
    let value_off = 0;
    e.prologue();
    e.forward_ops(&dp.ops, 0)?;
    e.epilogue();
    let grad_off = e.a.pos();
    e.prologue();
    e.forward_ops(&dp.ops, 0)?;
    e.reverse_ops(&dp.ops, 0)?;
    e.epilogue();
    e.check_size()?;
    Ok(Emitted {
        code: e.a.code,
        value_off,
        grad_off,
    })
}
