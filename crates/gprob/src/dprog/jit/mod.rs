//! Native x86_64 code generation for density programs: the forward f64
//! pass and the analytic reverse sweep of a [`DProg`], emitted as one
//! contiguous executable buffer.
//!
//! # Calling convention
//!
//! Both entry points share one System-V-compatible signature:
//!
//! ```text
//! extern "C" fn(regs: *mut f64, adj: *mut f64) -> f64
//! ```
//!
//! `regs` is the program's pooled register file (inputs pre-copied by the
//! Rust caller, exactly like the interpreter), `adj` the zeroed adjoint
//! buffer; the return value is `score + jac`. The value entry runs the
//! forward pass only; the gradient entry runs forward then reverse,
//! leaving `adj[..n_inputs]` holding the gradient for the caller to copy
//! out.
//!
//! # Register and stack discipline
//!
//! The emitted frame is `push rbp; push r12; push r13; sub rsp, 64` — three
//! pushes keep `rsp ≡ 0 (mod 16)` at every call site, as the ABI requires.
//! `r12`/`r13` hold the `regs`/`adj` base pointers for the whole function
//! (callee-saved, so they survive shim calls); all media registers are
//! operand scratch. The 64-byte frame holds the `score`/`jac` accumulators,
//! a 4-slot shim out-buffer, and spill slots for values live across calls
//! (see `emit.rs` for the exact layout and XMM allocation).
//!
//! Everything beyond inline SSE2 arithmetic — transcendentals, score
//! kernels, batched sweeps, non-trivial constraint transforms — is a call
//! into the `extern "C"` shims of the `abi` module (backed by `probdist::ffi` and
//! the interpreter's own private sweep methods), so no kernel math is
//! duplicated in emitted code.
//!
//! # W^X page lifecycle
//!
//! Emission targets a plain `Vec<u8>`; the executor (`exec::CodeBuf`) then maps an
//! anonymous RW page, copies the bytes, and flips the page RW→RX with
//! `mprotect` before the first call. No mapping is ever writable and
//! executable at once, the published page is immutable for the life of the
//! [`JitProg`] (a repeated-eval test pins zero code-page reallocation), and
//! `munmap` reclaims it on drop.
//!
//! # Decline rules
//!
//! `compile` returns a [`Decline`] — and the model keeps the interpreted
//! DProg byte-identically — when any of the following holds:
//!
//! * the target is not `x86_64-linux` (no emitter / no `mmap`);
//! * `GPROB_JIT=0` (or `off`) disables JIT in the environment;
//! * the CPU lacks SSE2 (not observed in practice on x86_64);
//! * the fully unrolled code would exceed the emitter's size cap, or a
//!   register displacement would overflow disp32 addressing;
//! * `mmap`/`mprotect` refuse the code page.
//!
//! The interpreted program remains the differential oracle either way:
//! `tests/jit_equivalence.rs` holds JIT values and gradients to bitwise
//! equality with the interpreter across the corpus.

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod abi;
pub mod cpu;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod emit;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod exec;

use super::{DProg, DProgWorkspace, Decline};
use crate::value::RuntimeError;

/// A density program compiled to native code, owning both the executable
/// buffer and the (boxed, address-stable) `DProg` whose op metadata the
/// emitted code references by absolute pointer.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub struct JitProg {
    /// The program the code was emitted against. Boxed so the addresses of
    /// op fields (`DistKind`s, `BinF`s, whole `Op`s for the sweep shims)
    /// embedded in the machine code as immediates stay valid wherever the
    /// `JitProg` itself moves.
    prog: Box<DProg>,
    code: exec::CodeBuf,
    value_entry: unsafe extern "C" fn(*mut f64, *mut f64) -> f64,
    grad_entry: unsafe extern "C" fn(*mut f64, *mut f64) -> f64,
}

/// Unreachable stand-in on targets without the emitter: [`compile`] always
/// declines there, so no value of this type ever exists.
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub struct JitProg {
    never: std::convert::Infallible,
}

/// Compiles `dp` to native code, or explains why not (see the module docs'
/// decline rules).
///
/// # Errors
/// A [`Decline`] with the stated reason; the caller keeps the interpreter.
pub(crate) fn compile(dp: &DProg) -> Result<JitProg, Decline> {
    if let Some(v) = std::env::var_os("GPROB_JIT") {
        if v == "0" || v == "off" {
            return Err(Decline::new("jit disabled by GPROB_JIT"));
        }
    }
    compile_native(dp)
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn compile_native(dp: &DProg) -> Result<JitProg, Decline> {
    if !cpu::features().sse2 {
        return Err(Decline::new("jit: SSE2 not available"));
    }
    // Box first, emit second: the emitter bakes pointers into *this* copy.
    let prog = Box::new(dp.clone());
    let emitted = emit::emit(&prog)?;
    let code =
        exec::CodeBuf::publish(&emitted.code).map_err(|e| Decline::new(format!("jit: {e}")))?;
    // SAFETY: both offsets mark function starts emitted under the ABI this
    // module documents.
    let value_entry = unsafe { code.entry(emitted.value_off) };
    let grad_entry = unsafe { code.entry(emitted.grad_off) };
    Ok(JitProg {
        prog,
        code,
        value_entry,
        grad_entry,
    })
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
fn compile_native(_dp: &DProg) -> Result<JitProg, Decline> {
    Err(Decline::new(
        "jit: unsupported target (requires x86_64-linux)",
    ))
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
impl JitProg {
    /// Log-density via the native forward pass — same contract as
    /// [`DProg::value`].
    ///
    /// # Errors
    /// Fails only on a wrong input length.
    pub fn value(&self, theta_u: &[f64], ws: &mut DProgWorkspace) -> Result<f64, RuntimeError> {
        self.prog.check_len(theta_u)?;
        ws.regs[..self.prog.n_inputs].copy_from_slice(theta_u);
        // SAFETY: the buffers are sized n_regs by construction and the
        // emitted code addresses only in-bounds register slots.
        let v = unsafe { (self.value_entry)(ws.regs.as_mut_ptr(), ws.adj.as_mut_ptr()) };
        Ok(v)
    }

    /// Log-density and gradient via the native forward + reverse sweeps —
    /// same contract as [`DProg::value_and_grad`].
    ///
    /// # Errors
    /// Fails only on a wrong input length.
    ///
    /// # Panics
    /// Panics if `grad_out` is shorter than the input dimension (matching
    /// the interpreter).
    pub fn value_and_grad(
        &self,
        theta_u: &[f64],
        grad_out: &mut [f64],
        ws: &mut DProgWorkspace,
    ) -> Result<f64, RuntimeError> {
        self.prog.check_len(theta_u)?;
        let n = self.prog.n_inputs;
        assert!(grad_out.len() >= n, "gradient buffer too short");
        ws.regs[..n].copy_from_slice(theta_u);
        ws.adj.fill(0.0);
        // SAFETY: as `value`; the reverse sweep writes only adjoint slots.
        let v = unsafe { (self.grad_entry)(ws.regs.as_mut_ptr(), ws.adj.as_mut_ptr()) };
        grad_out[..n].copy_from_slice(&ws.adj[..n]);
        Ok(v)
    }

    /// Base address of the executable page — stable for the program's
    /// lifetime (pinned by the zero-reallocation test).
    pub fn code_ptr(&self) -> usize {
        self.code.base() as usize
    }

    /// Emitted code size in bytes.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
impl JitProg {
    /// Unreachable on this target ([`compile`] always declines).
    pub fn value(&self, _theta_u: &[f64], _ws: &mut DProgWorkspace) -> Result<f64, RuntimeError> {
        match self.never {}
    }

    /// Unreachable on this target ([`compile`] always declines).
    pub fn value_and_grad(
        &self,
        _theta_u: &[f64],
        _grad_out: &mut [f64],
        _ws: &mut DProgWorkspace,
    ) -> Result<f64, RuntimeError> {
        match self.never {}
    }

    /// Unreachable on this target ([`compile`] always declines).
    pub fn code_ptr(&self) -> usize {
        match self.never {}
    }

    /// Unreachable on this target ([`compile`] always declines).
    pub fn code_len(&self) -> usize {
        match self.never {}
    }
}
