//! The JIT's call surface: `extern "C"` shims the emitted code calls for
//! everything that is not worth inlining as SSE2 scalar instructions.
//!
//! Three groups:
//!
//! * **Scalar function shims** ([`binf_value_c`], [`uf_value_c`], …) — the
//!   transcendental / branchy arms of [`BinF`] and [`UF`]. The emitter
//!   embeds a pointer to the op's own `BinF`/`UF` discriminant (stored in
//!   the JIT's boxed program, hence address-stable) and the shim dispatches
//!   through exactly the interpreter's `value`/`partial(s)` methods, so
//!   formula changes can never diverge between the two paths.
//! * **Score-kernel shims** (re-exported from [`probdist::ffi`]) — one
//!   element's log-density or partials.
//! * **Sweep shims** ([`sweep_sum_c`], [`sweep_reverse_c`]) — whole batched
//!   score sites. These wrap the interpreter's own private
//!   `DProg::sweep_sum` / `DProg::sweep_reverse`, rebuilding the register
//!   and adjoint slices from the raw base pointers the emitted code keeps
//!   in `r12`/`r13`. A `ScoreSweep` op therefore costs the JIT one call,
//!   identical math, identical accumulation order.
//!
//! All shims follow the System-V AMD64 convention `extern "C"` implies:
//! pointer arguments in `rdi`/`rsi`/…, `f64` arguments in `xmm0..`, `f64`
//! results in `xmm0`. None unwind (the wrapped kernels return sentinel
//! values rather than panicking).

use super::super::{constraint_partials, BinF, DProg, Op, UF};
use probdist::Constraint;

pub(super) use probdist::ffi::{constrain_forward_c, elem_partials_c, elem_value_c};

/// `BinF::value` for the shimmed arms (`Max`/`Min`/`Zero*`).
///
/// # Safety
/// `f` must point at a live [`BinF`].
pub(super) unsafe extern "C" fn binf_value_c(f: *const BinF, a: f64, b: f64) -> f64 {
    (*f).value(a, b)
}

/// `BinF::partials`: writes `(∂f/∂a, ∂f/∂b)` to `out[0..2]`.
///
/// # Safety
/// `f` must point at a live [`BinF`]; `out` at 2 writable `f64`s.
pub(super) unsafe extern "C" fn binf_partials_c(f: *const BinF, out: *mut f64, a: f64, b: f64) {
    let (da, db) = (*f).partials(a, b);
    *out = da;
    *out.add(1) = db;
}

/// `UF::value` for the shimmed arms (everything but `Neg`/`Sqrt`/`Recip`).
///
/// # Safety
/// `f` must point at a live [`UF`].
pub(super) unsafe extern "C" fn uf_value_c(f: *const UF, x: f64) -> f64 {
    (*f).value(x)
}

/// `UF::partial(x, fx)` for the shimmed arms.
///
/// # Safety
/// `f` must point at a live [`UF`].
pub(super) unsafe extern "C" fn uf_partial_c(f: *const UF, x: f64, fx: f64) -> f64 {
    (*f).partial(x, fx)
}

/// `f64::max` — *not* `maxsd`, whose NaN/±0 handling differs from Rust's.
/// Used by the `MaxVal` reduction.
pub(super) unsafe extern "C" fn fmax_c(a: f64, b: f64) -> f64 {
    a.max(b)
}

/// Reverse half of a constrain step: writes `(∂x/∂u, ∂logJ/∂u)` to
/// `out[0..2]` via the interpreter's own `constraint_partials`.
///
/// # Safety
/// `constraint` must point at a live [`Constraint`]; `out` at 2 writable
/// `f64`s.
pub(super) unsafe extern "C" fn constrain_partials_c(
    constraint: *const Constraint,
    out: *mut f64,
    u: f64,
) {
    let (dxdu, djdu) = constraint_partials(*constraint, u);
    *out = dxdu;
    *out.add(1) = djdu;
}

/// Forward pass of one batched score site: the sum the interpreter's
/// `Op::ScoreSweep` / `Op::ScoreSweepVal` arm computes.
///
/// # Safety
/// `dp` must point at the live program that owns `op`; `op` at one of its
/// `ScoreSweep`/`ScoreSweepVal` ops; `regs` at `dp.n_regs` readable `f64`s.
pub(super) unsafe extern "C" fn sweep_sum_c(
    dp: *const DProg,
    op: *const Op,
    regs: *const f64,
) -> f64 {
    let dp = &*dp;
    let regs = std::slice::from_raw_parts(regs, dp.n_regs);
    match &*op {
        Op::ScoreSweep {
            kind,
            xs,
            args,
            k,
            len,
        }
        | Op::ScoreSweepVal {
            kind,
            xs,
            args,
            k,
            len,
            ..
        } => dp.sweep_sum(*kind, *xs, args, *k, *len, regs),
        _ => f64::NAN,
    }
}

/// Reverse pass of one batched score site with adjoint seed `seed` —
/// exactly `DProg::sweep_reverse`, including its early return on a zero
/// seed and the all-scalar fast path.
///
/// # Safety
/// As [`sweep_sum_c`], plus `adj` must point at `dp.n_regs` writable
/// `f64`s disjoint from `regs`.
pub(super) unsafe extern "C" fn sweep_reverse_c(
    dp: *const DProg,
    op: *const Op,
    regs: *const f64,
    adj: *mut f64,
    seed: f64,
) {
    let dp = &*dp;
    let regs = std::slice::from_raw_parts(regs, dp.n_regs);
    let adj = std::slice::from_raw_parts_mut(adj, dp.n_regs);
    if let Op::ScoreSweep {
        kind,
        xs,
        args,
        k,
        len,
    }
    | Op::ScoreSweepVal {
        kind,
        xs,
        args,
        k,
        len,
        ..
    } = &*op
    {
        dp.sweep_reverse(*kind, *xs, args, *k, *len, seed, regs, adj);
    }
}
