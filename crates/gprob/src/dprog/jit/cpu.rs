//! Runtime CPU feature detection for the code generator.
//!
//! A tiny, vendored-crate-free `cpuid` probe in the spirit of
//! `is_x86_feature_detected!`: leaf 1 for SSE2/OSXSAVE/AVX/FMA, leaf 7 for
//! AVX2, plus the `xgetbv` XCR0 check that the OS actually saves/restores
//! the YMM state (a CPU can report AVX while the kernel has it disabled —
//! trusting cpuid alone would emit instructions that fault).
//!
//! The emitter currently generates scalar SSE2 only — baseline on every
//! x86_64 — so [`CpuFeatures::sse2`] is the gate that matters today; the
//! AVX/AVX2/FMA bits gate the planned lane-widened (L=4 `vmovapd`/`vaddpd`)
//! emission. On non-x86_64 targets every feature reports `false`.

use std::sync::OnceLock;

/// The instruction-set extensions the emitter cares about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuFeatures {
    /// Scalar double-precision SSE2 (baseline on x86_64).
    pub sse2: bool,
    /// AVX with OS-enabled YMM state.
    pub avx: bool,
    /// AVX2 (integer/permute widening over AVX), implies usable YMM state.
    pub avx2: bool,
    /// FMA3 with OS-enabled YMM state.
    pub fma: bool,
}

/// The detected features of the running CPU, probed once per process.
pub fn features() -> CpuFeatures {
    static CACHE: OnceLock<CpuFeatures> = OnceLock::new();
    *CACHE.get_or_init(detect)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> CpuFeatures {
    use std::arch::x86_64::{__cpuid, __cpuid_count};
    // Leaf 0 reports the highest supported leaf; leaf 1 is guaranteed on
    // anything that can run this binary, leaf 7 is not.
    let max_leaf = __cpuid(0).eax;
    let leaf1 = __cpuid(1);
    let sse2 = leaf1.edx & (1 << 26) != 0;
    let osxsave = leaf1.ecx & (1 << 27) != 0;
    // XCR0 bits 1 (XMM) and 2 (YMM) must both be set before any VEX-encoded
    // 256-bit instruction is legal to execute.
    let ymm_enabled = osxsave && (xgetbv0() & 0x6) == 0x6;
    let avx = ymm_enabled && leaf1.ecx & (1 << 28) != 0;
    let fma = avx && leaf1.ecx & (1 << 12) != 0;
    let avx2 = avx && max_leaf >= 7 && __cpuid_count(7, 0).ebx & (1 << 5) != 0;
    CpuFeatures {
        sse2,
        avx,
        avx2,
        fma,
    }
}

/// Reads XCR0 (`xgetbv` with ecx = 0). Only legal once cpuid reports
/// OSXSAVE, which the caller checks first.
#[cfg(target_arch = "x86_64")]
fn xgetbv0() -> u64 {
    let lo: u32;
    let hi: u32;
    unsafe {
        std::arch::asm!(
            "xgetbv",
            in("ecx") 0u32,
            out("eax") lo,
            out("edx") hi,
            options(nomem, nostack, preserves_flags)
        );
    }
    (u64::from(hi) << 32) | u64::from(lo)
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> CpuFeatures {
    CpuFeatures::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hand-rolled probe must agree with the standard library's
    /// detection on every feature it reports.
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn matches_std_arch_detection() {
        let f = features();
        assert_eq!(f.sse2, std::arch::is_x86_feature_detected!("sse2"));
        assert_eq!(f.avx, std::arch::is_x86_feature_detected!("avx"));
        assert_eq!(f.avx2, std::arch::is_x86_feature_detected!("avx2"));
        assert_eq!(f.fma, std::arch::is_x86_feature_detected!("fma"));
    }

    #[test]
    fn detection_is_stable_across_calls() {
        assert_eq!(features(), features());
    }

    #[test]
    #[cfg(not(target_arch = "x86_64"))]
    fn non_x86_reports_nothing() {
        assert_eq!(features(), CpuFeatures::default());
    }
}
