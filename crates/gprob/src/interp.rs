//! The probabilistic interpreter for GProb programs.
//!
//! This module plays the role that the Pyro / NumPyro effect handlers play in
//! the paper's backends. A GProb body is executed in one of three modes:
//!
//! * **Trace** — every `sample` site takes its value from a provided trace
//!   (parameter assignment) and contributes its log-density to the score;
//!   `observe` and `factor` contribute as usual. This is the density used by
//!   NUTS/HMC and corresponds to Pyro's `trace` + `replay` handlers.
//! * **Prior** — every `sample` site draws an (untracked) value from its
//!   distribution; used for generative runs, prior prediction, importance
//!   sampling proposals and the "run one iteration" generality check of the
//!   paper's Table 2.
//! * **Reparam** — `sample` sites draw reparameterized values that keep
//!   gradient information flowing into the distribution parameters (normal,
//!   lognormal and uniform sites); this is how variational guides are
//!   executed during SVI.

use std::cell::RefCell;
use std::rc::Rc;

use minidiff::Real;
use probdist::dist::{dist_from_name, Dist, DistArg};
use probdist::sampling;
use rand::rngs::StdRng;
use rand::Rng;

use crate::eval::{eval_expr, tilde_lpdf, write_indexed, EvalCtx};
use crate::ir::{DistCall, GExpr, LoopKind};
use crate::value::{Env, RuntimeError, Value};

/// How `sample` sites are resolved during interpretation.
pub enum Mode<'a, T: Real> {
    /// Look values up in a trace; contributes their log-density to the score.
    Trace(&'a Env<T>),
    /// Draw fresh untracked values from the prior.
    Prior(Rc<RefCell<StdRng>>),
    /// Draw reparameterized (gradient-tracked) values — used for guides.
    Reparam(Rc<RefCell<StdRng>>),
}

/// The result of running a GProb body.
#[derive(Debug, Clone)]
pub struct RunResult<T: Real> {
    /// Accumulated log-score (observations, factors, and sample densities).
    pub score: T,
    /// Values of all `sample` sites encountered, keyed by site name.
    pub trace: Env<T>,
    /// The value of the final `return` expression.
    pub value: Value<T>,
}

/// The interpreter state.
pub struct Interp<'a, T: Real> {
    ctx: &'a EvalCtx<'a, T>,
    mode: Mode<'a, T>,
    score: T,
    trace: Env<T>,
}

impl<'a, T: Real> Interp<'a, T> {
    /// Creates an interpreter in the given mode.
    pub fn new(ctx: &'a EvalCtx<'a, T>, mode: Mode<'a, T>) -> Self {
        Interp {
            ctx,
            mode,
            score: T::from_f64(0.0),
            trace: Env::new(),
        }
    }

    /// Runs a GProb body in the given (mutable) environment.
    ///
    /// # Errors
    /// Propagates evaluation errors, unknown distributions, and missing trace
    /// values.
    pub fn run(&mut self, body: &GExpr, env: &mut Env<T>) -> Result<RunResult<T>, RuntimeError> {
        let value = self.eval(body, env)?;
        Ok(RunResult {
            score: self.score,
            trace: std::mem::take(&mut self.trace),
            value,
        })
    }

    fn eval(&mut self, e: &GExpr, env: &mut Env<T>) -> Result<Value<T>, RuntimeError> {
        match e {
            GExpr::Unit => Ok(Value::Unit),
            GExpr::Return(expr) => eval_expr(expr, env, self.ctx),
            GExpr::LetDecl { decl, body } => {
                let v = match &decl.init {
                    Some(e) => eval_expr(e, env, self.ctx)?,
                    None => crate::eval::default_value(decl, env, self.ctx)?,
                };
                env.insert(decl.name.clone(), v);
                self.eval(body, env)
            }
            GExpr::LetDet { name, value, body } => {
                let v = eval_expr(value, env, self.ctx)?;
                env.insert(name.clone(), v);
                self.eval(body, env)
            }
            GExpr::LetIndexed {
                name,
                indices,
                value,
                body,
            } => {
                let v = eval_expr(value, env, self.ctx)?;
                write_indexed(name, indices, v, env, self.ctx)?;
                self.eval(body, env)
            }
            GExpr::LetSample { name, dist, body } => {
                let value = self.handle_sample(name, dist, env)?;
                self.trace.insert(name.clone(), value.clone());
                // Reuse the existing binding's key allocation when present.
                match env.get_mut(name.as_str()) {
                    Some(slot) => *slot = value,
                    None => {
                        env.insert(name.clone(), value);
                    }
                }
                self.eval(body, env)
            }
            GExpr::Observe { dist, value, body } => {
                let observed = eval_expr(value, env, self.ctx)?;
                let args = self.eval_dist_args(dist, env)?;
                self.score = self.score + tilde_lpdf(&observed, &dist.name, &args)?;
                self.eval(body, env)
            }
            GExpr::Factor { value, body } => {
                let v = eval_expr(value, env, self.ctx)?;
                self.score = self.score + v.sum_as_real()?;
                self.eval(body, env)
            }
            GExpr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = eval_expr(cond, env, self.ctx)?.as_real()?;
                if c.value() != 0.0 {
                    self.eval(then_branch, env)
                } else {
                    self.eval(else_branch, env)
                }
            }
            GExpr::LetLoop {
                kind,
                state: _,
                loop_body,
                body,
            } => {
                match kind {
                    LoopKind::Range { var, lo, hi } => {
                        let lo = eval_expr(lo, env, self.ctx)?.as_int()?;
                        let hi = eval_expr(hi, env, self.ctx)?.as_int()?;
                        for i in lo..=hi {
                            // Clone the key only on the first iteration.
                            match env.get_mut(var) {
                                Some(slot) => *slot = Value::Int(i),
                                None => {
                                    env.insert(var.clone(), Value::Int(i));
                                }
                            }
                            self.eval(loop_body, env)?;
                        }
                        env.remove(var);
                    }
                    LoopKind::ForEach { var, collection } => {
                        let coll = eval_expr(collection, env, self.ctx)?;
                        for i in 1..=coll.len() as i64 {
                            let item = coll.index(i)?;
                            match env.get_mut(var) {
                                Some(slot) => *slot = item,
                                None => {
                                    env.insert(var.clone(), item);
                                }
                            }
                            self.eval(loop_body, env)?;
                        }
                        env.remove(var);
                    }
                    LoopKind::While { cond } => {
                        let mut iterations = 0usize;
                        loop {
                            let c = eval_expr(cond, env, self.ctx)?.as_real()?;
                            if c.value() == 0.0 {
                                break;
                            }
                            iterations += 1;
                            if iterations > 10_000_000 {
                                return Err(RuntimeError::new(
                                    "while loop exceeded the iteration budget",
                                ));
                            }
                            self.eval(loop_body, env)?;
                        }
                    }
                }
                self.eval(body, env)
            }
        }
    }

    fn eval_dist_args(&self, dist: &DistCall, env: &Env<T>) -> Result<Vec<Value<T>>, RuntimeError> {
        dist.args
            .iter()
            .map(|a| eval_expr(a, env, self.ctx))
            .collect()
    }

    fn handle_sample(
        &mut self,
        name: &str,
        dist: &DistCall,
        env: &mut Env<T>,
    ) -> Result<Value<T>, RuntimeError> {
        let args = self.eval_dist_args(dist, env)?;
        match &self.mode {
            Mode::Trace(trace) => {
                let value = trace.get(name).cloned().ok_or_else(|| {
                    RuntimeError::new(format!("trace is missing a value for sample site `{name}`"))
                })?;
                self.score = self.score + tilde_lpdf(&value, &dist.name, &args)?;
                Ok(value)
            }
            Mode::Prior(rng) => {
                let value = self.draw(dist, &args, env, rng, false)?;
                self.score = self.score + tilde_lpdf(&value, &dist.name, &args)?;
                Ok(value)
            }
            Mode::Reparam(rng) => {
                let value = self.draw(dist, &args, env, rng, true)?;
                self.score = self.score + tilde_lpdf(&value, &dist.name, &args)?;
                Ok(value)
            }
        }
    }

    fn draw(
        &self,
        dist: &DistCall,
        args: &[Value<T>],
        env: &Env<T>,
        rng: &Rc<RefCell<StdRng>>,
        reparam: bool,
    ) -> Result<Value<T>, RuntimeError> {
        // Total number of scalar draws implied by the declared shape.
        let mut dims: Vec<i64> = Vec::new();
        for s in &dist.shape {
            dims.push(eval_expr(s, env, self.ctx)?.as_int()?);
        }
        draw_site(&dist.name, args, &dims, rng, reparam)
    }
}

/// Draws a value for a sample site whose distribution arguments and shape
/// dimensions have already been evaluated. Shared by the string-keyed and the
/// slot-resolved interpreters.
pub(crate) fn draw_site<T: Real>(
    dist_name: &str,
    args: &[Value<T>],
    dims: &[i64],
    rng: &Rc<RefCell<StdRng>>,
    reparam: bool,
) -> Result<Value<T>, RuntimeError> {
    let total: i64 = dims.iter().map(|&n| n.max(0)).product();
    let multivariate = matches!(
        dist_name,
        "dirichlet" | "multi_normal" | "multi_normal_diag"
    );
    let mut rng = rng.borrow_mut();
    let mut draw_scalar = |i: usize| -> Result<Value<T>, RuntimeError> {
        // When a distribution argument is a vector of the same length as
        // the site (e.g. `theta ~ normal(mu_vec, sigma)` under the mixed
        // scheme), use the i-th component.
        let elem_args: Vec<DistArg<T>> = args
            .iter()
            .map(|a| -> Result<DistArg<T>, RuntimeError> {
                if a.len() as i64 == total && total > 1 {
                    Ok(DistArg::Scalar(a.as_real_vec()?[i]))
                } else {
                    match a {
                        Value::Vector(_) | Value::IntArray(_) | Value::Array(_) => {
                            Ok(DistArg::Vector(a.as_real_vec()?))
                        }
                        other => Ok(DistArg::Scalar(other.as_real()?)),
                    }
                }
            })
            .collect::<Result<_, _>>()?;
        let di = dist_from_name::<T>(dist_name, &elem_args)?;
        if reparam {
            Ok(reparam_draw(&di, &mut rng))
        } else {
            Ok(match di.sample(&mut *rng)? {
                probdist::SampleValue::Real(x) => Value::Real(T::from_f64(x)),
                probdist::SampleValue::Int(k) => Value::Int(k),
                probdist::SampleValue::Vec(v) => {
                    Value::Vector(v.into_iter().map(T::from_f64).collect())
                }
            })
        }
    };

    if dims.is_empty() || multivariate {
        return draw_scalar(0);
    }
    // Build the shaped container (nested arrays of vectors).
    let flat: Vec<Value<T>> = (0..total as usize)
        .map(draw_scalar)
        .collect::<Result<_, _>>()?;
    Ok(shape_values(&flat, dims))
}

fn shape_values<T: Real>(flat: &[Value<T>], dims: &[i64]) -> Value<T> {
    if dims.len() <= 1 {
        if flat.iter().all(|v| matches!(v, Value::Int(_))) {
            return Value::IntArray(flat.iter().map(|v| v.as_int().unwrap_or(0)).collect());
        }
        return Value::Vector(
            flat.iter()
                .map(|v| v.as_real().unwrap_or_else(|_| T::from_f64(0.0)))
                .collect(),
        );
    }
    let chunk = (flat.len() as i64 / dims[0].max(1)) as usize;
    Value::Array(
        flat.chunks(chunk.max(1))
            .map(|c| shape_values(c, &dims[1..]))
            .collect(),
    )
}

/// Reparameterized draw: the returned value keeps gradient flow into the
/// distribution parameters for location-scale families; other families fall
/// back to an untracked draw.
fn reparam_draw<T: Real>(d: &Dist<T>, rng: &mut StdRng) -> Value<T> {
    match d {
        Dist::Normal { mu, sigma } => {
            let eps = sampling::standard_normal(rng);
            Value::Real(*mu + *sigma * T::from_f64(eps))
        }
        Dist::LogNormal { mu, sigma } => {
            let eps = sampling::standard_normal(rng);
            Value::Real((*mu + *sigma * T::from_f64(eps)).exp())
        }
        Dist::Uniform { lo, hi } => {
            let u: f64 = rng.gen();
            Value::Real(*lo + (*hi - *lo) * T::from_f64(u))
        }
        Dist::Exponential { rate } => {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            Value::Real(-T::from_f64(u.ln()) / *rate)
        }
        other => match other.sample(rng) {
            Ok(probdist::SampleValue::Real(x)) => Value::Real(T::from_f64(x)),
            Ok(probdist::SampleValue::Int(k)) => Value::Int(k),
            Ok(probdist::SampleValue::Vec(v)) => {
                Value::Vector(v.into_iter().map(T::from_f64).collect())
            }
            Err(_) => Value::Real(T::from_f64(0.0)),
        },
    }
}

/// Scores a parameter trace against a GProb body: the sum of all `sample`
/// log-densities, `observe` log-densities and `factor` increments.
///
/// # Errors
/// Fails if the trace is missing a sample site or evaluation fails.
pub fn score_trace<T: Real>(
    body: &GExpr,
    data: &Env<T>,
    trace: &Env<T>,
) -> Result<T, RuntimeError> {
    let ctx = EvalCtx::empty();
    let mut env = data.clone();
    let mut interp = Interp::new(&ctx, Mode::Trace(trace));
    Ok(interp.run(body, &mut env)?.score)
}

/// Runs a GProb body generatively, drawing every `sample` site from its
/// distribution.
///
/// # Errors
/// Fails if evaluation fails (e.g. invalid distribution parameters).
pub fn run_generative<T: Real>(
    body: &GExpr,
    data: &Env<T>,
    ctx: &EvalCtx<T>,
    rng: Rc<RefCell<StdRng>>,
) -> Result<RunResult<T>, RuntimeError> {
    let mut env = data.clone();
    let mut interp = Interp::new(ctx, Mode::Prior(rng));
    interp.run(body, &mut env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use stan_frontend::ast::Expr;

    fn coin_comprehensive() -> GExpr {
        // let z = sample(uniform(0,1)) in
        // let () = observe(beta(1,1), z) in
        // for (i in 1:N) observe(bernoulli(z), x[i]) ; return z
        GExpr::LetSample {
            name: "z".into(),
            dist: DistCall::new("uniform", vec![Expr::RealLit(0.0), Expr::RealLit(1.0)]),
            body: Box::new(GExpr::Observe {
                dist: DistCall::new("beta", vec![Expr::RealLit(1.0), Expr::RealLit(1.0)]),
                value: Expr::var("z"),
                body: Box::new(GExpr::LetLoop {
                    kind: LoopKind::Range {
                        var: "i".into(),
                        lo: Expr::IntLit(1),
                        hi: Expr::var("N"),
                    },
                    state: vec![],
                    loop_body: Box::new(GExpr::Observe {
                        dist: DistCall::new("bernoulli", vec![Expr::var("z")]),
                        value: Expr::Index(Box::new(Expr::var("x")), vec![Expr::var("i")]),
                        body: Box::new(GExpr::Unit),
                    }),
                    body: Box::new(GExpr::Return(Expr::var("z"))),
                }),
            }),
        }
    }

    fn coin_data() -> Env<f64> {
        let mut env = Env::new();
        env.insert("N".into(), Value::Int(4));
        env.insert("x".into(), Value::IntArray(vec![1, 0, 1, 1]));
        env
    }

    #[test]
    fn trace_mode_scores_the_coin_model() {
        let body = coin_comprehensive();
        let data = coin_data();
        let mut trace = Env::new();
        trace.insert("z".to_string(), Value::Real(0.7f64));
        let score = score_trace(&body, &data, &trace).unwrap();
        // uniform(0,1) lpdf = 0, beta(1,1) lpdf = 0, bernoulli: 3 heads, 1 tail
        let expect = 3.0 * 0.7f64.ln() + 0.3f64.ln();
        assert!((score - expect).abs() < 1e-12, "{score} vs {expect}");
    }

    #[test]
    fn trace_mode_errors_on_missing_site() {
        let body = coin_comprehensive();
        let data = coin_data();
        let err = score_trace::<f64>(&body, &data, &Env::new()).unwrap_err();
        assert!(err.message().contains("missing a value"));
    }

    #[test]
    fn prior_mode_draws_values_in_support() {
        let body = coin_comprehensive();
        let data = coin_data();
        let ctx = EvalCtx::empty();
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(3)));
        for _ in 0..50 {
            let result = run_generative::<f64>(&body, &data, &ctx, rng.clone()).unwrap();
            let z = result.trace.get("z").unwrap().as_real().unwrap();
            assert!((0.0..=1.0).contains(&z));
            assert!(result.score.is_finite());
            assert_eq!(result.value.as_real().unwrap(), z);
        }
    }

    #[test]
    fn shaped_sample_sites_draw_containers() {
        // let theta = sample(normal(0, 1)) with shape [3]
        let body = GExpr::LetSample {
            name: "theta".into(),
            dist: DistCall::with_shape(
                "normal",
                vec![Expr::RealLit(0.0), Expr::RealLit(1.0)],
                vec![Expr::IntLit(3)],
            ),
            body: Box::new(GExpr::Return(Expr::var("theta"))),
        };
        let ctx = EvalCtx::empty();
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(4)));
        let result = run_generative::<f64>(&body, &Env::new(), &ctx, rng).unwrap();
        match result.trace.get("theta").unwrap() {
            Value::Vector(v) => assert_eq!(v.len(), 3),
            other => panic!("expected vector, got {other:?}"),
        }
    }

    #[test]
    fn factor_and_let_det_update_score_and_env() {
        let body = GExpr::LetDet {
            name: "a".into(),
            value: Expr::RealLit(2.5),
            body: Box::new(GExpr::Factor {
                value: Expr::var("a"),
                body: Box::new(GExpr::Return(Expr::var("a"))),
            }),
        };
        let score = score_trace::<f64>(&body, &Env::new(), &Env::new()).unwrap();
        assert_eq!(score, 2.5);
    }

    #[test]
    fn reparam_mode_keeps_gradients() {
        use minidiff::{grad, tape, Var};
        // guide: z ~ normal(m, exp(s))  with learnable m, s
        let body = GExpr::LetSample {
            name: "z".into(),
            dist: DistCall::new(
                "normal",
                vec![
                    Expr::var("m"),
                    Expr::Call("exp".into(), vec![Expr::var("s")]),
                ],
            ),
            body: Box::new(GExpr::Return(Expr::var("z"))),
        };
        tape::reset();
        let m = Var::new(0.3);
        let s = Var::new(-1.0);
        let mut env: Env<Var> = Env::new();
        env.insert("m".into(), Value::Real(m));
        env.insert("s".into(), Value::Real(s));
        let ctx = EvalCtx::empty();
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(5)));
        let mut interp = Interp::new(&ctx, Mode::Reparam(rng));
        let result = interp.run(&body, &mut env).unwrap();
        let z = result.trace.get("z").unwrap().as_real().unwrap();
        let g = grad(z, &[m, s]);
        // dz/dm = 1 for a location-scale reparameterization.
        assert!((g[0] - 1.0).abs() < 1e-12);
        // dz/ds = sigma' * eps = exp(s) * eps = z - m
        assert!((g[1] - (z.value() - 0.3)).abs() < 1e-9);
    }

    #[test]
    fn if_branches_select_on_condition() {
        let body = GExpr::If {
            cond: Expr::Binary(
                stan_frontend::ast::BinOp::Gt,
                Box::new(Expr::var("flag")),
                Box::new(Expr::IntLit(0)),
            ),
            then_branch: Box::new(GExpr::Factor {
                value: Expr::RealLit(1.0),
                body: Box::new(GExpr::Unit),
            }),
            else_branch: Box::new(GExpr::Factor {
                value: Expr::RealLit(-1.0),
                body: Box::new(GExpr::Unit),
            }),
        };
        let mut data = Env::new();
        data.insert("flag".into(), Value::Int(1));
        assert_eq!(score_trace::<f64>(&body, &data, &Env::new()).unwrap(), 1.0);
        data.insert("flag".into(), Value::Int(0));
        assert_eq!(score_trace::<f64>(&body, &data, &Env::new()).unwrap(), -1.0);
    }
}
