//! Tokenizer for Stan source text.
//!
//! Handles `//`, `#` and `/* ... */` comments, integer and real literals
//! (including scientific notation), string literals, identifiers, and the
//! full operator set used by Stan programs.

use crate::error::{FrontendError, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Punctuation or operator, e.g. `"+"`, `"<="`, `"~"`.
    Sym(&'static str),
    /// End of input.
    Eof,
}

impl Tok {
    /// Text form, used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Real(v) => format!("real `{v}`"),
            Tok::Str(s) => format!("string \"{s}\""),
            Tok::Sym(s) => format!("`{s}`"),
            Tok::Eof => "end of input".to_string(),
        }
    }
}

/// A token together with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

/// All multi-character symbols, longest first so maximal munch works.
const SYMBOLS: &[&str] = &[
    "...", "+=", "-=", "*=", "/=", "==", "!=", "<=", ">=", "&&", "||", ".*", "./", "+", "-", "*",
    "/", "%", "^", "=", "<", ">", "!", "?", ":", ";", ",", "~", "|", "(", ")", "[", "]", "{", "}",
    ".",
];

/// Tokenizes Stan source text.
///
/// # Errors
/// Returns a lexical error for unknown characters or malformed literals.
pub fn lex(source: &str) -> Result<Vec<Token>, FrontendError> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    let advance = |c: char, line: &mut u32, col: &mut u32| {
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };

    while i < chars.len() {
        let c = chars[i];
        let span = Span::new(line, col);

        // Whitespace
        if c.is_whitespace() {
            advance(c, &mut line, &mut col);
            i += 1;
            continue;
        }

        // Line comments: `//` and `#` (but not `#include`, which we skip too).
        if c == '#' || (c == '/' && chars.get(i + 1) == Some(&'/')) {
            while i < chars.len() && chars[i] != '\n' {
                advance(chars[i], &mut line, &mut col);
                i += 1;
            }
            continue;
        }

        // Block comments.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            i += 2;
            col += 2;
            loop {
                if i >= chars.len() {
                    return Err(FrontendError::lex("unterminated block comment", span));
                }
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    i += 2;
                    col += 2;
                    break;
                }
                advance(chars[i], &mut line, &mut col);
                i += 1;
            }
            continue;
        }

        // String literals.
        if c == '"' {
            let mut s = String::new();
            i += 1;
            col += 1;
            loop {
                if i >= chars.len() {
                    return Err(FrontendError::lex("unterminated string literal", span));
                }
                let ch = chars[i];
                if ch == '"' {
                    i += 1;
                    col += 1;
                    break;
                }
                s.push(ch);
                advance(ch, &mut line, &mut col);
                i += 1;
            }
            tokens.push(Token {
                tok: Tok::Str(s),
                span,
            });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            let mut is_real = false;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            if i < chars.len()
                && chars[i] == '.'
                && chars.get(i + 1) != Some(&'*')
                && chars.get(i + 1) != Some(&'/')
            {
                is_real = true;
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                let mut j = i + 1;
                if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
                    j += 1;
                }
                if j < chars.len() && chars[j].is_ascii_digit() {
                    is_real = true;
                    i = j;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text: String = chars[start..i].iter().collect();
            col += (i - start) as u32;
            let tok = if is_real {
                Tok::Real(text.parse().map_err(|_| {
                    FrontendError::lex(format!("malformed real literal `{text}`"), span)
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| {
                    FrontendError::lex(format!("malformed integer literal `{text}`"), span)
                })?)
            };
            tokens.push(Token { tok, span });
            continue;
        }

        // Identifiers (may contain dots for DeepStan network parameters such
        // as `mlp.l1.weight`).
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric()
                    || chars[i] == '_'
                    || (chars[i] == '.'
                        && chars
                            .get(i + 1)
                            .is_some_and(|d| d.is_ascii_alphabetic() || *d == '_')))
            {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            col += (i - start) as u32;
            tokens.push(Token {
                tok: Tok::Ident(text),
                span,
            });
            continue;
        }

        // Symbols / operators.
        let mut matched = false;
        for sym in SYMBOLS {
            let n = sym.len();
            if i + n <= chars.len() {
                let candidate: String = chars[i..i + n].iter().collect();
                if candidate == *sym {
                    tokens.push(Token {
                        tok: Tok::Sym(sym),
                        span,
                    });
                    i += n;
                    col += n as u32;
                    matched = true;
                    break;
                }
            }
        }
        if matched {
            continue;
        }

        return Err(FrontendError::lex(
            format!("unexpected character `{c}`"),
            span,
        ));
    }

    tokens.push(Token {
        tok: Tok::Eof,
        span: Span::new(line, col),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        let t = toks("z ~ beta(1, 1);");
        assert_eq!(
            t,
            vec![
                Tok::Ident("z".into()),
                Tok::Sym("~"),
                Tok::Ident("beta".into()),
                Tok::Sym("("),
                Tok::Int(1),
                Tok::Sym(","),
                Tok::Int(1),
                Tok::Sym(")"),
                Tok::Sym(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_reals_and_scientific_notation() {
        assert_eq!(toks("0.001")[0], Tok::Real(0.001));
        assert_eq!(toks("1e-3")[0], Tok::Real(0.001));
        assert_eq!(toks("2.5E2")[0], Tok::Real(250.0));
        assert_eq!(toks("42")[0], Tok::Int(42));
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("x // trailing\n# old style\n/* block\n comment */ y");
        assert_eq!(
            t,
            vec![Tok::Ident("x".into()), Tok::Ident("y".into()), Tok::Eof]
        );
    }

    #[test]
    fn compound_operators_use_maximal_munch() {
        let t = toks("a += b .* c <= d && e");
        assert!(t.contains(&Tok::Sym("+=")));
        assert!(t.contains(&Tok::Sym(".*")));
        assert!(t.contains(&Tok::Sym("<=")));
        assert!(t.contains(&Tok::Sym("&&")));
    }

    #[test]
    fn dotted_identifiers_for_network_parameters() {
        let t = toks("mlp.l1.weight ~ normal(0, 1);");
        assert_eq!(t[0], Tok::Ident("mlp.l1.weight".into()));
    }

    #[test]
    fn element_wise_ops_do_not_absorb_numbers() {
        // `x ./ 2` must lex as ident, ./, int — not a malformed real.
        let t = toks("x ./ 2");
        assert_eq!(
            t,
            vec![
                Tok::Ident("x".into()),
                Tok::Sym("./"),
                Tok::Int(2),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn error_location_is_reported() {
        let err = lex("x @ y").unwrap_err();
        assert_eq!(err.span.unwrap(), Span::new(1, 3));
    }

    #[test]
    fn string_literals() {
        let t = toks("print(\"hello world\");");
        assert!(t.contains(&Tok::Str("hello world".into())));
    }
}
