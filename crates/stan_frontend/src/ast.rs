//! Abstract syntax tree for Stan and DeepStan programs.
//!
//! The structure follows the grammar of Section 3.1 of the paper: a program
//! is a sequence of optional blocks, each block is a list of declarations and
//! statements, and statements include the two probabilistic constructs
//! `target += e` and `e ~ dist(args)`. The DeepStan extensions of Section 5
//! add `networks`, `guide parameters` and `guide` blocks.

use std::fmt;

/// Binary operators (Stan spells most of them like C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integer modulo)
    Mod,
    /// `^` (power)
    Pow,
    /// `.*` element-wise multiplication
    EltMul,
    /// `./` element-wise division
    EltDiv,
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Leq,
    /// `>`
    Gt,
    /// `>=`
    Geq,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// The Stan source spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
            BinOp::EltMul => ".*",
            BinOp::EltDiv => "./",
            BinOp::Eq => "==",
            BinOp::Neq => "!=",
            BinOp::Lt => "<",
            BinOp::Leq => "<=",
            BinOp::Gt => ">",
            BinOp::Geq => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical not `!`.
    Not,
    /// Unary plus `+` (no-op, kept for fidelity).
    Plus,
}

/// Expressions (Section 3.1: constants, variables, calls, containers,
/// indexing), extended with the conditional operator `cond ? a : b` which
/// appears in several `example-models` programs.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Real literal.
    RealLit(f64),
    /// String literal (only used by `print` / `reject`).
    StringLit(String),
    /// Variable reference.
    Var(String),
    /// Function call `f(e1, ..., en)`; binary operators are *not* lowered to
    /// calls, they keep their own node.
    Call(String, Vec<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Indexing `e[i1, ..., in]`; multi-dimensional indexing is flattened
    /// into a single node with one expression per dimension.
    Index(Box<Expr>, Vec<Expr>),
    /// Array literal `{e1, ..., en}`.
    ArrayLit(Vec<Expr>),
    /// Vector / row-vector literal `[e1, ..., en]`.
    VectorLit(Vec<Expr>),
    /// Range expression `lo:hi`, only valid in indexing and loop bounds.
    Range(Box<Expr>, Box<Expr>),
    /// Conditional operator `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for variable references.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Collects every variable name mentioned in the expression.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(x) => {
                if !out.contains(x) {
                    out.push(x.clone());
                }
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::Binary(_, a, b) | Expr::Range(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Unary(_, a) => a.collect_vars(out),
            Expr::Index(base, idx) => {
                base.collect_vars(out);
                for i in idx {
                    i.collect_vars(out);
                }
            }
            Expr::ArrayLit(es) | Expr::VectorLit(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
            Expr::Ternary(c, a, b) => {
                c.collect_vars(out);
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::IntLit(_) | Expr::RealLit(_) | Expr::StringLit(_) => {}
        }
    }

    /// The root variable of an expression that is usable as an assignment
    /// target (`x` or `x[i][j]`), if any.
    pub fn lvalue_root(&self) -> Option<&str> {
        match self {
            Expr::Var(x) => Some(x),
            Expr::Index(base, _) => base.lvalue_root(),
            _ => None,
        }
    }
}

/// Base (unsized element) types of Stan declarations.
#[derive(Debug, Clone, PartialEq)]
pub enum BaseType {
    /// `int`
    Int,
    /// `real`
    Real,
    /// `vector[n]`
    Vector(Box<Expr>),
    /// `row_vector[n]`
    RowVector(Box<Expr>),
    /// `matrix[r, c]`
    Matrix(Box<Expr>, Box<Expr>),
    /// `simplex[n]` — constrained vector summing to one.
    Simplex(Box<Expr>),
    /// `ordered[n]` — increasing vector (unsupported by the backends,
    /// mirroring the paper's reported Pyro/NumPyro limitation).
    Ordered(Box<Expr>),
    /// `positive_ordered[n]`.
    PositiveOrdered(Box<Expr>),
    /// `unit_vector[n]`.
    UnitVector(Box<Expr>),
    /// `cov_matrix[n]`.
    CovMatrix(Box<Expr>),
    /// `corr_matrix[n]`.
    CorrMatrix(Box<Expr>),
    /// `cholesky_factor_corr[n]`.
    CholeskyFactorCorr(Box<Expr>),
}

impl BaseType {
    /// Whether values of this type are integers.
    pub fn is_int(&self) -> bool {
        matches!(self, BaseType::Int)
    }

    /// Whether this type is a container (vector / matrix family).
    pub fn is_container(&self) -> bool {
        !matches!(self, BaseType::Int | BaseType::Real)
    }
}

/// A `<lower=..., upper=...>` constraint attached to a declaration. Either
/// bound may be absent. `offset`/`multiplier` transforms are accepted by the
/// parser but ignored by the backends.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConstraintSpec {
    /// Lower bound expression.
    pub lower: Option<Expr>,
    /// Upper bound expression.
    pub upper: Option<Expr>,
}

impl ConstraintSpec {
    /// True when no bound is present.
    pub fn is_unconstrained(&self) -> bool {
        self.lower.is_none() && self.upper.is_none()
    }
}

/// A variable declaration, e.g. `real<lower=0> sigma;` or
/// `vector[N] x[10];` (an array of ten vectors).
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Element type.
    pub ty: BaseType,
    /// Optional domain constraint.
    pub constraint: ConstraintSpec,
    /// Variable name.
    pub name: String,
    /// Array dimensions (empty for scalars / bare containers).
    pub dims: Vec<Expr>,
    /// Optional initializer (only allowed in transformed blocks and local
    /// declarations).
    pub init: Option<Expr>,
}

/// An assignment target: a variable possibly followed by indices.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// Variable name.
    pub name: String,
    /// Index expressions (empty for a plain variable).
    pub indices: Vec<Expr>,
}

/// Compound assignment operators (`=`, `+=`, `-=`, `*=`, `/=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

/// Statements (Section 3.1), plus local declarations, `print`, `reject`,
/// `return`, `break` and `continue` which occur in the example models.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration inside a block.
    LocalDecl(Decl),
    /// `lhs op rhs;`
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Assignment operator.
        op: AssignOp,
        /// Right-hand side.
        rhs: Expr,
    },
    /// `target += e;`
    TargetPlus(Expr),
    /// `e ~ dist(args) [T[lo, hi]];`
    Tilde {
        /// Left-hand side (may be an arbitrary expression — the paper's
        /// "left expression" feature).
        lhs: Expr,
        /// Distribution name.
        dist: String,
        /// Distribution arguments.
        args: Vec<Expr>,
        /// Optional truncation bounds `T[lo, hi]`.
        truncation: Option<(Option<Expr>, Option<Expr>)>,
    },
    /// `{ stmts }` — a braced sequence.
    Block(Vec<Stmt>),
    /// `if (cond) then else alt`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `for (x in lo:hi) body`
    ForRange {
        /// Loop variable.
        var: String,
        /// Lower bound.
        lo: Expr,
        /// Upper bound.
        hi: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `for (x in collection) body`
    ForEach {
        /// Loop variable.
        var: String,
        /// Collection expression.
        collection: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `print(...)` — ignored by the backends but parsed for fidelity.
    Print(Vec<Expr>),
    /// `reject(...)` — rejects the current draw.
    Reject(Vec<Expr>),
    /// `return e;` inside user-defined functions.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// The empty statement `;`.
    Skip,
}

impl Stmt {
    /// Collects the names assigned anywhere inside the statement — the
    /// `lhs(stmt)` analysis used when compiling loops to GProb (Section 3.3).
    pub fn assigned_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_assigned(&mut out);
        out
    }

    fn collect_assigned(&self, out: &mut Vec<String>) {
        let mut push = |n: &str| {
            if !out.iter().any(|x| x == n) {
                out.push(n.to_string());
            }
        };
        match self {
            Stmt::Assign { lhs, .. } => push(&lhs.name),
            Stmt::LocalDecl(d) if d.init.is_some() => {
                push(&d.name);
            }
            Stmt::Block(ss) => {
                for s in ss {
                    s.collect_assigned(out);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.collect_assigned(out);
                if let Some(e) = else_branch {
                    e.collect_assigned(out);
                }
            }
            Stmt::ForRange { body, .. } | Stmt::ForEach { body, .. } | Stmt::While { body, .. } => {
                body.collect_assigned(out)
            }
            _ => {}
        }
    }
}

/// A block body: the statements of `model`, `transformed data`, etc.
/// Declarations may be interleaved with statements (they appear as
/// [`Stmt::LocalDecl`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlockBody {
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

impl BlockBody {
    /// The declarations appearing directly in this block.
    pub fn decls(&self) -> Vec<&Decl> {
        self.stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::LocalDecl(d) => Some(d),
                _ => None,
            })
            .collect()
    }
}

/// A function argument declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FunArg {
    /// `data` qualifier present?
    pub is_data: bool,
    /// Argument type.
    pub ty: UnsizedType,
    /// Argument name.
    pub name: String,
}

/// Unsized types used in function signatures (`real`, `int`, `vector`,
/// `real[]`, `real[,]`, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct UnsizedType {
    /// Element kind: `int`, `real`, `vector`, `row_vector`, `matrix`, `void`.
    pub kind: String,
    /// Number of array dimensions.
    pub array_dims: usize,
}

/// A user-defined function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDecl {
    /// Return type (`void` for statements-only functions).
    pub return_type: UnsizedType,
    /// Function name.
    pub name: String,
    /// Arguments.
    pub args: Vec<FunArg>,
    /// Body.
    pub body: BlockBody,
}

/// A neural network declaration from the DeepStan `networks` block, e.g.
/// `real[,] decoder(real[] x);`.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkDecl {
    /// Return type of the network's forward function.
    pub return_type: UnsizedType,
    /// Network name.
    pub name: String,
    /// Input arguments.
    pub args: Vec<FunArg>,
}

/// A complete Stan / DeepStan program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// `functions { ... }`
    pub functions: Vec<FunDecl>,
    /// `data { ... }`
    pub data: Vec<Decl>,
    /// `transformed data { ... }`
    pub transformed_data: Option<BlockBody>,
    /// `parameters { ... }`
    pub parameters: Vec<Decl>,
    /// `transformed parameters { ... }`
    pub transformed_parameters: Option<BlockBody>,
    /// `model { ... }` (the only mandatory block).
    pub model: BlockBody,
    /// `generated quantities { ... }`
    pub generated_quantities: Option<BlockBody>,
    /// DeepStan `networks { ... }`
    pub networks: Vec<NetworkDecl>,
    /// DeepStan `guide parameters { ... }`
    pub guide_parameters: Vec<Decl>,
    /// DeepStan `guide { ... }`
    pub guide: Option<BlockBody>,
}

impl Program {
    /// Names of the data variables, in declaration order.
    pub fn data_names(&self) -> Vec<&str> {
        self.data.iter().map(|d| d.name.as_str()).collect()
    }

    /// Names of the parameters, in declaration order.
    pub fn parameter_names(&self) -> Vec<&str> {
        self.parameters.iter().map(|d| d.name.as_str()).collect()
    }

    /// Whether the program uses any DeepStan extension block.
    pub fn is_deepstan(&self) -> bool {
        !self.networks.is_empty() || !self.guide_parameters.is_empty() || self.guide.is_some()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Program(data: {:?}, parameters: {:?}, model: {} statements)",
            self.data_names(),
            self.parameter_names(),
            self.model.stmts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_variable_collection_is_deduplicated() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::var("x")),
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::var("x")),
                Box::new(Expr::var("y")),
            )),
        );
        assert_eq!(e.variables(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn lvalue_root_traverses_indexing() {
        let e = Expr::Index(
            Box::new(Expr::Index(
                Box::new(Expr::var("phi")),
                vec![Expr::IntLit(1)],
            )),
            vec![Expr::var("i")],
        );
        assert_eq!(e.lvalue_root(), Some("phi"));
        assert_eq!(Expr::IntLit(3).lvalue_root(), None);
    }

    #[test]
    fn assigned_names_covers_nested_statements() {
        let s = Stmt::ForRange {
            var: "i".into(),
            lo: Expr::IntLit(1),
            hi: Expr::var("N"),
            body: Box::new(Stmt::Block(vec![
                Stmt::Assign {
                    lhs: LValue {
                        name: "mu".into(),
                        indices: vec![Expr::var("i")],
                    },
                    op: AssignOp::Assign,
                    rhs: Expr::RealLit(0.0),
                },
                Stmt::If {
                    cond: Expr::var("flag"),
                    then_branch: Box::new(Stmt::Assign {
                        lhs: LValue {
                            name: "acc".into(),
                            indices: vec![],
                        },
                        op: AssignOp::AddAssign,
                        rhs: Expr::var("mu"),
                    }),
                    else_branch: None,
                },
            ])),
        };
        assert_eq!(
            s.assigned_names(),
            vec!["mu".to_string(), "acc".to_string()]
        );
    }

    #[test]
    fn program_accessors() {
        let mut p = Program::default();
        p.data.push(Decl {
            ty: BaseType::Int,
            constraint: ConstraintSpec::default(),
            name: "N".into(),
            dims: vec![],
            init: None,
        });
        p.parameters.push(Decl {
            ty: BaseType::Real,
            constraint: ConstraintSpec::default(),
            name: "mu".into(),
            dims: vec![],
            init: None,
        });
        assert_eq!(p.data_names(), vec!["N"]);
        assert_eq!(p.parameter_names(), vec!["mu"]);
        assert!(!p.is_deepstan());
    }
}
