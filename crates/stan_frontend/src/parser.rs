//! Recursive-descent parser producing the [`crate::ast`] types.

use crate::ast::*;
use crate::error::{FrontendError, Span};
use crate::lexer::{Tok, Token};

/// Truncation bounds `T[lo, hi]` (either side optional).
type Truncation = (Option<Expr>, Option<Expr>);

/// Type keywords that can begin a declaration.
const TYPE_KEYWORDS: &[&str] = &[
    "int",
    "real",
    "vector",
    "row_vector",
    "matrix",
    "simplex",
    "ordered",
    "positive_ordered",
    "unit_vector",
    "cov_matrix",
    "corr_matrix",
    "cholesky_factor_corr",
];

/// The recursive-descent parser. Construct with [`Parser::new`] and call
/// [`Parser::parse_program`].
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over a token stream produced by [`crate::lexer::lex`].
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_at(&self, offset: usize) -> &Tok {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(s) if *s == sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), FrontendError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(FrontendError::parse(
                format!("expected `{sym}`, found {}", self.peek().describe()),
                self.span(),
            ))
        }
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if self.peek_ident() == Some(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, FrontendError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(FrontendError::parse(
                format!("expected identifier, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    /// Parses a complete program: any subset of the ten blocks, in order.
    ///
    /// # Errors
    /// Returns a parse error at the first unexpected token.
    pub fn parse_program(&mut self) -> Result<Program, FrontendError> {
        let mut program = Program::default();
        let mut saw_model = false;
        loop {
            match self.peek_ident() {
                Some("functions") => {
                    self.bump();
                    self.expect_sym("{")?;
                    while !self.eat_sym("}") {
                        program.functions.push(self.parse_fun_decl()?);
                    }
                }
                Some("networks") => {
                    self.bump();
                    self.expect_sym("{")?;
                    while !self.eat_sym("}") {
                        program.networks.push(self.parse_network_decl()?);
                    }
                }
                Some("data") => {
                    self.bump();
                    self.expect_sym("{")?;
                    program.data = self.parse_decl_list()?;
                }
                Some("transformed") => {
                    self.bump();
                    let which = self.expect_ident()?;
                    self.expect_sym("{")?;
                    let body = self.parse_block_body()?;
                    match which.as_str() {
                        "data" => program.transformed_data = Some(body),
                        "parameters" => program.transformed_parameters = Some(body),
                        other => {
                            return Err(FrontendError::parse(
                                format!("unknown block `transformed {other}`"),
                                self.span(),
                            ))
                        }
                    }
                }
                Some("parameters") => {
                    self.bump();
                    self.expect_sym("{")?;
                    program.parameters = self.parse_decl_list()?;
                }
                Some("guide") => {
                    self.bump();
                    if self.eat_ident("parameters") {
                        self.expect_sym("{")?;
                        program.guide_parameters = self.parse_decl_list()?;
                    } else {
                        self.expect_sym("{")?;
                        program.guide = Some(self.parse_block_body()?);
                    }
                }
                Some("model") => {
                    self.bump();
                    self.expect_sym("{")?;
                    program.model = self.parse_block_body()?;
                    saw_model = true;
                }
                Some("generated") => {
                    self.bump();
                    let q = self.expect_ident()?;
                    if q != "quantities" {
                        return Err(FrontendError::parse(
                            format!("expected `quantities` after `generated`, found `{q}`"),
                            self.span(),
                        ));
                    }
                    self.expect_sym("{")?;
                    program.generated_quantities = Some(self.parse_block_body()?);
                }
                _ => break,
            }
        }
        if !matches!(self.peek(), Tok::Eof) {
            return Err(FrontendError::parse(
                format!("unexpected {} after last block", self.peek().describe()),
                self.span(),
            ));
        }
        if !saw_model {
            return Err(FrontendError::parse(
                "a Stan program requires a `model` block",
                self.span(),
            ));
        }
        Ok(program)
    }

    fn parse_decl_list(&mut self) -> Result<Vec<Decl>, FrontendError> {
        let mut decls = Vec::new();
        while !self.eat_sym("}") {
            decls.push(self.parse_decl()?);
        }
        Ok(decls)
    }

    fn parse_block_body(&mut self) -> Result<BlockBody, FrontendError> {
        let mut stmts = Vec::new();
        while !self.eat_sym("}") {
            if self.at_decl_start() {
                stmts.push(Stmt::LocalDecl(self.parse_decl()?));
            } else {
                stmts.push(self.parse_stmt()?);
            }
        }
        Ok(BlockBody { stmts })
    }

    fn at_decl_start(&self) -> bool {
        match self.peek_ident() {
            Some(word) if TYPE_KEYWORDS.contains(&word) => {
                // `real` could also begin a cast-like call in theory, but in
                // Stan a type keyword in statement position always starts a
                // declaration.
                !matches!(self.peek_at(1), Tok::Sym("("))
            }
            _ => false,
        }
    }

    fn parse_unsized_type(&mut self) -> Result<UnsizedType, FrontendError> {
        let kind = self.expect_ident()?;
        let mut array_dims = 0usize;
        if self.eat_sym("[") {
            array_dims = 1;
            while self.eat_sym(",") {
                array_dims += 1;
            }
            self.expect_sym("]")?;
        }
        Ok(UnsizedType { kind, array_dims })
    }

    fn parse_fun_args(&mut self) -> Result<Vec<FunArg>, FrontendError> {
        let mut args = Vec::new();
        self.expect_sym("(")?;
        if self.eat_sym(")") {
            return Ok(args);
        }
        loop {
            let is_data = self.eat_ident("data");
            let ty = self.parse_unsized_type()?;
            let name = self.expect_ident()?;
            args.push(FunArg { is_data, ty, name });
            if self.eat_sym(")") {
                break;
            }
            self.expect_sym(",")?;
        }
        Ok(args)
    }

    fn parse_fun_decl(&mut self) -> Result<FunDecl, FrontendError> {
        let return_type = self.parse_unsized_type()?;
        let name = self.expect_ident()?;
        let args = self.parse_fun_args()?;
        self.expect_sym("{")?;
        let body = self.parse_block_body()?;
        Ok(FunDecl {
            return_type,
            name,
            args,
            body,
        })
    }

    fn parse_network_decl(&mut self) -> Result<NetworkDecl, FrontendError> {
        let return_type = self.parse_unsized_type()?;
        let name = self.expect_ident()?;
        let args = self.parse_fun_args()?;
        self.expect_sym(";")?;
        Ok(NetworkDecl {
            return_type,
            name,
            args,
        })
    }

    fn parse_constraint(&mut self) -> Result<ConstraintSpec, FrontendError> {
        let mut spec = ConstraintSpec::default();
        if !self.eat_sym("<") {
            return Ok(spec);
        }
        loop {
            let key = self.expect_ident()?;
            self.expect_sym("=")?;
            // Constraint bounds stop at the additive level so that the closing
            // `>` of the constraint is not mistaken for a comparison operator.
            let value = self.parse_additive()?;
            match key.as_str() {
                "lower" => spec.lower = Some(value),
                "upper" => spec.upper = Some(value),
                // offset/multiplier are parsed and ignored (they only affect
                // sampler adaptation, not the density).
                "offset" | "multiplier" => {}
                other => {
                    return Err(FrontendError::parse(
                        format!("unknown constraint `{other}`"),
                        self.span(),
                    ))
                }
            }
            if self.eat_sym(">") {
                break;
            }
            self.expect_sym(",")?;
        }
        Ok(spec)
    }

    fn parse_base_type(&mut self) -> Result<(BaseType, ConstraintSpec), FrontendError> {
        let kind = self.expect_ident()?;
        match kind.as_str() {
            "int" => Ok((BaseType::Int, self.parse_constraint()?)),
            "real" => Ok((BaseType::Real, self.parse_constraint()?)),
            "vector"
            | "row_vector"
            | "simplex"
            | "ordered"
            | "positive_ordered"
            | "unit_vector"
            | "cov_matrix"
            | "corr_matrix"
            | "cholesky_factor_corr" => {
                let constraint = self.parse_constraint()?;
                self.expect_sym("[")?;
                let n = self.parse_expr()?;
                self.expect_sym("]")?;
                let ty = match kind.as_str() {
                    "vector" => BaseType::Vector(Box::new(n)),
                    "row_vector" => BaseType::RowVector(Box::new(n)),
                    "simplex" => BaseType::Simplex(Box::new(n)),
                    "ordered" => BaseType::Ordered(Box::new(n)),
                    "positive_ordered" => BaseType::PositiveOrdered(Box::new(n)),
                    "unit_vector" => BaseType::UnitVector(Box::new(n)),
                    "cov_matrix" => BaseType::CovMatrix(Box::new(n)),
                    "corr_matrix" => BaseType::CorrMatrix(Box::new(n)),
                    _ => BaseType::CholeskyFactorCorr(Box::new(n)),
                };
                Ok((ty, constraint))
            }
            "matrix" => {
                let constraint = self.parse_constraint()?;
                self.expect_sym("[")?;
                let r = self.parse_expr()?;
                self.expect_sym(",")?;
                let c = self.parse_expr()?;
                self.expect_sym("]")?;
                Ok((BaseType::Matrix(Box::new(r), Box::new(c)), constraint))
            }
            other => Err(FrontendError::parse(
                format!("expected a type, found `{other}`"),
                self.span(),
            )),
        }
    }

    fn parse_decl(&mut self) -> Result<Decl, FrontendError> {
        let (ty, constraint) = self.parse_base_type()?;
        let name = self.expect_ident()?;
        let mut dims = Vec::new();
        if self.eat_sym("[") {
            loop {
                dims.push(self.parse_expr()?);
                if self.eat_sym("]") {
                    break;
                }
                self.expect_sym(",")?;
            }
        }
        let init = if self.eat_sym("=") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect_sym(";")?;
        Ok(Decl {
            ty,
            constraint,
            name,
            dims,
            init,
        })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, FrontendError> {
        // Empty statement.
        if self.eat_sym(";") {
            return Ok(Stmt::Skip);
        }
        // Braced block.
        if self.eat_sym("{") {
            let body = self.parse_block_body()?;
            return Ok(Stmt::Block(body.stmts));
        }
        match self.peek_ident() {
            Some("if") => return self.parse_if(),
            Some("for") => return self.parse_for(),
            Some("while") => return self.parse_while(),
            Some("break") => {
                self.bump();
                self.expect_sym(";")?;
                return Ok(Stmt::Break);
            }
            Some("continue") => {
                self.bump();
                self.expect_sym(";")?;
                return Ok(Stmt::Continue);
            }
            Some("return") => {
                self.bump();
                if self.eat_sym(";") {
                    return Ok(Stmt::Return(None));
                }
                let e = self.parse_expr()?;
                self.expect_sym(";")?;
                return Ok(Stmt::Return(Some(e)));
            }
            Some("print") => {
                self.bump();
                let args = self.parse_call_args()?;
                self.expect_sym(";")?;
                return Ok(Stmt::Print(args));
            }
            Some("reject") => {
                self.bump();
                let args = self.parse_call_args()?;
                self.expect_sym(";")?;
                return Ok(Stmt::Reject(args));
            }
            Some("target") if matches!(self.peek_at(1), Tok::Sym("+=")) => {
                self.bump();
                self.bump();
                let e = self.parse_expr()?;
                self.expect_sym(";")?;
                return Ok(Stmt::TargetPlus(e));
            }
            // Old-style `increment_log_prob(e);`
            Some("increment_log_prob") if matches!(self.peek_at(1), Tok::Sym("(")) => {
                self.bump();
                let mut args = self.parse_call_args()?;
                self.expect_sym(";")?;
                let e = args.pop().ok_or_else(|| {
                    FrontendError::parse("increment_log_prob needs an argument", self.span())
                })?;
                return Ok(Stmt::TargetPlus(e));
            }
            _ => {}
        }

        // Expression-led statements: assignment or ~.
        let lhs = self.parse_expr()?;
        if self.eat_sym("~") {
            let dist = self.expect_ident()?;
            let args = self.parse_call_args()?;
            let truncation = self.parse_truncation()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Tilde {
                lhs,
                dist,
                args,
                truncation,
            });
        }
        let op = if self.eat_sym("=") {
            AssignOp::Assign
        } else if self.eat_sym("+=") {
            AssignOp::AddAssign
        } else if self.eat_sym("-=") {
            AssignOp::SubAssign
        } else if self.eat_sym("*=") {
            AssignOp::MulAssign
        } else if self.eat_sym("/=") {
            AssignOp::DivAssign
        } else {
            return Err(FrontendError::parse(
                format!(
                    "expected `~` or an assignment operator, found {}",
                    self.peek().describe()
                ),
                self.span(),
            ));
        };
        let lvalue = match &lhs {
            Expr::Var(name) => LValue {
                name: name.clone(),
                indices: vec![],
            },
            Expr::Index(base, idx) => match base.lvalue_root() {
                Some(root) if matches!(**base, Expr::Var(_)) => LValue {
                    name: root.to_string(),
                    indices: idx.clone(),
                },
                _ => {
                    return Err(FrontendError::parse(
                        "assignment target must be a variable or indexed variable",
                        self.span(),
                    ))
                }
            },
            _ => {
                return Err(FrontendError::parse(
                    "assignment target must be a variable or indexed variable",
                    self.span(),
                ))
            }
        };
        let rhs = self.parse_expr()?;
        self.expect_sym(";")?;
        Ok(Stmt::Assign {
            lhs: lvalue,
            op,
            rhs,
        })
    }

    fn parse_truncation(&mut self) -> Result<Option<Truncation>, FrontendError> {
        if self.peek_ident() == Some("T") && matches!(self.peek_at(1), Tok::Sym("[")) {
            self.bump();
            self.bump();
            let lo = if matches!(self.peek(), Tok::Sym(",")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_sym(",")?;
            let hi = if matches!(self.peek(), Tok::Sym("]")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_sym("]")?;
            Ok(Some((lo, hi)))
        } else {
            Ok(None)
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, FrontendError> {
        self.bump(); // `if`
        self.expect_sym("(")?;
        let cond = self.parse_expr()?;
        self.expect_sym(")")?;
        let then_branch = Box::new(self.parse_stmt()?);
        let else_branch = if self.eat_ident("else") {
            Some(Box::new(self.parse_stmt()?))
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn parse_for(&mut self) -> Result<Stmt, FrontendError> {
        self.bump(); // `for`
        self.expect_sym("(")?;
        let var = self.expect_ident()?;
        if !self.eat_ident("in") {
            return Err(FrontendError::parse("expected `in`", self.span()));
        }
        let first = self.parse_expr()?;
        if self.eat_sym(":") {
            let hi = self.parse_expr()?;
            self.expect_sym(")")?;
            let body = Box::new(self.parse_stmt()?);
            Ok(Stmt::ForRange {
                var,
                lo: first,
                hi,
                body,
            })
        } else {
            self.expect_sym(")")?;
            let body = Box::new(self.parse_stmt()?);
            Ok(Stmt::ForEach {
                var,
                collection: first,
                body,
            })
        }
    }

    fn parse_while(&mut self) -> Result<Stmt, FrontendError> {
        self.bump(); // `while`
        self.expect_sym("(")?;
        let cond = self.parse_expr()?;
        self.expect_sym(")")?;
        let body = Box::new(self.parse_stmt()?);
        Ok(Stmt::While { cond, body })
    }

    fn parse_call_args(&mut self) -> Result<Vec<Expr>, FrontendError> {
        self.expect_sym("(")?;
        let mut args = Vec::new();
        if self.eat_sym(")") {
            return Ok(args);
        }
        loop {
            args.push(self.parse_expr()?);
            if self.eat_sym(")") {
                break;
            }
            // `|` separates the outcome from the parameters in `_lpdf` calls.
            if !self.eat_sym(",") && !self.eat_sym("|") {
                return Err(FrontendError::parse(
                    format!("expected `,` or `)`, found {}", self.peek().describe()),
                    self.span(),
                ));
            }
        }
        Ok(args)
    }

    /// Parses an expression (entry point also used for constraint bounds and
    /// array dimensions).
    pub fn parse_expr(&mut self) -> Result<Expr, FrontendError> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr, FrontendError> {
        let cond = self.parse_or()?;
        if self.eat_sym("?") {
            let a = self.parse_ternary()?;
            self.expect_sym(":")?;
            let b = self.parse_ternary()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn parse_or(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.parse_and()?;
        while self.eat_sym("||") {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.parse_equality()?;
        while self.eat_sym("&&") {
            let rhs = self.parse_equality()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.parse_comparison()?;
        loop {
            let op = if self.eat_sym("==") {
                BinOp::Eq
            } else if self.eat_sym("!=") {
                BinOp::Neq
            } else {
                break;
            };
            let rhs = self.parse_comparison()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = if self.eat_sym("<=") {
                BinOp::Leq
            } else if self.eat_sym(">=") {
                BinOp::Geq
            } else if self.eat_sym("<") {
                BinOp::Lt
            } else if self.eat_sym(">") {
                BinOp::Gt
            } else {
                break;
            };
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = if self.eat_sym("+") {
                BinOp::Add
            } else if self.eat_sym("-") {
                BinOp::Sub
            } else {
                break;
            };
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = if self.eat_sym("*") {
                BinOp::Mul
            } else if self.eat_sym("/") {
                BinOp::Div
            } else if self.eat_sym("%") {
                BinOp::Mod
            } else if self.eat_sym(".*") {
                BinOp::EltMul
            } else if self.eat_sym("./") {
                BinOp::EltDiv
            } else {
                break;
            };
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, FrontendError> {
        if self.eat_sym("-") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        if self.eat_sym("!") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        if self.eat_sym("+") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Plus, Box::new(e)));
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<Expr, FrontendError> {
        let base = self.parse_postfix()?;
        if self.eat_sym("^") {
            let exp = self.parse_unary()?; // right-associative
            Ok(Expr::Binary(BinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, FrontendError> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_sym("[") {
                let mut idx = Vec::new();
                loop {
                    idx.push(self.parse_index_expr()?);
                    if self.eat_sym("]") {
                        break;
                    }
                    self.expect_sym(",")?;
                }
                e = Expr::Index(Box::new(e), idx);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_index_expr(&mut self) -> Result<Expr, FrontendError> {
        let first = self.parse_expr()?;
        if self.eat_sym(":") {
            let hi = self.parse_expr()?;
            Ok(Expr::Range(Box::new(first), Box::new(hi)))
        } else {
            Ok(first)
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, FrontendError> {
        let span = self.span();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::IntLit(v)),
            Tok::Real(v) => Ok(Expr::RealLit(v)),
            Tok::Str(s) => Ok(Expr::StringLit(s)),
            Tok::Ident(name) => {
                if matches!(self.peek(), Tok::Sym("(")) {
                    let args = self.parse_call_args()?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::Sym("(") => {
                let e = self.parse_expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Sym("{") => {
                let mut items = Vec::new();
                if !self.eat_sym("}") {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.eat_sym("}") {
                            break;
                        }
                        self.expect_sym(",")?;
                    }
                }
                Ok(Expr::ArrayLit(items))
            }
            Tok::Sym("[") => {
                let mut items = Vec::new();
                if !self.eat_sym("]") {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.eat_sym("]") {
                            break;
                        }
                        self.expect_sym(",")?;
                    }
                }
                Ok(Expr::VectorLit(items))
            }
            other => Err(FrontendError::parse(
                format!("expected an expression, found {}", other.describe()),
                span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Program {
        Parser::new(lex(src).unwrap()).parse_program().unwrap()
    }

    fn parse_err(src: &str) -> FrontendError {
        Parser::new(lex(src).unwrap()).parse_program().unwrap_err()
    }

    #[test]
    fn parses_the_coin_model_of_figure_1() {
        let p = parse(
            r#"
            data {
              int N;
              int<lower=0,upper=1> x[N];
            }
            parameters {
              real<lower=0,upper=1> z;
            }
            model {
              z ~ beta(1, 1);
              for (i in 1:N) x[i] ~ bernoulli(z);
            }
            "#,
        );
        assert_eq!(p.data_names(), vec!["N", "x"]);
        assert_eq!(p.parameter_names(), vec!["z"]);
        assert_eq!(p.model.stmts.len(), 2);
        match &p.model.stmts[1] {
            Stmt::ForRange { var, body, .. } => {
                assert_eq!(var, "i");
                assert!(matches!(**body, Stmt::Tilde { .. }));
            }
            other => panic!("expected for loop, got {other:?}"),
        }
    }

    #[test]
    fn parses_left_expressions_and_target() {
        let p = parse(
            r#"
            parameters { real phi[5]; }
            model {
              sum(phi) ~ normal(0, 0.001 * 5);
              target += -0.5 * dot_self(phi);
            }
            "#,
        );
        match &p.model.stmts[0] {
            Stmt::Tilde { lhs, dist, .. } => {
                assert!(matches!(lhs, Expr::Call(name, _) if name == "sum"));
                assert_eq!(dist, "normal");
            }
            other => panic!("expected tilde, got {other:?}"),
        }
        assert!(matches!(&p.model.stmts[1], Stmt::TargetPlus(_)));
    }

    #[test]
    fn parses_all_seven_classic_blocks() {
        let p = parse(
            r#"
            functions { real square_it(real x) { return x * x; } }
            data { int N; real y[N]; }
            transformed data { real mean_y; mean_y = mean(y); }
            parameters { real mu; real<lower=0> sigma; }
            transformed parameters { real mu2; mu2 = mu * 2; }
            model { y ~ normal(mu2, sigma); }
            generated quantities { real yrep; yrep = normal_rng(mu2, sigma); }
            "#,
        );
        assert_eq!(p.functions.len(), 1);
        assert!(p.transformed_data.is_some());
        assert!(p.transformed_parameters.is_some());
        assert!(p.generated_quantities.is_some());
        assert_eq!(p.functions[0].name, "square_it");
    }

    #[test]
    fn parses_deepstan_blocks() {
        let p = parse(
            r#"
            networks {
              real[,] decoder(real[] x);
              real[,] encoder(int[,] x);
            }
            data { int nz; int<lower=0, upper=1> x[28, 28]; }
            parameters { real z[nz]; }
            model {
              real mu[28, 28];
              z ~ normal(0, 1);
              mu = decoder(z);
              x ~ bernoulli(mu);
            }
            guide parameters { real m1; real<lower=0> s1; }
            guide {
              z ~ normal(m1, s1);
            }
            "#,
        );
        assert!(p.is_deepstan());
        assert_eq!(p.networks.len(), 2);
        assert_eq!(p.networks[0].name, "decoder");
        assert_eq!(p.guide_parameters.len(), 2);
        assert!(p.guide.is_some());
    }

    #[test]
    fn parses_constraints_and_array_dims() {
        let p = parse(
            r#"
            data {
              int<lower=1> N;
              vector[N] x[10];
              matrix[N, 3] m;
              real<lower=0, upper=1> p;
            }
            model { }
            "#,
        );
        assert_eq!(p.data.len(), 4);
        assert_eq!(p.data[1].dims.len(), 1);
        assert!(matches!(p.data[1].ty, BaseType::Vector(_)));
        assert!(matches!(p.data[2].ty, BaseType::Matrix(_, _)));
        assert_eq!(
            p.data[3].constraint,
            ConstraintSpec {
                lower: Some(Expr::IntLit(0)),
                upper: Some(Expr::IntLit(1))
            }
        );
    }

    #[test]
    fn operator_precedence() {
        let p = parse("parameters { real x; } model { x ~ normal(1 + 2 * 3 ^ 2, 1); }");
        match &p.model.stmts[0] {
            Stmt::Tilde { args, .. } => match &args[0] {
                Expr::Binary(BinOp::Add, l, r) => {
                    assert_eq!(**l, Expr::IntLit(1));
                    assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("bad precedence: {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_truncation_and_ternary_and_while() {
        let p = parse(
            r#"
            data { int N; }
            parameters { real mu; }
            model {
              int i;
              i = 0;
              while (i < N) { i = i + 1; }
              mu ~ normal(0, 1) T[0, ];
              target += mu > 0 ? mu : -mu;
            }
            "#,
        );
        let has_trunc = p.model.stmts.iter().any(|s| {
            matches!(
                s,
                Stmt::Tilde {
                    truncation: Some((Some(_), None)),
                    ..
                }
            )
        });
        assert!(has_trunc);
    }

    #[test]
    fn missing_model_block_is_an_error() {
        let err = parse_err("data { int N; }");
        assert!(err.message.contains("model"));
    }

    #[test]
    fn old_style_increment_log_prob() {
        let p = parse(
            r#"
            parameters { real mu; }
            model {
              real x;
              x = 3.0;
              increment_log_prob(-0.5 * mu * mu);
            }
            "#,
        );
        assert!(p
            .model
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::TargetPlus(_))));
    }

    #[test]
    fn vectorized_lpdf_call_with_bar_separator() {
        let p = parse(
            "data { real y; } parameters { real mu; } model { target += normal_lpdf(y | mu, 1); }",
        );
        match &p.model.stmts[0] {
            Stmt::TargetPlus(Expr::Call(name, args)) => {
                assert_eq!(name, "normal_lpdf");
                assert_eq!(args.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unexpected_token_error_mentions_location() {
        let err = parse_err("model { x ~~ normal(0,1); }");
        assert!(err.span.is_some());
    }
}
