//! Semantic checks: scoping, duplicate declarations, illegal writes, and a
//! lightweight type inference for expressions.
//!
//! The checker mirrors the static analyses Stanc3 runs before its backends:
//! it rejects programs that reference undeclared variables, re-declare a
//! name in the same scope, assign to parameters or data inside the model, or
//! apply operators to incompatible shapes. The inferred [`Ty`] of an
//! expression is intentionally coarse (scalars, vectors, matrices, and
//! arrays) — enough to drive the compiler's code generation decisions and to
//! reproduce the "compile error" rows of the paper's evaluation tables.

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::error::FrontendError;

/// The coarse type lattice used by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// Integer scalar.
    Int,
    /// Real scalar.
    Real,
    /// Vector / row vector / simplex (length not tracked).
    Vector,
    /// Matrix.
    Matrix,
    /// Array of an element type with the given number of dimensions.
    Array(Box<Ty>, usize),
    /// A value whose type we cannot determine (e.g. unknown function call).
    Unknown,
}

impl Ty {
    /// Whether this type is an (int or real) scalar.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Ty::Int | Ty::Real)
    }

    /// The type obtained by indexing with `n` indices.
    pub fn index(&self, n: usize) -> Ty {
        match self {
            Ty::Array(elem, dims) => {
                if n < *dims {
                    Ty::Array(elem.clone(), dims - n)
                } else if n == *dims {
                    (**elem).clone()
                } else {
                    elem.index(n - dims)
                }
            }
            Ty::Vector => {
                if n == 1 {
                    Ty::Real
                } else {
                    Ty::Unknown
                }
            }
            Ty::Matrix => match n {
                1 => Ty::Vector,
                2 => Ty::Real,
                _ => Ty::Unknown,
            },
            _ => Ty::Unknown,
        }
    }
}

/// Where a symbol was declared — used to reject illegal writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// `data` block (read-only everywhere).
    Data,
    /// `parameters` block (read-only; sampled by inference).
    Parameter,
    /// `guide parameters` block.
    GuideParameter,
    /// Any other declaration (transformed blocks, local, generated).
    Local,
    /// Loop index variable.
    LoopIndex,
    /// Declared network (callable).
    Network,
    /// User-defined function argument.
    FunctionArg,
}

#[derive(Debug, Clone)]
struct SymbolInfo {
    ty: Ty,
    origin: Origin,
}

fn decl_ty(d: &Decl) -> Ty {
    let base = match &d.ty {
        BaseType::Int => Ty::Int,
        BaseType::Real => Ty::Real,
        BaseType::Matrix(_, _)
        | BaseType::CovMatrix(_)
        | BaseType::CorrMatrix(_)
        | BaseType::CholeskyFactorCorr(_) => Ty::Matrix,
        _ => Ty::Vector,
    };
    if d.dims.is_empty() {
        base
    } else {
        Ty::Array(Box::new(base), d.dims.len())
    }
}

/// The checking context: nested scopes and the user function/network tables.
struct Checker {
    scopes: Vec<HashMap<String, SymbolInfo>>,
    functions: HashSet<String>,
    errors: Vec<String>,
    allow_parameter_writes: bool,
}

impl Checker {
    fn new() -> Self {
        Checker {
            scopes: vec![HashMap::new()],
            functions: HashSet::new(),
            errors: Vec::new(),
            allow_parameter_writes: false,
        }
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, ty: Ty, origin: Origin) {
        let scope = self.scopes.last_mut().expect("at least one scope");
        if scope.contains_key(name) {
            self.errors
                .push(format!("duplicate declaration of `{name}`"));
        }
        scope.insert(name.to_string(), SymbolInfo { ty, origin });
    }

    fn lookup(&self, name: &str) -> Option<&SymbolInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn check_expr(&mut self, e: &Expr) -> Ty {
        match e {
            Expr::IntLit(_) => Ty::Int,
            Expr::RealLit(_) => Ty::Real,
            Expr::StringLit(_) => Ty::Unknown,
            Expr::Var(name) => match self.lookup(name) {
                Some(info) => info.ty.clone(),
                None => {
                    self.errors.push(format!("unknown variable `{name}`"));
                    Ty::Unknown
                }
            },
            Expr::Call(name, args) => {
                for a in args {
                    self.check_expr(a);
                }
                self.call_return_type(name, args.len())
            }
            Expr::Binary(op, a, b) => {
                let ta = self.check_expr(a);
                let tb = self.check_expr(b);
                self.binary_type(*op, ta, tb)
            }
            Expr::Unary(_, a) => self.check_expr(a),
            Expr::Index(base, idx) => {
                let tb = self.check_expr(base);
                let mut range_indexing = false;
                for i in idx {
                    if matches!(i, Expr::Range(_, _)) {
                        range_indexing = true;
                    }
                    self.check_expr(i);
                }
                if range_indexing {
                    tb
                } else {
                    tb.index(idx.len())
                }
            }
            Expr::ArrayLit(items) => {
                let elem = items
                    .first()
                    .map(|i| self.check_expr(i))
                    .unwrap_or(Ty::Unknown);
                for i in items.iter().skip(1) {
                    self.check_expr(i);
                }
                Ty::Array(Box::new(elem), 1)
            }
            Expr::VectorLit(items) => {
                for i in items {
                    self.check_expr(i);
                }
                Ty::Vector
            }
            Expr::Range(a, b) => {
                self.check_expr(a);
                self.check_expr(b);
                Ty::Array(Box::new(Ty::Int), 1)
            }
            Expr::Ternary(c, a, b) => {
                self.check_expr(c);
                let ta = self.check_expr(a);
                let tb = self.check_expr(b);
                if ta == tb {
                    ta
                } else {
                    Ty::Real
                }
            }
        }
    }

    fn binary_type(&mut self, op: BinOp, a: Ty, b: Ty) -> Ty {
        use BinOp::*;
        match op {
            Eq | Neq | Lt | Leq | Gt | Geq | And | Or => Ty::Int,
            Mod => Ty::Int,
            _ => match (a, b) {
                // Integer arithmetic stays integral (incl. Stan's int division).
                (Ty::Int, Ty::Int) => Ty::Int,
                (Ty::Unknown, o) | (o, Ty::Unknown) => o,
                (Ty::Matrix, _) | (_, Ty::Matrix) => Ty::Matrix,
                (Ty::Vector, Ty::Vector) if op == Mul => Ty::Real,
                (Ty::Vector, _) | (_, Ty::Vector) => Ty::Vector,
                (Ty::Array(e, d), _) | (_, Ty::Array(e, d)) => Ty::Array(e, d),
                _ => Ty::Real,
            },
        }
    }

    fn call_return_type(&mut self, name: &str, _arity: usize) -> Ty {
        // Reductions and scalar transcendental functions.
        const SCALAR_FNS: &[&str] = &[
            "sum",
            "mean",
            "sd",
            "variance",
            "min",
            "max",
            "prod",
            "dot_product",
            "dot_self",
            "log",
            "exp",
            "sqrt",
            "fabs",
            "abs",
            "square",
            "inv",
            "inv_logit",
            "logit",
            "pow",
            "fmax",
            "fmin",
            "lgamma",
            "tgamma",
            "log1p",
            "log1m",
            "expm1",
            "floor",
            "ceil",
            "round",
            "step",
            "if_else",
            "log_sum_exp",
            "log_mix",
            "normal_lpdf",
            "normal_lpmf",
            "bernoulli_lpmf",
            "binomial_lpmf",
            "poisson_lpmf",
            "beta_lpdf",
            "gamma_lpdf",
            "cauchy_lpdf",
            "student_t_lpdf",
            "uniform_lpdf",
            "exponential_lpdf",
            "lognormal_lpdf",
            "categorical_lpmf",
            "categorical_logit_lpmf",
            "multi_normal_lpdf",
            "dirichlet_lpdf",
            "normal_rng",
            "bernoulli_rng",
            "binomial_rng",
            "poisson_rng",
            "beta_rng",
            "gamma_rng",
            "uniform_rng",
            "categorical_rng",
            "exponential_rng",
            "lognormal_rng",
            "student_t_rng",
            "cauchy_rng",
            "num_elements",
            "rows",
            "cols",
            "size",
            "sin",
            "cos",
            "tan",
            "atan",
            "atan2",
            "tanh",
            "erf",
            "Phi",
            "Phi_approx",
            "binomial_logit_lpmf",
            "bernoulli_logit_lpmf",
            "neg_binomial_2_lpmf",
            "int_step",
        ];
        const VECTOR_FNS: &[&str] = &[
            "rep_vector",
            "to_vector",
            "softmax",
            "cumulative_sum",
            "head",
            "tail",
            "segment",
            "col",
            "row",
            "diagonal",
            "sort_asc",
            "sort_desc",
            "rep_row_vector",
            "inverse",
            "append_row",
            "append_col",
        ];
        const MATRIX_FNS: &[&str] = &["rep_matrix", "to_matrix", "diag_matrix", "cov_exp_quad"];
        const ARRAY_FNS: &[&str] = &["rep_array", "to_array_1d", "to_array_2d"];
        if SCALAR_FNS.contains(&name) {
            Ty::Real
        } else if VECTOR_FNS.contains(&name) {
            Ty::Vector
        } else if MATRIX_FNS.contains(&name) {
            Ty::Matrix
        } else if ARRAY_FNS.contains(&name) {
            Ty::Array(Box::new(Ty::Real), 1)
        } else if self.functions.contains(name)
            || self.lookup(name).map(|i| i.origin) == Some(Origin::Network)
        {
            Ty::Unknown
        } else if name.ends_with("_rng")
            || name.ends_with("_lpdf")
            || name.ends_with("_lpmf")
            || name.ends_with("_lcdf")
            || name.ends_with("_lccdf")
            || name.ends_with("_cdf")
        {
            Ty::Real
        } else {
            // Unknown functions are reported but typed as Unknown so one
            // missing stdlib entry produces a single error.
            self.errors.push(format!("unknown function `{name}`"));
            Ty::Unknown
        }
    }

    fn check_lvalue(&mut self, lv: &LValue) {
        match self.lookup(&lv.name) {
            None => self
                .errors
                .push(format!("assignment to undeclared variable `{}`", lv.name)),
            Some(info) => match info.origin {
                Origin::Data => self
                    .errors
                    .push(format!("cannot assign to data variable `{}`", lv.name)),
                Origin::Parameter if !self.allow_parameter_writes => self.errors.push(format!(
                    "cannot assign to parameter `{}` inside the model",
                    lv.name
                )),
                _ => {}
            },
        }
        let idx = lv.indices.clone();
        for i in &idx {
            self.check_expr(i);
        }
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::LocalDecl(d) => {
                self.check_decl_exprs(d);
                self.declare(&d.name, decl_ty(d), Origin::Local);
                if let Some(init) = &d.init {
                    self.check_expr(init);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                self.check_lvalue(lhs);
                self.check_expr(rhs);
            }
            Stmt::TargetPlus(e) => {
                let t = self.check_expr(e);
                if matches!(t, Ty::Matrix) {
                    self.errors
                        .push("target += expects a scalar or vector expression".to_string());
                }
            }
            Stmt::Tilde { lhs, args, .. } => {
                self.check_expr(lhs);
                for a in args {
                    self.check_expr(a);
                }
            }
            Stmt::Block(ss) => {
                self.push_scope();
                for s in ss {
                    self.check_stmt(s);
                }
                self.pop_scope();
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let t = self.check_expr(cond);
                if !t.is_scalar() && t != Ty::Unknown {
                    self.errors
                        .push("if condition must be a scalar".to_string());
                }
                self.check_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.check_stmt(e);
                }
            }
            Stmt::ForRange { var, lo, hi, body } => {
                self.check_expr(lo);
                self.check_expr(hi);
                self.push_scope();
                self.declare(var, Ty::Int, Origin::LoopIndex);
                self.check_stmt(body);
                self.pop_scope();
            }
            Stmt::ForEach {
                var,
                collection,
                body,
            } => {
                let t = self.check_expr(collection);
                self.push_scope();
                self.declare(var, t.index(1), Origin::LoopIndex);
                self.check_stmt(body);
                self.pop_scope();
            }
            Stmt::While { cond, body } => {
                self.check_expr(cond);
                self.check_stmt(body);
            }
            Stmt::Print(args) | Stmt::Reject(args) => {
                for a in args {
                    self.check_expr(a);
                }
            }
            Stmt::Return(Some(e)) => {
                self.check_expr(e);
            }
            Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Skip => {}
        }
    }

    fn check_decl_exprs(&mut self, d: &Decl) {
        if let Some(l) = &d.constraint.lower {
            self.check_expr(l);
        }
        if let Some(u) = &d.constraint.upper {
            self.check_expr(u);
        }
        for dim in &d.dims {
            self.check_expr(dim);
        }
        match &d.ty {
            BaseType::Vector(n)
            | BaseType::RowVector(n)
            | BaseType::Simplex(n)
            | BaseType::Ordered(n)
            | BaseType::PositiveOrdered(n)
            | BaseType::UnitVector(n)
            | BaseType::CovMatrix(n)
            | BaseType::CorrMatrix(n)
            | BaseType::CholeskyFactorCorr(n) => {
                self.check_expr(n);
            }
            BaseType::Matrix(r, c) => {
                self.check_expr(r);
                self.check_expr(c);
            }
            BaseType::Int | BaseType::Real => {}
        }
    }

    fn check_body(&mut self, body: &BlockBody) {
        for s in &body.stmts {
            self.check_stmt(s);
        }
    }
}

/// Checks a whole program.
///
/// # Errors
/// Returns the first semantic error; the message concatenates everything that
/// was found so callers can show all problems at once.
pub fn check_program(program: &Program) -> Result<(), FrontendError> {
    let mut ck = Checker::new();

    // User-defined functions: register names, then check bodies in their own
    // scope with their arguments declared.
    for f in &program.functions {
        ck.functions.insert(f.name.clone());
    }
    for f in &program.functions {
        ck.push_scope();
        for arg in &f.args {
            let base = match arg.ty.kind.as_str() {
                "int" => Ty::Int,
                "vector" | "row_vector" => Ty::Vector,
                "matrix" => Ty::Matrix,
                _ => Ty::Real,
            };
            let ty = if arg.ty.array_dims > 0 {
                Ty::Array(Box::new(base), arg.ty.array_dims)
            } else {
                base
            };
            ck.declare(&arg.name, ty, Origin::FunctionArg);
        }
        ck.check_body(&f.body);
        ck.pop_scope();
    }

    // Networks behave like opaque callables; their lifted parameters (e.g.
    // `mlp.l1.weight`) are declared in the parameters block by the user.
    for n in &program.networks {
        ck.declare(&n.name, Ty::Unknown, Origin::Network);
    }

    for d in &program.data {
        ck.check_decl_exprs(d);
        ck.declare(&d.name, decl_ty(d), Origin::Data);
    }
    if let Some(td) = &program.transformed_data {
        ck.check_body(td);
        // Transformed-data declarations stay visible to later blocks.
        hoist_decls(&mut ck, td);
    }
    for d in &program.parameters {
        ck.check_decl_exprs(d);
        ck.declare(&d.name, decl_ty(d), Origin::Parameter);
    }
    if let Some(tp) = &program.transformed_parameters {
        ck.check_body(tp);
        hoist_decls(&mut ck, tp);
    }

    ck.push_scope();
    ck.check_body(&program.model);
    ck.pop_scope();

    if let Some(gq) = &program.generated_quantities {
        ck.push_scope();
        ck.check_body(gq);
        ck.pop_scope();
    }

    // DeepStan guide: guide parameters are learnable coefficients; the guide
    // body must sample the model parameters, so writes to them are illegal
    // but ~ statements about them are expected.
    for d in &program.guide_parameters {
        ck.check_decl_exprs(d);
        ck.declare(&d.name, decl_ty(d), Origin::GuideParameter);
    }
    if let Some(guide) = &program.guide {
        ck.push_scope();
        ck.check_body(guide);
        ck.pop_scope();
    }

    if ck.errors.is_empty() {
        Ok(())
    } else {
        Err(FrontendError::semantic(ck.errors.join("; ")))
    }
}

fn hoist_decls(ck: &mut Checker, body: &BlockBody) {
    for s in &body.stmts {
        if let Stmt::LocalDecl(d) = s {
            // Re-declare at the top level so subsequent blocks can see it;
            // duplicates were already reported while checking the block.
            let scope = ck.scopes.first_mut().expect("root scope");
            scope.insert(
                d.name.clone(),
                SymbolInfo {
                    ty: decl_ty(d),
                    origin: Origin::Local,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn check(src: &str) -> Result<(), FrontendError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_the_coin_model() {
        check(
            "data { int N; int<lower=0,upper=1> x[N]; } parameters { real<lower=0,upper=1> z; }
             model { z ~ beta(1,1); for (i in 1:N) x[i] ~ bernoulli(z); }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_variables() {
        let err = check("model { y ~ normal(0, 1); }").unwrap_err();
        assert!(err.message.contains("unknown variable `y`"));
    }

    #[test]
    fn rejects_duplicate_declarations() {
        let err = check("data { int N; real N; } model { }").unwrap_err();
        assert!(err.message.contains("duplicate declaration"));
    }

    #[test]
    fn rejects_assignment_to_data_and_parameters() {
        let err =
            check("data { real y; } parameters { real mu; } model { y = 1; mu = 2; }").unwrap_err();
        assert!(err.message.contains("cannot assign to data"));
        assert!(err.message.contains("cannot assign to parameter"));
    }

    #[test]
    fn loop_variable_is_scoped_to_the_loop() {
        let err = check(
            "data { int N; } parameters { real mu; } model { for (i in 1:N) mu ~ normal(0,1); mu ~ normal(i, 1); }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown variable `i`"));
    }

    #[test]
    fn transformed_data_is_visible_downstream() {
        check(
            "data { int N; real y[N]; } transformed data { real m; m = mean(y); }
             parameters { real mu; } model { mu ~ normal(m, 1); }",
        )
        .unwrap();
    }

    #[test]
    fn unknown_functions_are_reported() {
        let err =
            check("parameters { real mu; } model { mu ~ normal(frobnicate(1), 1); }").unwrap_err();
        assert!(err.message.contains("unknown function `frobnicate`"));
    }

    #[test]
    fn user_functions_and_networks_are_callable() {
        check(
            "functions { real f(real x) { return x * 2; } }
             networks { vector mlp(real[,] imgs); }
             data { real y; }
             parameters { real mu; }
             model { y ~ normal(f(mu) + sum(mlp(rep_array(y, 2, 2))), 1); }",
        )
        .unwrap();
    }

    #[test]
    fn guide_blocks_are_checked() {
        let err = check(
            "parameters { real theta; }
             model { theta ~ normal(0, 1); }
             guide parameters { real m; }
             guide { theta ~ normal(m, s); }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown variable `s`"));
    }
}
