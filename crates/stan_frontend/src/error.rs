//! Error and source-location types shared across the frontend.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Creates a span at the given line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The category of a frontend error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Lexical error (unknown character, malformed literal).
    Lex,
    /// Syntactic error (unexpected token, missing delimiter).
    Parse,
    /// Semantic error (unknown variable, type mismatch, illegal write).
    Semantic,
}

/// An error produced by the lexer, parser, or type checker.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendError {
    /// The error category.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Location in the source text, when known.
    pub span: Option<Span>,
}

impl FrontendError {
    /// Creates a lexical error.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        FrontendError {
            kind: ErrorKind::Lex,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a parse error.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        FrontendError {
            kind: ErrorKind::Parse,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a semantic error.
    pub fn semantic(message: impl Into<String>) -> Self {
        FrontendError {
            kind: ErrorKind::Semantic,
            message: message.into(),
            span: None,
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ErrorKind::Lex => "lexical error",
            ErrorKind::Parse => "syntax error",
            ErrorKind::Semantic => "semantic error",
        };
        match self.span {
            Some(s) => write!(f, "{kind} at {s}: {}", self.message),
            None => write!(f, "{kind}: {}", self.message),
        }
    }
}

impl std::error::Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = FrontendError::parse("expected ';'", Span::new(3, 14));
        assert_eq!(e.to_string(), "syntax error at 3:14: expected ';'");
        let s = FrontendError::semantic("unknown variable `zz`");
        assert!(s.to_string().contains("unknown variable"));
    }
}
