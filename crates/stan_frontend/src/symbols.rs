//! Symbol interning and compile-time name resolution.
//!
//! The runtimes historically looked every variable up in a
//! `HashMap<String, Value>` on each access — string hashing in the innermost
//! loop of `log_density`. This module provides the compile-time half of the
//! fix:
//!
//! * [`Interner`] assigns every distinct name a dense [`SymbolId`];
//! * [`ScopeStack`] resolves names to dense frame [`SlotId`]s, with lexical
//!   scopes for constructs that bound a variable's lifetime (loop indices,
//!   function bodies) and shadowing support (an inner declaration of an
//!   already-bound name gets a fresh slot; the outer binding becomes visible
//!   again when the scope is popped).
//!
//! The `gprob` crate runs a resolution pass over its compiled IR after type
//! checking, producing a `ResolvedProgram` whose environments are plain
//! `Vec`-indexed frames. Stan's dynamic environment semantics are flat — a
//! `HashMap` insert overwrites any previous binding of the name — so that
//! pass uses [`ScopeStack::define_or_reuse`] at the top level (one slot per
//! name) and fresh scopes only where the interpreter used to `remove` names
//! (loop variables).

use std::collections::HashMap;

/// A dense identifier for an interned name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(u32);

impl SymbolId {
    /// The dense index of the symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dense identifier for a runtime frame slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(u32);

impl SlotId {
    /// Builds a slot id from a raw index.
    pub fn new(index: u32) -> Self {
        SlotId(index)
    }

    /// The dense index of the slot.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner: every distinct name gets a dense [`SymbolId`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, SymbolId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns a name, returning its id (stable across repeated calls).
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = SymbolId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), id);
        id
    }

    /// Looks a name up without interning it.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.map.get(name).copied()
    }

    /// The name of an interned symbol.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.index()]
    }

    /// The name at a dense symbol index, if one has been interned there.
    pub fn name_at(&self, index: usize) -> Option<&str> {
        self.names.get(index).map(String::as_str)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SymbolId(i as u32), n.as_str()))
    }
}

/// A lexically scoped name-to-slot resolver.
///
/// Slots are allocated densely and never reused, so the maximum frame size is
/// simply [`ScopeStack::n_slots`]. Scopes control *visibility*: resolving a
/// symbol finds its innermost binding, and popping a scope restores whatever
/// the symbol resolved to outside it.
#[derive(Debug, Clone)]
pub struct ScopeStack {
    /// One vector of `(symbol, slot)` bindings per open scope.
    scopes: Vec<Vec<(SymbolId, SlotId)>>,
    next_slot: u32,
}

impl Default for ScopeStack {
    fn default() -> Self {
        ScopeStack::new()
    }
}

impl ScopeStack {
    /// Creates a resolver with one open (root) scope.
    pub fn new() -> Self {
        ScopeStack {
            scopes: vec![Vec::new()],
            next_slot: 0,
        }
    }

    /// Opens a nested scope.
    pub fn push(&mut self) {
        self.scopes.push(Vec::new());
    }

    /// Closes the innermost scope, returning the bindings it introduced.
    ///
    /// # Panics
    /// Panics if only the root scope remains.
    pub fn pop(&mut self) -> Vec<(SymbolId, SlotId)> {
        assert!(self.scopes.len() > 1, "cannot pop the root scope");
        self.scopes.pop().expect("scope stack is never empty")
    }

    /// Declares `sym` in the current scope with a fresh slot, shadowing any
    /// outer binding until the scope is popped.
    pub fn define(&mut self, sym: SymbolId) -> SlotId {
        let slot = SlotId(self.next_slot);
        self.next_slot += 1;
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .push((sym, slot));
        slot
    }

    /// Returns the slot of a visible binding of `sym`, or declares it in the
    /// current scope. This reproduces the flat `HashMap` environment
    /// semantics (one location per name) used by the tree-walking runtimes.
    pub fn define_or_reuse(&mut self, sym: SymbolId) -> SlotId {
        match self.resolve(sym) {
            Some(slot) => slot,
            None => self.define(sym),
        }
    }

    /// Resolves a symbol to its innermost visible slot.
    pub fn resolve(&self, sym: SymbolId) -> Option<SlotId> {
        for scope in self.scopes.iter().rev() {
            // Later bindings in the same scope shadow earlier ones.
            if let Some(&(_, slot)) = scope.iter().rev().find(|(s, _)| *s == sym) {
                return Some(slot);
            }
        }
        None
    }

    /// Total number of slots allocated so far — the frame size needed to run
    /// the fully resolved program.
    pub fn n_slots(&self) -> usize {
        self.next_slot as usize
    }

    /// Current scope depth (1 = only the root scope).
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }
}

/// Interns every name *declared* by a program (data, parameters, transformed
/// blocks, functions and their arguments, networks, guide parameters).
///
/// Run after type checking; the result seeds the resolution pass of the
/// compiled IR, and guarantees that names visible to user-defined functions
/// (which see the data environment) have symbols even when the model body
/// never mentions them.
pub fn intern_program(program: &crate::ast::Program) -> Interner {
    let mut interner = Interner::new();
    for d in &program.data {
        interner.intern(&d.name);
    }
    if let Some(td) = &program.transformed_data {
        intern_stmt_names(&mut interner, &td.stmts);
    }
    for d in &program.parameters {
        interner.intern(&d.name);
    }
    if let Some(tp) = &program.transformed_parameters {
        intern_stmt_names(&mut interner, &tp.stmts);
    }
    intern_stmt_names(&mut interner, &program.model.stmts);
    for f in &program.functions {
        interner.intern(&f.name);
        for a in &f.args {
            interner.intern(&a.name);
        }
    }
    for n in &program.networks {
        interner.intern(&n.name);
    }
    for d in &program.guide_parameters {
        interner.intern(&d.name);
    }
    if let Some(g) = &program.guide {
        intern_stmt_names(&mut interner, &g.stmts);
    }
    interner
}

/// Interns every name *bound* inside a statement block (local declarations,
/// assignment targets, loop indices). The single statement walker shared by
/// [`intern_program`] and the `gprob` resolution pass, so the two cannot
/// drift on which names receive slots.
pub fn intern_stmt_names(interner: &mut Interner, stmts: &[crate::ast::Stmt]) {
    use crate::ast::Stmt;
    for s in stmts {
        match s {
            Stmt::LocalDecl(d) => {
                interner.intern(&d.name);
            }
            Stmt::Assign { lhs, .. } => {
                interner.intern(&lhs.name);
            }
            Stmt::Block(ss) => intern_stmt_names(interner, ss),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                intern_stmt_names(interner, std::slice::from_ref(then_branch));
                if let Some(e) = else_branch {
                    intern_stmt_names(interner, std::slice::from_ref(e));
                }
            }
            Stmt::ForRange { var, body, .. } | Stmt::ForEach { var, body, .. } => {
                interner.intern(var);
                intern_stmt_names(interner, std::slice::from_ref(body));
            }
            Stmt::While { body, .. } => intern_stmt_names(interner, std::slice::from_ref(body)),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.name(a), "alpha");
        assert_eq!(i.lookup("beta"), Some(b));
        assert_eq!(i.lookup("gamma"), None);
        assert_eq!(i.len(), 2);
        assert_eq!((a.index(), b.index()), (0, 1));
    }

    #[test]
    fn shadowing_allocates_a_fresh_slot_and_pop_restores() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let mut scopes = ScopeStack::new();
        let outer = scopes.define(x);
        scopes.push();
        let inner = scopes.define(x);
        assert_ne!(outer, inner, "inner declaration must shadow, not alias");
        assert_eq!(scopes.resolve(x), Some(inner));
        let dropped = scopes.pop();
        assert_eq!(dropped, vec![(x, inner)]);
        assert_eq!(scopes.resolve(x), Some(outer), "outer binding restored");
        assert_eq!(scopes.n_slots(), 2);
    }

    #[test]
    fn loop_scoped_variables_do_not_leak() {
        let mut i = Interner::new();
        let n = i.intern("N");
        let idx = i.intern("i");
        let mut scopes = ScopeStack::new();
        scopes.define(n);
        // Loop header opens a scope for the index variable.
        scopes.push();
        let slot_i = scopes.define(idx);
        assert_eq!(scopes.resolve(idx), Some(slot_i));
        scopes.pop();
        assert_eq!(scopes.resolve(idx), None, "loop index out of scope");
        assert_eq!(scopes.resolve(n).map(SlotId::index), Some(0));
    }

    #[test]
    fn define_or_reuse_mirrors_flat_env_semantics() {
        let mut i = Interner::new();
        let mu = i.intern("mu");
        let mut scopes = ScopeStack::new();
        let first = scopes.define_or_reuse(mu);
        let again = scopes.define_or_reuse(mu);
        assert_eq!(first, again, "flat semantics: one location per name");
        assert_eq!(scopes.n_slots(), 1);
    }

    #[test]
    fn intern_program_covers_all_declared_names() {
        let src = r#"
            functions { real double_it(real v) { return 2 * v; } }
            data { int N; real y[N]; }
            transformed data { real mean_y; mean_y = mean(y); }
            parameters { real mu; }
            transformed parameters { real shifted; shifted = mu + mean_y; }
            model {
              real acc;
              acc = 0;
              for (i in 1:N) acc += y[i];
              mu ~ normal(0, 1);
            }
        "#;
        let program = crate::parse_program(src).unwrap();
        crate::typecheck(&program).unwrap();
        let interner = intern_program(&program);
        for name in [
            "N",
            "y",
            "mean_y",
            "mu",
            "shifted",
            "acc",
            "i",
            "double_it",
            "v",
        ] {
            assert!(interner.lookup(name).is_some(), "missing `{name}`");
        }
    }
}
