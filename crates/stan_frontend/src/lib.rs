//! `stan_frontend` — lexer, parser, AST and semantic checks for Stan.
//!
//! This crate implements the Stan surface language of Section 3.1 of the
//! paper — all seven program blocks, constrained variable declarations,
//! arrays / vectors / matrices, the two probabilistic statements
//! (`target += e` and `e ~ dist(...)`), loops, conditionals and user-defined
//! functions — plus the conservative **DeepStan** extensions of Section 5:
//! the `networks`, `guide parameters` and `guide` blocks.
//!
//! The pipeline is the classic one:
//!
//! ```text
//! source text --lexer--> tokens --parser--> ast::Program --typeck--> checked Program
//! ```
//!
//! The produced [`ast::Program`] is consumed by the `stan2gprob` compiler and
//! by the `stan_ref` baseline interpreter.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     data { int N; int<lower=0, upper=1> x[N]; }
//!     parameters { real<lower=0, upper=1> z; }
//!     model {
//!       z ~ beta(1, 1);
//!       for (i in 1:N) x[i] ~ bernoulli(z);
//!     }
//! "#;
//! let program = stan_frontend::parse_program(src).unwrap();
//! assert_eq!(program.parameters.len(), 1);
//! assert_eq!(program.parameters[0].name, "z");
//! stan_frontend::typecheck(&program).unwrap();
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod symbols;
pub mod typeck;

pub use ast::Program;
pub use error::{FrontendError, Span};
pub use symbols::{Interner, ScopeStack, SlotId, SymbolId};

/// Parses a complete Stan (or DeepStan) program.
///
/// # Errors
/// Returns a [`FrontendError`] describing the first lexical or syntactic
/// problem, with its source location.
pub fn parse_program(source: &str) -> Result<ast::Program, FrontendError> {
    let tokens = lexer::lex(source)?;
    parser::Parser::new(tokens).parse_program()
}

/// Runs the semantic checks (undeclared variables, duplicate declarations,
/// type errors in expressions and statements, writes to read-only blocks).
///
/// # Errors
/// Returns the first semantic error found.
pub fn typecheck(program: &ast::Program) -> Result<(), FrontendError> {
    typeck::check_program(program)
}

/// Convenience helper: parse and type check in one call.
///
/// # Errors
/// Returns the first lexical, syntactic, or semantic error.
pub fn compile_frontend(source: &str) -> Result<ast::Program, FrontendError> {
    let p = parse_program(source)?;
    typecheck(&p)?;
    Ok(p)
}

/// Parse, type check, and intern every declared name — the front half of the
/// slot-resolution pipeline (the compiled IR is resolved against this table).
///
/// # Errors
/// Returns the first lexical, syntactic, or semantic error.
pub fn compile_frontend_with_symbols(
    source: &str,
) -> Result<(ast::Program, symbols::Interner), FrontendError> {
    let p = parse_program(source)?;
    typecheck(&p)?;
    let interner = symbols::intern_program(&p);
    Ok((p, interner))
}
