//! Deterministic fault injection for the serving tier.
//!
//! Chaos testing only works when the chaos is reproducible: this module
//! injects failures on *fixed schedules* (every N-th opportunity), never
//! randomly, so a failing chaos run replays exactly and assertions can
//! count injected faults precisely.
//!
//! # Schedule grammar
//!
//! A fault plan is a comma-separated list of fault clauses; each clause is
//! a fault kind followed by colon-separated `key=value` options:
//!
//! ```text
//! panic:every=7,delay:ms=50:every=3,io_err:every=11
//! ```
//!
//! * `panic:every=N` — every N-th job pulled by a pool worker panics
//!   before the request runs (exercising the pool's panic isolation).
//! * `delay:ms=M:every=N` — every N-th job sleeps `M` milliseconds before
//!   starting (queue-delay pressure; `ms` defaults to 50).
//! * `io_err:every=N` — every N-th response frame write fails with a
//!   synthetic `BrokenPipe`, dropping that connection (exercising
//!   connection-thread isolation).
//!
//! `every=N` requires `N ≥ 1`; `every=1` fires on every opportunity.
//! Unknown kinds or malformed options are a parse error — a typo in a
//! chaos schedule must not silently disable the chaos.
//!
//! # Wiring
//!
//! [`FaultPlan::from_env`] reads the `GPROB_FAULTS` environment variable
//! (empty/unset → no faults). [`Server::start`](crate::server::Server)
//! instantiates one [`Faults`] per server from
//! [`ServeConfig::faults`](crate::server::ServeConfig), which defaults to
//! the environment plan — so `GPROB_FAULTS=panic:every=20 loadgen ...`
//! turns any load run into a chaos run, while tests construct plans
//! directly for isolation. Each firing increments the matching
//! `serve.faults.*` counter (`serve.faults.panic`, `serve.faults.delay`,
//! `serve.faults.io_err`) so harnesses can assert the injected count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A parsed fault schedule: which fault kinds fire and how often.
///
/// The default plan is empty (no faults). See the [module docs](self) for
/// the schedule grammar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Every N-th worker job panics before running (`panic:every=N`).
    pub panic_every: Option<u64>,
    /// Every N-th worker job sleeps first (`delay:ms=M:every=N`).
    pub delay_every: Option<u64>,
    /// Sleep applied when the delay fault fires.
    pub delay: Duration,
    /// Every N-th response frame write fails (`io_err:every=N`).
    pub io_err_every: Option<u64>,
}

impl FaultPlan {
    /// Parses a schedule string (see the [module docs](self) for the
    /// grammar). The empty string parses to the empty plan.
    ///
    /// # Errors
    /// A human-readable message naming the offending clause: unknown
    /// fault kind, unknown option, malformed number, `every=0`, or a
    /// clause missing its `every`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let mut parts = clause.split(':');
            let kind = parts.next().unwrap_or("").trim();
            let mut every: Option<u64> = None;
            let mut ms: Option<u64> = None;
            for opt in parts {
                let (key, value) = opt.split_once('=').ok_or_else(|| {
                    format!("fault clause `{clause}`: option `{opt}` is not key=value")
                })?;
                let value: u64 = value.trim().parse().map_err(|_| {
                    format!("fault clause `{clause}`: `{key}` value is not a number")
                })?;
                match key.trim() {
                    "every" => {
                        if value == 0 {
                            return Err(format!("fault clause `{clause}`: every=0 never fires"));
                        }
                        every = Some(value);
                    }
                    "ms" if kind == "delay" => ms = Some(value),
                    other => {
                        return Err(format!("fault clause `{clause}`: unknown option `{other}`"))
                    }
                }
            }
            let every = every.ok_or_else(|| format!("fault clause `{clause}`: missing every=N"))?;
            match kind {
                "panic" => plan.panic_every = Some(every),
                "delay" => {
                    plan.delay_every = Some(every);
                    plan.delay = Duration::from_millis(ms.unwrap_or(50));
                }
                "io_err" => plan.io_err_every = Some(every),
                other => return Err(format!("unknown fault kind `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Reads the plan from `GPROB_FAULTS`. Unset or empty means no
    /// faults; a malformed value panics (a chaos schedule with a typo
    /// must not silently run fault-free).
    pub fn from_env() -> FaultPlan {
        match std::env::var("GPROB_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec)
                .unwrap_or_else(|e| panic!("invalid GPROB_FAULTS schedule: {e}")),
            _ => FaultPlan::default(),
        }
    }

    /// Whether this plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.panic_every.is_none() && self.delay_every.is_none() && self.io_err_every.is_none()
    }
}

/// A live injector: a [`FaultPlan`] plus per-kind opportunity counters.
///
/// One instance per server. Counters advance on every *opportunity*
/// (every job for `panic`/`delay`, every frame write for `io_err`) and
/// the fault fires when the count is a multiple of the clause's `every`
/// — deterministic given the opportunity order. Injected totals are
/// readable via [`Faults::injected_panics`] (and siblings) and mirrored
/// into `serve.faults.*` counters.
#[derive(Debug, Default)]
pub struct Faults {
    plan: FaultPlan,
    jobs: AtomicU64,
    delay_jobs: AtomicU64,
    writes: AtomicU64,
    injected_panics: AtomicU64,
    injected_delays: AtomicU64,
    injected_io_errs: AtomicU64,
}

impl Faults {
    /// An injector following `plan`.
    pub fn new(plan: FaultPlan) -> Faults {
        Faults {
            plan,
            ..Faults::default()
        }
    }

    /// An injector that never fires.
    pub fn none() -> Faults {
        Faults::default()
    }

    /// The plan this injector follows.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counts a worker-job opportunity; `true` when this job must panic.
    pub fn should_panic_job(&self) -> bool {
        let Some(every) = self.plan.panic_every else {
            return false;
        };
        let n = self.jobs.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(every) {
            self.injected_panics.fetch_add(1, Ordering::Relaxed);
            obs::counter("serve.faults.panic").inc();
            true
        } else {
            false
        }
    }

    /// Counts a worker-job opportunity; `Some(delay)` when this job must
    /// sleep before starting.
    pub fn job_delay(&self) -> Option<Duration> {
        let every = self.plan.delay_every?;
        let n = self.delay_jobs.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(every) {
            self.injected_delays.fetch_add(1, Ordering::Relaxed);
            obs::counter("serve.faults.delay").inc();
            Some(self.plan.delay)
        } else {
            None
        }
    }

    /// Counts a frame-write opportunity; `Some(err)` when this write must
    /// fail with a synthetic I/O error.
    pub fn write_error(&self) -> Option<std::io::Error> {
        let every = self.plan.io_err_every?;
        let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(every) {
            self.injected_io_errs.fetch_add(1, Ordering::Relaxed);
            obs::counter("serve.faults.io_err").inc();
            Some(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected fault: io_err",
            ))
        } else {
            None
        }
    }

    /// Total panics injected so far.
    pub fn injected_panics(&self) -> u64 {
        self.injected_panics.load(Ordering::Relaxed)
    }

    /// Total delays injected so far.
    pub fn injected_delays(&self) -> u64 {
        self.injected_delays.load(Ordering::Relaxed)
    }

    /// Total synthetic write errors injected so far.
    pub fn injected_io_errs(&self) -> u64 {
        self.injected_io_errs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_parses_to_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn full_grammar_round_trips() {
        let plan = FaultPlan::parse("panic:every=7,delay:ms=50:every=3,io_err:every=11").unwrap();
        assert_eq!(plan.panic_every, Some(7));
        assert_eq!(plan.delay_every, Some(3));
        assert_eq!(plan.delay, Duration::from_millis(50));
        assert_eq!(plan.io_err_every, Some(11));
        assert!(!plan.is_empty());
    }

    #[test]
    fn delay_ms_defaults_to_50() {
        let plan = FaultPlan::parse("delay:every=2").unwrap();
        assert_eq!(plan.delay, Duration::from_millis(50));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(FaultPlan::parse("panic").is_err()); // missing every
        assert!(FaultPlan::parse("panic:every=0").is_err()); // never fires
        assert!(FaultPlan::parse("panic:every=x").is_err()); // not a number
        assert!(FaultPlan::parse("explode:every=2").is_err()); // unknown kind
        assert!(FaultPlan::parse("panic:often=2").is_err()); // unknown option
        assert!(FaultPlan::parse("panic:ms=5:every=2").is_err()); // ms only on delay
    }

    #[test]
    fn schedules_are_deterministic_counts() {
        let faults = Faults::new(FaultPlan::parse("panic:every=3").unwrap());
        let fired: Vec<bool> = (0..9).map(|_| faults.should_panic_job()).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(faults.injected_panics(), 3);
    }

    #[test]
    fn none_never_fires() {
        let faults = Faults::none();
        for _ in 0..100 {
            assert!(!faults.should_panic_job());
            assert!(faults.job_delay().is_none());
            assert!(faults.write_error().is_none());
        }
        assert_eq!(faults.injected_panics(), 0);
        assert_eq!(faults.injected_delays(), 0);
        assert_eq!(faults.injected_io_errs(), 0);
    }

    #[test]
    fn every_one_fires_every_time() {
        let faults = Faults::new(FaultPlan::parse("io_err:every=1").unwrap());
        for _ in 0..5 {
            let err = faults.write_error().expect("every=1 fires on each write");
            assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        }
        assert_eq!(faults.injected_io_errs(), 5);
    }
}
