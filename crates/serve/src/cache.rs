//! The compiled-model cache: one compile/resolve/DProg-lower per tenant
//! model, shared across every request and connection.
//!
//! # Cache key semantics
//!
//! Two levels, keyed by content rather than by the client-supplied name (two
//! tenants naming different programs `model` never collide; the same program
//! uploaded under two names shares one entry):
//!
//! * **Programs** — keyed by the FNV-1a hash of the Stan source text. An
//!   entry holds the front-end + translation output
//!   ([`deepstan::CompiledProgram`]: AST plus all three scheme
//!   translations).
//! * **Bound models** — keyed by `(source hash, scheme, data fingerprint)`.
//!   An entry holds the bound [`gprob::GModel`] (resolved slot IR, lowered
//!   sweeps, the tape-free density program) behind an `Arc`, plus a
//!   [`deepstan::WorkspacePool`] recycling per-chain gradient workspaces
//!   across requests.
//!
//! The data fingerprint hashes names, shapes, **and value bits** — not just
//! the schema — because binding specializes on data values: `transformed
//! data` executes at bind time and the density program constant-folds data
//! into its op stream, so a model bound against one data set is only valid
//! for bit-identical data. Two requests for the same model with different
//! data are different cache entries by construction.
//!
//! # Concurrency
//!
//! Each key maps to an `Arc<OnceLock<...>>` slot; the map mutex is held only
//! for the slot lookup, never during compilation. Concurrent requests for
//! the same uncached key all land on one slot and `OnceLock::get_or_init`
//! runs the compile exactly once while the others block on the result — the
//! cache-concurrency test asserts the process-wide compile/bind counters
//! ([`deepstan::api::compile_count`], [`gprob::model::bind_count`]) advance
//! by exactly one under a thundering herd. Compile *failures* are cached
//! too: a model that fails to compile fails every request without
//! recompiling.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use deepstan::{CompiledProgram, DeepStan, WorkspacePool};
use gprob::value::Value;
use gprob::GModel;
use stan2gprob::Scheme;

/// FNV-1a over a byte stream; tiny, dependency-free, stable across runs.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }
}

/// The FNV-1a hash of a model's source text — the program-level cache key.
pub fn source_hash(source: &str) -> u64 {
    let mut h = Fnv::new();
    h.write(source.as_bytes());
    h.0
}

fn hash_value(h: &mut Fnv, value: &Value<f64>) {
    match value {
        Value::Int(k) => {
            h.write(b"i");
            h.write_u64(*k as u64);
        }
        Value::Real(x) => {
            h.write(b"r");
            h.write_u64(x.to_bits());
        }
        Value::IntArray(ks) => {
            h.write(b"I");
            h.write_u64(ks.len() as u64);
            for k in ks {
                h.write_u64(*k as u64);
            }
        }
        Value::Vector(xs) => {
            h.write(b"R");
            h.write_u64(xs.len() as u64);
            for x in xs {
                h.write_u64(x.to_bits());
            }
        }
        Value::Array(items) => {
            h.write(b"A");
            h.write_u64(items.len() as u64);
            for item in items {
                hash_value(h, item);
            }
        }
        Value::Unit => h.write(b"u"),
    }
}

/// Fingerprint of a data set: names, shapes, and value bits. Order matters
/// (a request's data lines are part of its identity).
pub fn data_fingerprint(data: &[(String, Value<f64>)]) -> u64 {
    let mut h = Fnv::new();
    for (name, value) in data {
        h.write_u64(name.len() as u64);
        h.write(name.as_bytes());
        hash_value(&mut h, value);
    }
    h.0
}

fn scheme_tag(scheme: Scheme) -> u8 {
    match scheme {
        Scheme::Comprehensive => 0,
        Scheme::Mixed => 1,
        Scheme::Generative => 2,
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ModelKey {
    source: u64,
    scheme: u8,
    data: u64,
}

/// One cached bound model: the shared artifacts a request session binds
/// against with zero compile/resolve/lower work.
pub struct CachedModel {
    /// Scheme this model was bound under.
    pub scheme: Scheme,
    /// The bound model (resolved IR + density program), shared immutably.
    pub model: Arc<GModel>,
    /// Cross-request per-chain gradient workspace pool over `model`.
    pub pool: Arc<WorkspacePool>,
}

/// A slot resolves to the cached artifact or the (cached) failure message.
type Slot<T> = Arc<OnceLock<Result<Arc<T>, String>>>;

fn slot_for<K: std::hash::Hash + Eq + Copy, T>(
    map: &Mutex<HashMap<K, Slot<T>>>,
    key: K,
) -> Slot<T> {
    // Poison recovery: the maps only hold `Arc`s and a clock counter, both
    // valid at every mutation point, so a panicking holder never leaves a
    // torn entry — later requests must keep hitting the cache.
    map.lock()
        .unwrap_or_else(|e| e.into_inner())
        .entry(key)
        .or_default()
        .clone()
}

/// Global registry mirrors of the per-instance counters: the `stats`
/// frame and `Fit::profile()` read these. A server process owns exactly
/// one cache, so process totals and instance totals coincide there; the
/// per-instance counters stay authoritative for unit tests that build
/// several caches side by side.
struct GlobalCacheCounters {
    program_hits: Arc<obs::Counter>,
    program_misses: Arc<obs::Counter>,
    model_hits: Arc<obs::Counter>,
    model_misses: Arc<obs::Counter>,
    evictions: Arc<obs::Counter>,
}

fn global_counters() -> &'static GlobalCacheCounters {
    static COUNTERS: OnceLock<GlobalCacheCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| GlobalCacheCounters {
        program_hits: obs::counter("serve.cache.program_hits"),
        program_misses: obs::counter("serve.cache.program_misses"),
        model_hits: obs::counter("serve.cache.model_hits"),
        model_misses: obs::counter("serve.cache.model_misses"),
        evictions: obs::counter("serve.cache.evictions"),
    })
}

/// Cache hit/miss counters (monotone; compare deltas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Program-level lookups that found (or waited on) an existing entry.
    pub program_hits: u64,
    /// Program-level lookups that ran the compile.
    pub program_misses: u64,
    /// Model-level lookups that found (or waited on) an existing entry.
    pub model_hits: u64,
    /// Model-level lookups that ran the bind.
    pub model_misses: u64,
}

/// A bound-model entry plus its last-touch stamp for LRU eviction.
struct ModelEntry {
    slot: Slot<CachedModel>,
    stamp: u64,
}

/// The bound-model map with a logical clock: every lookup re-stamps its
/// entry, so the minimum stamp is always the least recently used key.
#[derive(Default)]
struct ModelMap {
    entries: HashMap<ModelKey, ModelEntry>,
    clock: u64,
}

/// The two-level compiled-model cache. See the module docs for key
/// semantics and the concurrency contract.
///
/// # Bounds
///
/// Bound models dominate the cache's footprint (resolved IR, density
/// program, native code page, workspace pool — all per `(source, scheme,
/// data)` key, and the data fingerprint makes keys cheap to mint). A cache
/// built with [`ModelCache::with_model_capacity`] therefore evicts the
/// least-recently-used bound model once the key count exceeds the cap.
/// Compiled *programs* stay cached unconditionally: they are small, keyed
/// by source alone, and re-binding an evicted model from a cached program
/// skips the front-end entirely. Eviction only drops the cache's reference
/// — sessions holding the `Arc` keep their model alive and valid, and a
/// later request for the same key re-binds a fresh, equivalent entry.
#[derive(Default)]
pub struct ModelCache {
    programs: Mutex<HashMap<u64, Slot<CompiledProgram>>>,
    models: Mutex<ModelMap>,
    model_capacity: Option<usize>,
    program_hits: AtomicU64,
    program_misses: AtomicU64,
    model_hits: AtomicU64,
    model_misses: AtomicU64,
    evictions: AtomicU64,
}

impl ModelCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` bound models (at least 1),
    /// evicting the least recently used beyond that.
    pub fn with_model_capacity(capacity: usize) -> Self {
        ModelCache {
            model_capacity: Some(capacity.max(1)),
            ..Self::default()
        }
    }

    /// The bound-model slot for `key`: re-stamps the entry, inserts an
    /// empty slot on first sight, and — when over capacity — evicts the
    /// least recently used *other* entry. The map lock is never held during
    /// a bind; an evicted slot another thread is still initializing stays
    /// alive through that thread's `Arc` and is simply no longer findable.
    fn model_slot(&self, key: ModelKey) -> Slot<CachedModel> {
        let mut map = self.models.lock().unwrap_or_else(|e| e.into_inner());
        map.clock += 1;
        let stamp = map.clock;
        let mut inserted = false;
        let slot = match map.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().stamp = stamp;
                e.get().slot.clone()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                inserted = true;
                e.insert(ModelEntry {
                    slot: Slot::default(),
                    stamp,
                })
                .slot
                .clone()
            }
        };
        if inserted {
            if let Some(cap) = self.model_capacity {
                while map.entries.len() > cap {
                    let Some(&lru) = map
                        .entries
                        .iter()
                        .filter(|(k, _)| **k != key)
                        .min_by_key(|(_, e)| e.stamp)
                        .map(|(k, _)| k)
                    else {
                        break;
                    };
                    map.entries.remove(&lru);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    global_counters().evictions.inc();
                }
            }
        }
        slot
    }

    /// The compiled program for this source, compiling on first use.
    /// Concurrent callers for one uncached source run the compile once.
    ///
    /// # Errors
    /// The (cached) compile error message.
    pub fn get_or_compile(&self, source: &str) -> Result<Arc<CompiledProgram>, String> {
        let slot = slot_for(&self.programs, source_hash(source));
        let mut ran = false;
        let result = slot.get_or_init(|| {
            ran = true;
            DeepStan::compile(source)
                .map(Arc::new)
                .map_err(|e| e.to_string())
        });
        if ran {
            self.program_misses.fetch_add(1, Ordering::Relaxed);
            global_counters().program_misses.inc();
        } else {
            self.program_hits.fetch_add(1, Ordering::Relaxed);
            global_counters().program_hits.inc();
        }
        result.clone()
    }

    /// The bound model for `(source, scheme, data)`, binding on first use.
    /// Compiles the program too if this source was never seen.
    ///
    /// # Errors
    /// The (cached) compile or bind error message.
    pub fn get_or_bind(
        &self,
        source: &str,
        scheme: Scheme,
        data: &[(String, Value<f64>)],
    ) -> Result<Arc<CachedModel>, String> {
        let key = ModelKey {
            source: source_hash(source),
            scheme: scheme_tag(scheme),
            data: data_fingerprint(data),
        };
        let slot = self.model_slot(key);
        let mut ran = false;
        let result = slot.get_or_init(|| {
            ran = true;
            let program = self.get_or_compile(source)?;
            let refs: Vec<(&str, Value<f64>)> =
                data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
            let model = program
                .bind_with(scheme, &refs)
                .map(Arc::new)
                .map_err(|e| e.to_string())?;
            let pool = Arc::new(WorkspacePool::new(model.clone()));
            Ok(Arc::new(CachedModel {
                scheme,
                model,
                pool,
            }))
        });
        if ran {
            self.model_misses.fetch_add(1, Ordering::Relaxed);
            global_counters().model_misses.inc();
        } else {
            self.model_hits.fetch_add(1, Ordering::Relaxed);
            global_counters().model_hits.inc();
        }
        result.clone()
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            program_hits: self.program_hits.load(Ordering::Relaxed),
            program_misses: self.program_misses.load(Ordering::Relaxed),
            model_hits: self.model_hits.load(Ordering::Relaxed),
            model_misses: self.model_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct bound-model entries currently cached.
    pub fn n_models(&self) -> usize {
        self.models
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// Bound models evicted so far by the LRU bound (always 0 for an
    /// unbounded cache). Monotone; compare deltas.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COIN: &str = r#"
        data { int N; int<lower=0,upper=1> x[N]; }
        parameters { real<lower=0,upper=1> z; }
        model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
    "#;

    fn coin_data() -> Vec<(String, Value<f64>)> {
        vec![
            ("N".to_string(), Value::Int(4)),
            ("x".to_string(), Value::IntArray(vec![1, 0, 1, 1])),
        ]
    }

    #[test]
    fn poisoned_lock_does_not_wedge_later_binds() {
        let cache = ModelCache::new();
        cache
            .get_or_bind(COIN, Scheme::Mixed, &coin_data())
            .unwrap();
        // Poison the model-map mutex by panicking while holding it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.models.lock().unwrap();
            panic!("poison the cache lock");
        }));
        assert!(cache.models.lock().is_err(), "lock must be poisoned");
        // Lookups recover and still hit the cached model.
        let hit = cache
            .get_or_bind(COIN, Scheme::Mixed, &coin_data())
            .unwrap();
        assert!(hit.model.component_names().iter().any(|n| n == "z"));
        assert_eq!(cache.n_models(), 1);
        assert!(cache.stats().model_hits >= 1);
    }

    #[test]
    fn repeat_binds_hit_and_distinct_data_misses() {
        let cache = ModelCache::new();
        let a = cache
            .get_or_bind(COIN, Scheme::Mixed, &coin_data())
            .unwrap();
        let b = cache
            .get_or_bind(COIN, Scheme::Mixed, &coin_data())
            .unwrap();
        assert!(Arc::ptr_eq(&a.model, &b.model));
        assert_eq!(cache.stats().model_misses, 1);
        assert_eq!(cache.stats().model_hits, 1);
        // Different data values — different specialization, different entry.
        let mut other = coin_data();
        other[1].1 = Value::IntArray(vec![0, 0, 1, 1]);
        let c = cache.get_or_bind(COIN, Scheme::Mixed, &other).unwrap();
        assert!(!Arc::ptr_eq(&a.model, &c.model));
        // Different scheme — different entry, same compiled program.
        cache
            .get_or_bind(COIN, Scheme::Comprehensive, &coin_data())
            .unwrap();
        assert_eq!(cache.n_models(), 3);
        assert_eq!(cache.stats().program_misses, 1);
    }

    #[test]
    fn lru_bound_evicts_least_recently_used_model_only() {
        let cache = ModelCache::with_model_capacity(2);
        let data_n = |n: usize| {
            let patterns = [vec![1, 0, 1, 1], vec![0, 1, 1, 1], vec![1, 1, 0, 1]];
            vec![
                ("N".to_string(), Value::Int(4)),
                ("x".to_string(), Value::IntArray(patterns[n - 1].clone())),
            ]
        };
        let a = cache.get_or_bind(COIN, Scheme::Mixed, &data_n(1)).unwrap();
        let _b = cache.get_or_bind(COIN, Scheme::Mixed, &data_n(2)).unwrap();
        // Touch `a`'s key so `b` becomes the LRU, then overflow the cap.
        let a2 = cache.get_or_bind(COIN, Scheme::Mixed, &data_n(1)).unwrap();
        assert!(Arc::ptr_eq(&a.model, &a2.model));
        let _c = cache.get_or_bind(COIN, Scheme::Mixed, &data_n(3)).unwrap();
        assert_eq!(cache.n_models(), 2);
        assert_eq!(cache.evictions(), 1);
        // `a` survived (recently used); `b` was evicted and re-binds fresh.
        let a3 = cache.get_or_bind(COIN, Scheme::Mixed, &data_n(1)).unwrap();
        assert!(Arc::ptr_eq(&a.model, &a3.model));
        let b2 = cache.get_or_bind(COIN, Scheme::Mixed, &data_n(2)).unwrap();
        assert_eq!(cache.evictions(), 2); // re-inserting b evicted c
        assert_eq!(b2.scheme, Scheme::Mixed);
        // The compiled program was never evicted: one compile total.
        assert_eq!(cache.stats().program_misses, 1);
    }

    #[test]
    fn compile_failures_are_cached() {
        // Global compile counters are asserted in the dedicated
        // single-test integration suite (they'd race with the parallel
        // tests here); the cache's own miss counter proves one compile.
        let cache = ModelCache::new();
        let e1 = cache.get_or_bind("parameters {", Scheme::Mixed, &[]);
        let e2 = cache.get_or_bind("parameters {", Scheme::Mixed, &[]);
        assert!(e1.is_err());
        assert_eq!(e1.err(), e2.err());
        assert_eq!(cache.stats().program_misses, 1);
        assert_eq!(cache.stats().model_misses, 1);
        assert_eq!(cache.stats().model_hits, 1);
    }
}
