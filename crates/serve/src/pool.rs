//! The worker pool: a fixed set of threads draining a bounded job queue.
//!
//! # Backpressure contract
//!
//! The queue is bounded at construction. [`WorkerPool::submit`] never
//! blocks: when the queue is full it returns [`Busy`] immediately and the
//! server answers the client with a `busy <retry_after_ms>` frame instead
//! of accepting work it cannot start — a loaded server degrades by
//! rejecting fast, not by queueing unboundedly. The retry hint scales with
//! the backlog ([`WorkerPool::RETRY_PER_PENDING_MS`] per pending job), so
//! clients back off harder the deeper the queue.
//!
//! Jobs are opaque closures; the serving layer enqueues one job per request
//! and the job streams its own response frames (each chain flushed as it
//! finishes). Chains *within* a request shard across threads inside the
//! job (the `Session` layer owns that), so a single expensive request still
//! uses multiple cores while cheap requests flow through other workers.
//!
//! # Panic isolation
//!
//! A panicking job must not cost the pool a worker: each job runs under
//! [`std::panic::catch_unwind`], the unwind is swallowed, the
//! `serve.worker_panics` counter increments, and the worker loops back to
//! the queue. The pool therefore keeps its full configured capacity after
//! any number of job panics. Pool-internal locks recover from poisoning
//! (`unwrap_or_else(|e| e.into_inner())`): the guarded state is a plain
//! queue plus a shutdown flag, both of which remain structurally valid at
//! every await-free mutation point, so a panic elsewhere never wedges
//! submitters or workers.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Rejection returned by [`WorkerPool::submit`] when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy {
    /// Suggested client retry delay in milliseconds.
    pub retry_after_ms: u64,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    jobs_ready: Condvar,
    capacity: usize,
}

/// A fixed-size worker pool over a bounded queue.
pub struct WorkerPool {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Retry hint per job already pending when a submit is rejected.
    pub const RETRY_PER_PENDING_MS: u64 = 25;

    /// Starts `workers` threads (at least one) over a queue bounded at
    /// `capacity` pending jobs (at least one).
    pub fn new(workers: usize, capacity: usize) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            jobs_ready: Condvar::new(),
            capacity: capacity.max(1),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        WorkerPool { inner, handles }
    }

    /// Enqueues a job, or rejects it when the queue is at capacity.
    ///
    /// # Errors
    /// [`Busy`] with a backlog-scaled retry hint.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), Busy> {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.queue.len() >= self.inner.capacity {
            let pending = state.queue.len() as u64;
            return Err(Busy {
                retry_after_ms: Self::RETRY_PER_PENDING_MS * (pending + 1),
            });
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.inner.jobs_ready.notify_one();
        Ok(())
    }

    /// Jobs currently queued (not yet started).
    pub fn pending(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Stops accepting work, drains the queue, and joins every worker.
    /// Already-queued jobs still run to completion.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.inner.jobs_ready.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = match inner.jobs_ready.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        // Panic isolation: a job that unwinds costs the pool nothing but a
        // counter tick — the worker survives and returns to the queue.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            obs::counter("serve.worker_panics").inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_shutdown_drains() {
        let pool = WorkerPool::new(2, 8);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let count = count.clone();
            pool.submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn full_queue_rejects_with_scaled_retry_hint() {
        let pool = WorkerPool::new(1, 2);
        // Block the single worker so queued jobs cannot drain.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();
        // Worker busy; capacity 2 admits two queued jobs, the third bounces.
        pool.submit(|| {}).unwrap();
        pool.submit(|| {}).unwrap();
        let busy = pool.submit(|| {}).unwrap_err();
        assert_eq!(busy.retry_after_ms, WorkerPool::RETRY_PER_PENDING_MS * 3);
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn poisoned_lock_does_not_wedge_submitters() {
        let pool = WorkerPool::new(1, 4);
        // Poison the pool's state mutex by panicking while holding it.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = pool.inner.state.lock().unwrap();
            panic!("poison the pool lock");
        }));
        assert!(pool.inner.state.lock().is_err(), "lock must be poisoned");
        // Submit, pending, and shutdown all recover instead of panicking.
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        pool.submit(move || {
            c.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        let _ = pool.pending();
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panicked_job_does_not_cost_a_worker() {
        let before = obs::global().snapshot().counter("serve.worker_panics");
        // Single worker: if the panic killed it, nothing after could run.
        let pool = WorkerPool::new(1, 16);
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..6 {
            let count = count.clone();
            pool.submit(move || {
                if i % 2 == 0 {
                    panic!("injected job panic");
                }
                count.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 3);
        let after = obs::global().snapshot().counter("serve.worker_panics");
        assert_eq!(
            after.unwrap_or(0) - before.unwrap_or(0),
            3,
            "each panicked job ticks serve.worker_panics exactly once"
        );
    }
}
