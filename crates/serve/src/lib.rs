//! `serve` — the multi-tenant inference service over the compiled pipeline.
//!
//! The reproduction's ROADMAP north star is a production-scale system
//! serving millions of users. Everything below the `Session` API is already
//! built for that shape — compilation is a pure function of (source,
//! scheme), bound models are immutable and `Send + Sync`, chains shard
//! across threads — but every process still paid compile/resolve/DProg-lower
//! per run. This crate adds the long-lived server that amortizes those
//! one-time costs across requests:
//!
//! * [`protocol`] — length-prefixed UTF-8 frames over TCP (the frame
//!   format, request grammar, and streamed response frames are specified
//!   there). Floats travel as shortest-round-trip decimal strings, so
//!   served draws are **bitwise** equal to an in-process `Session::run`.
//! * [`cache`] — the two-level compiled-model cache. Programs are keyed by
//!   source hash; bound models by `(source hash, scheme, data
//!   fingerprint)`, where the fingerprint covers data *values* because
//!   binding specializes on them (`transformed data` runs at bind time and
//!   the density program constant-folds data). Concurrent first requests
//!   compile exactly once (`OnceLock` per key); cache hits bind a session
//!   with zero compile/resolve/lower work, which the test-suite asserts via
//!   process-wide compile/bind counters.
//! * [`pool`] — the bounded worker pool. Submits beyond capacity are
//!   rejected immediately with a backlog-scaled `retry_after_ms` hint (the
//!   backpressure contract lives there), and per-chain gradient workspaces
//!   recycle across requests through [`deepstan::WorkspacePool`].
//! * [`server`] / [`client`] — the accept loop and a blocking client.
//!   Responses stream: each chain's draws flush as that chain finishes.
//! * [`loadgen`] — mixed-model corpus traffic replay measuring
//!   requests/sec and p50/p99 latency (the `BENCH_serve.json` numbers),
//!   plus server-side breakdowns polled over the `stats` frame.
//!
//! # Live telemetry: the `stats` frame
//!
//! Every server process reports into the process-wide [`obs`] registry —
//! request counters and latency histograms per method
//! (`serve.requests.nuts`, `serve.request_ns.nuts`, `serve.queue_ns.*`,
//! `serve.run_ns.*`), pool depth/rejections, and the cache counters
//! (`serve.cache.*`) — alongside the compile/bind/inference metrics the
//! lower layers record. A client sends the single-line frame `stats` and
//! gets the whole registry back as one [`obs::Snapshot`] in stable text
//! form; the reply comes from the connection thread, so it works even
//! while the worker pool is saturated:
//!
//! ```
//! use serve::client::Client;
//! use serve::server::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let snap = client.stats().unwrap();
//! // Counters like "serve.requests.nuts" appear once traffic has run:
//! let _nuts_requests = snap.counter("serve.requests.nuts").unwrap_or(0);
//! server.shutdown();
//! ```
//!
//! Poll `stats` before and after a window and [`obs::Snapshot::delta`]
//! gives the per-window activity — exactly how `loadgen` embeds
//! server-side breakdowns into `BENCH_serve.json`. In-process users get
//! the same registry through `deepstan::Fit::profile()`.
//!
//! # Failure modes & recovery
//!
//! The serving tier is built to lose *requests*, never *capacity*. The
//! contracts, in the order a request meets them:
//!
//! **Deadlines and cooperative cancellation.** When
//! [`ServeConfig::request_timeout`](server::ServeConfig::request_timeout)
//! is set, each request runs under a per-request
//! [`CancelToken`](inference::CancelToken) whose deadline is armed at
//! *job start* (queue wait is not billed against it). Inference outer
//! loops poll the token once per NUTS iteration / ADVI or SVI step /
//! importance particle — never inside a gradient evaluation — so
//! cancellation never perturbs arithmetic: the chains a cancelled run
//! completed are **bitwise identical** to the same-seed uncancelled
//! run's prefix, and a request that finishes just under its deadline is
//! byte-identical to one with no deadline at all. The response stream
//! ends with `deadline_exceeded <wall_time>` instead of `done`; every
//! `chain` frame streamed before it is a complete, valid chain the
//! client keeps ([`ServedFit::deadline_exceeded`] flags the fit).
//! Counters: `serve.deadline_exceeded` (deadline fired) and
//! `serve.cancelled` (any cancellation, drain included).
//!
//! **Panic isolation.** Every pool job and every connection thread runs
//! under `catch_unwind`. A panicking request increments
//! `serve.worker_panics`, the client's stream ends (connection churn,
//! from its side), and the worker returns to the queue — the pool keeps
//! its full configured capacity after any number of panics. All locks in
//! the pool, the model cache, and the telemetry registry recover from
//! poisoning (`unwrap_or_else(|e| e.into_inner())`); their guarded state
//! is structurally valid at every mutation point, so a panicked holder
//! never wedges later callers.
//!
//! **Graceful drain.** [`Server::shutdown`](server::Server::shutdown)
//! (and `Drop`) proceeds in order: stop accepting connections → wait up
//! to [`drain_timeout`](server::ServeConfig::drain_timeout) for
//! in-flight requests to finish on their own → cancel stragglers through
//! the server-wide drain token (each per-request token is its child) and
//! wait one more drain window for them to unwind cooperatively. The
//! drain duration lands in the `serve.drain_ns` histogram.
//!
//! **Socket hygiene.** Connection reads between frames block forever
//! (idle keep-alive connections are free), but once a frame's first byte
//! arrives, every read must progress within
//! [`io_timeout`](server::ServeConfig::io_timeout) — a client stalling
//! on a half-written length prefix frees its connection thread instead
//! of leaking it. Writes carry the same timeout.
//!
//! **Fault injection.** The [`faults`] layer injects deterministic,
//! schedule-driven failures — worker panics, queue delays, synthetic
//! socket write errors — from the `GPROB_FAULTS` environment variable or
//! [`ServeConfig::faults`](server::ServeConfig::faults):
//!
//! ```text
//! GPROB_FAULTS=panic:every=7,delay:ms=50:every=3,io_err:every=11
//! ```
//!
//! fires the named fault on every N-th opportunity (see [`faults`] for
//! the grammar). The chaos test suite drives every fault class and
//! asserts the pool serves at full capacity afterwards. Clients absorb
//! the resulting churn with [`Client::run_with_retry`] — capped
//! exponential backoff with decorrelated jitter, floored at the server's
//! `retry_after_ms` hint.
//!
//! # Quickstart
//!
//! Serve and query in-process (the differential tests do exactly this):
//!
//! ```
//! use serve::client::Client;
//! use serve::protocol::{MethodSpec, Request};
//! use serve::server::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let coin = model_zoo::find("coin").unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let fit = client
//!     .request(&Request {
//!         name: coin.name.to_string(),
//!         scheme: stan2gprob::Scheme::Mixed,
//!         method: MethodSpec::Nuts { warmup: 20, samples: 20 },
//!         chains: 2,
//!         seed: 7,
//!         gq: false,
//!         data: coin.dataset(1),
//!         source: coin.source.to_string(),
//!     })
//!     .unwrap();
//! assert_eq!(fit.chains.len(), 2);
//! assert_eq!(fit.chains[0].draws.len(), 20);
//! server.shutdown();
//! ```
//!
//! Replay corpus traffic against a fresh server from the command line (the
//! CI smoke run; exits nonzero when no request completes):
//!
//! ```text
//! cargo run --release -p serve --bin loadgen -- \
//!     --duration-secs 10 --conns 1,4 --out BENCH_serve.json
//! ```

pub mod cache;
pub mod client;
pub mod faults;
pub mod loadgen;
pub mod pool;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, CachedModel, ModelCache};
pub use client::{Client, ClientError, RetriedFit, RetryPolicy, ServedChain, ServedFit};
pub use faults::{FaultPlan, Faults};
pub use loadgen::{corpus_mix, run_load, LoadReport, LoadSpec};
pub use pool::{Busy, WorkerPool};
pub use protocol::{MethodSpec, Request, RequestFrame, Response};
pub use server::{ServeConfig, Server};
