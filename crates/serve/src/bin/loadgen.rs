//! Replays mixed-model corpus traffic against a serve instance and reports
//! requests/sec and p50/p99 latency per concurrency level.
//!
//! With no `--addr`, starts an in-process [`serve::Server`] (release-mode
//! numbers then include nothing but this process). Server-side breakdowns
//! come over the wire: the generator polls the `stats` frame before and
//! after each level and embeds the delta (cache counters, per-method
//! queue/run percentiles) in each level's JSON, so the numbers are honest
//! for remote `--addr` targets too. Exits nonzero when any level completes
//! zero requests or when the server's `stats` response is empty — the CI
//! smoke run's assertions.
//!
//! ```text
//! loadgen [--duration-secs N] [--conns 1,4] [--addr HOST:PORT] [--out FILE]
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use serve::client::Client;
use serve::loadgen::{corpus_mix, run_load, server_breakdown_json, LoadSpec};
use serve::server::{ServeConfig, Server};

struct Args {
    duration_secs: u64,
    conns: Vec<usize>,
    addr: Option<SocketAddr>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        duration_secs: 5,
        conns: vec![1, 4],
        addr: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{flag} needs a {what}"));
        match flag.as_str() {
            "--duration-secs" => {
                args.duration_secs = value("count")?.parse().map_err(|_| "bad duration")?;
            }
            "--conns" => {
                args.conns = value("list")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad conns `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--addr" => {
                args.addr = Some(value("address")?.parse().map_err(|_| "bad address")?);
            }
            "--out" => args.out = Some(value("path")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.conns.is_empty() {
        return Err("--conns must name at least one level".to_string());
    }
    Ok(args)
}

/// Days-since-epoch to `YYYY-MM-DD` (proleptic Gregorian; Howard Hinnant's
/// civil-from-days), so the bench capture is dated without a time crate.
fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    // No --addr: serve from this process on an ephemeral port.
    let (addr, server) = match args.addr {
        Some(addr) => (addr, None),
        None => {
            let server = match Server::start(ServeConfig::default()) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("loadgen: failed to start server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (server.addr(), Some(server))
        }
    };
    // Server-side breakdowns travel over the wire (the `stats` frame),
    // never through in-process cache handles — a remote --addr target
    // reports identically.
    let mut poller = match Client::connect(addr) {
        Ok(poller) => poller,
        Err(e) => {
            eprintln!("loadgen: failed to connect stats poller: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut poll_stats = |what: &str| match poller.stats() {
        Ok(snapshot) => Some(snapshot),
        Err(e) => {
            eprintln!("loadgen: stats poll {what} failed: {e}");
            None
        }
    };
    let requests = corpus_mix();
    let mut reports = Vec::new();
    let mut levels: Vec<String> = Vec::new();
    let mut last_stats = None;
    for &concurrency in &args.conns {
        let before = poll_stats("before level");
        let report = run_load(
            addr,
            &LoadSpec {
                concurrency,
                duration: Duration::from_secs(args.duration_secs),
                requests: requests.clone(),
            },
        );
        eprintln!(
            "conns {:>2}: {:>6} completed ({} rejected, {} failed, {} retries, \
             {} deadline_exceeded), {:.1} req/s, p50 {:.2}ms, p99 {:.2}ms",
            report.concurrency,
            report.completed,
            report.rejected,
            report.failed,
            report.retries,
            report.deadline_exceeded,
            report.rps,
            report.p50_ms,
            report.p99_ms
        );
        let mut level_json = report.to_json();
        if let (Some(before), Some(after)) = (before, poll_stats("after level")) {
            let breakdown = server_breakdown_json(&after.delta(&before));
            level_json.truncate(level_json.len() - 1);
            level_json.push_str(&format!(", \"server\": {breakdown}}}"));
            last_stats = Some(after);
        }
        levels.push(level_json);
        reports.push(report);
    }
    let cache_note = last_stats
        .as_ref()
        .map(|snapshot| {
            let c = |name: &str| snapshot.counter(name).unwrap_or(0);
            format!(
                ", \"cache\": {{\"model_misses\": {}, \"model_hits\": {}}}",
                c("serve.cache.model_misses"),
                c("serve.cache.model_hits")
            )
        })
        .unwrap_or_default();
    let json = format!(
        "{{\n \"date\": \"{}\",\n \"command\": \"cargo run --release -p serve --bin loadgen -- \
         --duration-secs {} --conns {}\",\n \"mix\": \"coin nuts 2-chain, eight_schools_centered \
         nuts 2-chain, coin importance 400 (round-robin per connection)\",\n \"levels\": [\n  {}\n \
         ]{}\n}}\n",
        today(),
        args.duration_secs,
        args.conns
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
        levels.join(",\n  "),
        cache_note
    );
    print!("{json}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("loadgen: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
    if reports.iter().any(|r| r.completed == 0) {
        eprintln!("loadgen: a level completed zero requests");
        return ExitCode::FAILURE;
    }
    match &last_stats {
        Some(snapshot) if !snapshot.is_empty() => {}
        _ => {
            eprintln!("loadgen: server returned no usable stats snapshot");
            return ExitCode::FAILURE;
        }
    }
    // Chaos smoke: when GPROB_FAULTS schedules worker panics, the run only
    // passes if the server actually absorbed some — a chaos run where no
    // fault fired (or where panics killed the stats path) is a failure.
    if serve::faults::FaultPlan::from_env().panic_every.is_some() {
        let panics = last_stats
            .as_ref()
            .and_then(|snapshot| snapshot.counter("serve.worker_panics"))
            .unwrap_or(0);
        if panics == 0 {
            eprintln!("loadgen: GPROB_FAULTS schedules panics but serve.worker_panics is 0");
            return ExitCode::FAILURE;
        }
        eprintln!("loadgen: chaos smoke absorbed {panics} injected worker panics");
    }
    ExitCode::SUCCESS
}
