//! Replays mixed-model corpus traffic against a serve instance and reports
//! requests/sec and p50/p99 latency per concurrency level.
//!
//! With no `--addr`, starts an in-process [`serve::Server`] (release-mode
//! numbers then include nothing but this process). Exits nonzero when any
//! level completes zero requests — the CI smoke run's assertion.
//!
//! ```text
//! loadgen [--duration-secs N] [--conns 1,4] [--addr HOST:PORT] [--out FILE]
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use serve::loadgen::{corpus_mix, run_load, LoadSpec};
use serve::server::{ServeConfig, Server};

struct Args {
    duration_secs: u64,
    conns: Vec<usize>,
    addr: Option<SocketAddr>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        duration_secs: 5,
        conns: vec![1, 4],
        addr: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{flag} needs a {what}"));
        match flag.as_str() {
            "--duration-secs" => {
                args.duration_secs = value("count")?.parse().map_err(|_| "bad duration")?;
            }
            "--conns" => {
                args.conns = value("list")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad conns `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--addr" => {
                args.addr = Some(value("address")?.parse().map_err(|_| "bad address")?);
            }
            "--out" => args.out = Some(value("path")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.conns.is_empty() {
        return Err("--conns must name at least one level".to_string());
    }
    Ok(args)
}

/// Days-since-epoch to `YYYY-MM-DD` (proleptic Gregorian; Howard Hinnant's
/// civil-from-days), so the bench capture is dated without a time crate.
fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    // No --addr: serve from this process on an ephemeral port.
    let (addr, server) = match args.addr {
        Some(addr) => (addr, None),
        None => {
            let server = match Server::start(ServeConfig::default()) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("loadgen: failed to start server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (server.addr(), Some(server))
        }
    };
    let requests = corpus_mix();
    let mut reports = Vec::new();
    for &concurrency in &args.conns {
        let report = run_load(
            addr,
            &LoadSpec {
                concurrency,
                duration: Duration::from_secs(args.duration_secs),
                requests: requests.clone(),
            },
        );
        eprintln!(
            "conns {:>2}: {:>6} completed ({} rejected, {} failed), {:.1} req/s, \
             p50 {:.2}ms, p99 {:.2}ms",
            report.concurrency,
            report.completed,
            report.rejected,
            report.failed,
            report.rps,
            report.p50_ms,
            report.p99_ms
        );
        reports.push(report);
    }
    let cache_note = server
        .as_ref()
        .map(|s| {
            let stats = s.cache().stats();
            format!(
                ", \"cache\": {{\"model_misses\": {}, \"model_hits\": {}}}",
                stats.model_misses, stats.model_hits
            )
        })
        .unwrap_or_default();
    let levels: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\n \"date\": \"{}\",\n \"command\": \"cargo run --release -p serve --bin loadgen -- \
         --duration-secs {} --conns {}\",\n \"mix\": \"coin nuts 2-chain, eight_schools_centered \
         nuts 2-chain, coin importance 400 (round-robin per connection)\",\n \"levels\": [\n  {}\n \
         ]{}\n}}\n",
        today(),
        args.duration_secs,
        args.conns
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
        levels.join(",\n  "),
        cache_note
    );
    print!("{json}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("loadgen: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
    if reports.iter().any(|r| r.completed == 0) {
        eprintln!("loadgen: a level completed zero requests");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
