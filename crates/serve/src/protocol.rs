//! The wire protocol: length-prefixed UTF-8 frames over TCP.
//!
//! # Frame format
//!
//! Every message in either direction is one *frame*: a 4-byte big-endian
//! unsigned length followed by that many bytes of UTF-8 text. Frames are
//! self-delimiting, so multi-line payloads (model source, draw matrices)
//! need no in-band escaping; a reader either gets a complete message or an
//! error. Frames larger than [`MAX_FRAME`] bytes are rejected before
//! allocation.
//!
//! Floating-point values are encoded with Rust's shortest-round-trip
//! `Display` and decoded with `str::parse::<f64>`, which reproduces the
//! original bits exactly — the differential tests assert served draws are
//! *bitwise* equal to an in-process `Session::run`.
//!
//! # Request frame
//!
//! A request is one frame of header lines followed by the model source:
//!
//! ```text
//! run <name>
//! scheme <mixed|comprehensive|generative>
//! method <nuts <warmup> <samples> | advi <steps> | importance <particles>>
//! chains <n>
//! seed <n>
//! gq <0|1>
//! data <k>
//! <k data lines>
//! source
//! <model source, verbatim, to end of frame>
//! ```
//!
//! Data lines carry one named value each: `int n 5`, `real x 1.5`,
//! `ints x 1 0 1`, `reals y 0.3 0.7`, and row-major 2-D blocks
//! `rows m <nrows> <ncols> <values...>` / `introws m <nrows> <ncols>
//! <values...>`.
//!
//! Besides `run`, a client may send the single-line frame `stats`, which
//! the server answers immediately (on the connection thread, never
//! queued) with one `stats` response frame carrying the full telemetry
//! registry snapshot in [`obs::Snapshot::to_text`] form. Frames whose
//! first line is neither `run ...` nor `stats` get an `error` frame; the
//! connection stays usable.
//!
//! # Response frames
//!
//! The server streams one `names` frame, then one `chain` frame *per chain
//! as that chain finishes sampling* (for thread-per-chain NUTS this is
//! completion order, while other chains are still running), optionally
//! `gqnames`/`gqchain` frames when the request set `gq 1`, and finally a
//! `done` frame. A request rejected by backpressure gets a single `busy
//! <retry_after_ms>` frame; failures get a single `error <message>` frame.
//!
//! A request cancelled by the server's deadline (or by drain) ends with a
//! `deadline_exceeded <wall_time>` frame instead of `done`: every `chain`
//! frame streamed before it is complete and valid — the draws each chain
//! finished before cancellation, a bitwise prefix of the same-seed
//! uncancelled run — so the client keeps the partial result.

use std::io::{self, Read, Write};

use gprob::value::Value;

/// Upper bound on a frame's payload size (64 MiB).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
/// Propagates I/O errors; rejects oversized or non-UTF-8 frames and EOF
/// inside a frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// The inference method of a request, with its per-method settings.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodSpec {
    /// NUTS with the given warmup/sampling iteration counts.
    Nuts {
        /// Warmup iterations.
        warmup: usize,
        /// Retained sampling iterations.
        samples: usize,
    },
    /// Mean-field ADVI with the given optimization step count.
    Advi {
        /// Optimization steps.
        steps: usize,
    },
    /// Likelihood-weighting importance sampling.
    Importance {
        /// Prior proposals to draw and weight.
        particles: usize,
    },
}

/// One parsed inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Model name (cache display / logging only; the cache key is the
    /// source hash, so two tenants with the same name never collide).
    pub name: String,
    /// Compilation scheme.
    pub scheme: stan2gprob::Scheme,
    /// Method and settings.
    pub method: MethodSpec,
    /// Number of chains.
    pub chains: usize,
    /// Master seed (chain `c` derives `seed + c`).
    pub seed: u64,
    /// Whether to stream generated quantities after the fit.
    pub gq: bool,
    /// Named data bindings.
    pub data: Vec<(String, Value<f64>)>,
    /// Stan source text.
    pub source: String,
}

/// One request frame, dispatched on its first line: `run ...` frames
/// carry a full [`Request`]; the bare line `stats` asks for a telemetry
/// snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestFrame {
    /// An inference request (`run <name>` header).
    Run(Request),
    /// A telemetry snapshot request (the single line `stats`).
    Stats,
}

impl RequestFrame {
    /// Encodes the frame as one payload.
    ///
    /// # Errors
    /// Unrepresentable data values in a `Run` request.
    pub fn encode(&self) -> Result<String, String> {
        match self {
            RequestFrame::Run(req) => req.encode(),
            RequestFrame::Stats => Ok("stats".to_string()),
        }
    }

    /// Parses a request frame payload, dispatching on the first line.
    ///
    /// # Errors
    /// Malformed `run` frames; frames whose first line is neither
    /// `run ...` nor `stats`.
    pub fn parse(payload: &str) -> Result<RequestFrame, String> {
        let first = payload.lines().next().unwrap_or("");
        if first == "stats" {
            return Ok(RequestFrame::Stats);
        }
        if first == "run" || first.starts_with("run ") {
            return Request::parse(payload).map(RequestFrame::Run);
        }
        Err(format!("unknown request frame `{first}`"))
    }
}

fn scheme_name(scheme: stan2gprob::Scheme) -> &'static str {
    match scheme {
        stan2gprob::Scheme::Comprehensive => "comprehensive",
        stan2gprob::Scheme::Mixed => "mixed",
        stan2gprob::Scheme::Generative => "generative",
    }
}

fn parse_scheme(s: &str) -> Result<stan2gprob::Scheme, String> {
    match s {
        "comprehensive" => Ok(stan2gprob::Scheme::Comprehensive),
        "mixed" => Ok(stan2gprob::Scheme::Mixed),
        "generative" => Ok(stan2gprob::Scheme::Generative),
        other => Err(format!("unknown scheme `{other}`")),
    }
}

fn encode_f64s(out: &mut String, xs: &[f64]) {
    for x in xs {
        out.push(' ');
        out.push_str(&x.to_string());
    }
}

fn parse_usize(s: Option<&str>, what: &str) -> Result<usize, String> {
    s.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("bad {what}"))
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("bad real `{s}`"))
}

/// Encodes one named data value as a data line.
///
/// # Errors
/// Values deeper than 2-D (or ragged/unit) are not representable.
pub fn encode_data_line(name: &str, value: &Value<f64>) -> Result<String, String> {
    match value {
        Value::Int(k) => Ok(format!("int {name} {k}")),
        Value::Real(x) => Ok(format!("real {name} {x}")),
        Value::IntArray(ks) => {
            let mut line = format!("ints {name}");
            for k in ks {
                line.push(' ');
                line.push_str(&k.to_string());
            }
            Ok(line)
        }
        Value::Vector(xs) => {
            let mut line = format!("reals {name}");
            encode_f64s(&mut line, xs);
            Ok(line)
        }
        Value::Array(rows) => {
            let ncols = |row: &Value<f64>| match row {
                Value::Vector(xs) => Some(xs.len()),
                Value::IntArray(ks) => Some(ks.len()),
                _ => None,
            };
            let Some(first) = rows.first() else {
                return Ok(format!("rows {name} 0 0"));
            };
            let cols = ncols(first)
                .ok_or_else(|| format!("data `{name}`: only 2-D arrays are representable"))?;
            let int_rows = matches!(first, Value::IntArray(_));
            let mut line = format!(
                "{} {name} {} {cols}",
                if int_rows { "introws" } else { "rows" },
                rows.len()
            );
            for row in rows {
                if ncols(row) != Some(cols) || matches!(row, Value::IntArray(_)) != int_rows {
                    return Err(format!("data `{name}`: ragged or mixed rows"));
                }
                match row {
                    Value::Vector(xs) => encode_f64s(&mut line, xs),
                    Value::IntArray(ks) => {
                        for k in ks {
                            line.push(' ');
                            line.push_str(&k.to_string());
                        }
                    }
                    _ => unreachable!("checked above"),
                }
            }
            Ok(line)
        }
        Value::Unit => Err(format!("data `{name}`: unit is not representable")),
    }
}

/// Parses one data line back into a named value.
///
/// # Errors
/// Malformed lines.
pub fn parse_data_line(line: &str) -> Result<(String, Value<f64>), String> {
    let mut parts = line.split_ascii_whitespace();
    let tag = parts.next().ok_or("empty data line")?;
    let name = parts.next().ok_or("data line missing name")?.to_string();
    let value = match tag {
        "int" => Value::Int(
            parts
                .next()
                .ok_or("int line missing value")?
                .parse()
                .map_err(|_| "bad int")?,
        ),
        "real" => Value::Real(parse_f64(parts.next().ok_or("real line missing value")?)?),
        "ints" => Value::IntArray(
            parts
                .map(|s| s.parse().map_err(|_| format!("bad int `{s}`")))
                .collect::<Result<_, _>>()?,
        ),
        "reals" => Value::Vector(parts.map(parse_f64).collect::<Result<_, _>>()?),
        "rows" | "introws" => {
            let nrows = parse_usize(parts.next(), "row count")?;
            let ncols = parse_usize(parts.next(), "column count")?;
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                if tag == "rows" {
                    let mut xs = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        xs.push(parse_f64(parts.next().ok_or("short rows line")?)?);
                    }
                    rows.push(Value::Vector(xs));
                } else {
                    let mut ks = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        ks.push(
                            parts
                                .next()
                                .ok_or("short introws line")?
                                .parse()
                                .map_err(|_| "bad int")?,
                        );
                    }
                    rows.push(Value::IntArray(ks));
                }
            }
            Value::Array(rows)
        }
        other => return Err(format!("unknown data tag `{other}`")),
    };
    Ok((name, value))
}

impl Request {
    /// Encodes the request as one frame payload.
    ///
    /// # Errors
    /// Unrepresentable data values.
    pub fn encode(&self) -> Result<String, String> {
        let mut out = format!("run {}\n", self.name);
        out.push_str(&format!("scheme {}\n", scheme_name(self.scheme)));
        match self.method {
            MethodSpec::Nuts { warmup, samples } => {
                out.push_str(&format!("method nuts {warmup} {samples}\n"));
            }
            MethodSpec::Advi { steps } => out.push_str(&format!("method advi {steps}\n")),
            MethodSpec::Importance { particles } => {
                out.push_str(&format!("method importance {particles}\n"));
            }
        }
        out.push_str(&format!("chains {}\n", self.chains));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("gq {}\n", u8::from(self.gq)));
        out.push_str(&format!("data {}\n", self.data.len()));
        for (name, value) in &self.data {
            out.push_str(&encode_data_line(name, value)?);
            out.push('\n');
        }
        out.push_str("source\n");
        out.push_str(&self.source);
        Ok(out)
    }

    /// Parses a request frame payload.
    ///
    /// # Errors
    /// Malformed frames.
    pub fn parse(payload: &str) -> Result<Request, String> {
        let mut lines = payload.lines();
        let mut field = |tag: &str| -> Result<String, String> {
            let line = lines
                .next()
                .ok_or_else(|| format!("missing `{tag}` line"))?;
            line.strip_prefix(tag)
                .and_then(|rest| {
                    rest.strip_prefix(' ')
                        .or(Some(rest).filter(|r| r.is_empty()))
                })
                .map(str::to_string)
                .ok_or_else(|| format!("expected `{tag} ...`, got `{line}`"))
        };
        let name = field("run")?;
        let scheme = parse_scheme(&field("scheme")?)?;
        let method_line = field("method")?;
        let mut m = method_line.split_ascii_whitespace();
        let method = match m.next() {
            Some("nuts") => MethodSpec::Nuts {
                warmup: parse_usize(m.next(), "warmup")?,
                samples: parse_usize(m.next(), "samples")?,
            },
            Some("advi") => MethodSpec::Advi {
                steps: parse_usize(m.next(), "steps")?,
            },
            Some("importance") => MethodSpec::Importance {
                particles: parse_usize(m.next(), "particles")?,
            },
            other => return Err(format!("unknown method `{}`", other.unwrap_or(""))),
        };
        let chains = field("chains")?.parse().map_err(|_| "bad chains")?;
        let seed = field("seed")?.parse().map_err(|_| "bad seed")?;
        let gq = field("gq")? == "1";
        let n_data: usize = field("data")?.parse().map_err(|_| "bad data count")?;
        let mut data = Vec::with_capacity(n_data);
        for _ in 0..n_data {
            data.push(parse_data_line(lines.next().ok_or("missing data line")?)?);
        }
        match lines.next() {
            Some("source") => {}
            other => return Err(format!("expected `source`, got `{other:?}`")),
        }
        let source = lines.collect::<Vec<_>>().join("\n");
        Ok(Request {
            name,
            scheme,
            method,
            chains,
            seed,
            gq,
            data,
            source,
        })
    }
}

/// One streamed response frame, as the client sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Flat component names, sent once before any chain.
    Names {
        /// Component names (`mu`, `theta[1]`, ...).
        names: Vec<String>,
    },
    /// One finished chain's constrained draws and sampler accounting.
    Chain {
        /// Chain index.
        index: usize,
        /// Divergent transitions after warmup.
        divergences: usize,
        /// Wall-clock seconds the chain ran for.
        wall_time: f64,
        /// Gradient evaluations the chain performed.
        n_grad_evals: usize,
        /// Constrained draws, one row per draw.
        draws: Vec<Vec<f64>>,
    },
    /// Generated-quantities column names (when the request set `gq 1`).
    GqNames {
        /// GQ column names.
        names: Vec<String>,
    },
    /// One chain's generated-quantities rows.
    GqChain {
        /// Chain index.
        index: usize,
        /// GQ rows, parallel to the chain's draws.
        rows: Vec<Vec<f64>>,
    },
    /// Terminal frame of a successful request.
    Done {
        /// Total request wall-clock seconds on the server.
        wall_time: f64,
    },
    /// Terminal frame of a request cancelled by the server's deadline or
    /// drain. Chain frames streamed before this one carry the partial
    /// result (each a bitwise prefix of the uncancelled run).
    DeadlineExceeded {
        /// Total request wall-clock seconds on the server.
        wall_time: f64,
    },
    /// The server's telemetry registry snapshot, answering a `stats`
    /// request frame.
    Stats {
        /// Snapshot in [`obs::Snapshot::to_text`] form (possibly empty).
        text: String,
    },
    /// Backpressure rejection: the worker queue is full; retry after the
    /// given delay.
    Busy {
        /// Suggested client retry delay in milliseconds.
        retry_after_ms: u64,
    },
    /// Terminal frame of a failed request.
    Error {
        /// Error message.
        message: String,
    },
}

fn encode_rows(header: String, rows: &[Vec<f64>]) -> String {
    let mut out = header;
    for row in rows {
        out.push('\n');
        let mut first = true;
        for x in row {
            if !first {
                out.push(' ');
            }
            first = false;
            out.push_str(&x.to_string());
        }
    }
    out
}

fn parse_rows<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Vec<Vec<f64>>, String> {
    lines
        .map(|line| {
            line.split_ascii_whitespace()
                .map(parse_f64)
                .collect::<Result<Vec<f64>, _>>()
        })
        .collect()
}

impl Response {
    /// Encodes the response as one frame payload.
    pub fn encode(&self) -> String {
        match self {
            Response::Names { names } => format!("names {}", names.join(" ")),
            Response::Chain {
                index,
                divergences,
                wall_time,
                n_grad_evals,
                draws,
            } => encode_rows(
                format!("chain {index} {divergences} {wall_time} {n_grad_evals}"),
                draws,
            ),
            Response::GqNames { names } => format!("gqnames {}", names.join(" ")),
            Response::GqChain { index, rows } => encode_rows(format!("gqchain {index}"), rows),
            Response::Done { wall_time } => format!("done {wall_time}"),
            Response::DeadlineExceeded { wall_time } => format!("deadline_exceeded {wall_time}"),
            Response::Stats { text } => {
                let mut out = "stats".to_string();
                if !text.is_empty() {
                    out.push('\n');
                    out.push_str(text);
                }
                out
            }
            Response::Busy { retry_after_ms } => format!("busy {retry_after_ms}"),
            Response::Error { message } => format!("error {message}"),
        }
    }

    /// Parses a response frame payload.
    ///
    /// # Errors
    /// Malformed frames.
    pub fn parse(payload: &str) -> Result<Response, String> {
        let mut lines = payload.lines();
        let head = lines.next().ok_or("empty response frame")?;
        let (tag, rest) = head.split_once(' ').unwrap_or((head, ""));
        match tag {
            "names" => Ok(Response::Names {
                names: rest.split_ascii_whitespace().map(str::to_string).collect(),
            }),
            "chain" => {
                let mut h = rest.split_ascii_whitespace();
                Ok(Response::Chain {
                    index: parse_usize(h.next(), "chain index")?,
                    divergences: parse_usize(h.next(), "divergences")?,
                    wall_time: parse_f64(h.next().ok_or("missing wall time")?)?,
                    n_grad_evals: parse_usize(h.next(), "grad evals")?,
                    draws: parse_rows(lines)?,
                })
            }
            "gqnames" => Ok(Response::GqNames {
                names: rest.split_ascii_whitespace().map(str::to_string).collect(),
            }),
            "gqchain" => {
                let mut h = rest.split_ascii_whitespace();
                Ok(Response::GqChain {
                    index: parse_usize(h.next(), "chain index")?,
                    rows: parse_rows(lines)?,
                })
            }
            "done" => Ok(Response::Done {
                wall_time: parse_f64(rest)?,
            }),
            "deadline_exceeded" => Ok(Response::DeadlineExceeded {
                wall_time: parse_f64(rest)?,
            }),
            "stats" => Ok(Response::Stats {
                text: payload
                    .split_once('\n')
                    .map(|(_, body)| body.to_string())
                    .unwrap_or_default(),
            }),
            "busy" => Ok(Response::Busy {
                retry_after_ms: rest.parse().map_err(|_| "bad retry_after_ms")?,
            }),
            "error" => Ok(Response::Error {
                message: if lines.next().is_some() {
                    // Multi-line messages keep everything after the tag.
                    payload["error ".len().min(payload.len())..].to_string()
                } else {
                    rest.to_string()
                },
            }),
            other => Err(format!("unknown response tag `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello\nworld").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello\nworld"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn requests_round_trip_with_mixed_data() {
        let req = Request {
            name: "coin".to_string(),
            scheme: stan2gprob::Scheme::Mixed,
            method: MethodSpec::Nuts {
                warmup: 100,
                samples: 200,
            },
            chains: 4,
            seed: 7,
            gq: true,
            data: vec![
                ("N".to_string(), Value::Int(3)),
                ("x".to_string(), Value::IntArray(vec![1, 0, 1])),
                ("y".to_string(), Value::Vector(vec![0.25, -1.5e-8])),
                (
                    "m".to_string(),
                    Value::Array(vec![
                        Value::Vector(vec![1.0, 2.0]),
                        Value::Vector(vec![3.0, 4.0]),
                    ]),
                ),
            ],
            source: "parameters { real z; }\nmodel { z ~ normal(0, 1); }".to_string(),
        };
        let parsed = Request::parse(&req.encode().unwrap()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn responses_round_trip_bitwise() {
        // Adversarial f64s: shortest-Display round-trips must preserve bits.
        let draws = vec![
            vec![0.1 + 0.2, -0.0, 1.0 / 3.0],
            vec![f64::MIN_POSITIVE, f64::MAX, 5e-324],
        ];
        let resp = Response::Chain {
            index: 2,
            divergences: 1,
            wall_time: 0.125,
            n_grad_evals: 4096,
            draws: draws.clone(),
        };
        let parsed = Response::parse(&resp.encode()).unwrap();
        let Response::Chain { draws: back, .. } = parsed else {
            panic!("wrong variant");
        };
        for (a, b) in draws.iter().flatten().zip(back.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for resp in [
            Response::Names {
                names: vec!["mu".to_string(), "theta[1]".to_string()],
            },
            Response::Done { wall_time: 1.5 },
            Response::DeadlineExceeded { wall_time: 0.25 },
            Response::Busy { retry_after_ms: 40 },
            Response::Error {
                message: "no such model".to_string(),
            },
            Response::Stats {
                text: String::new(),
            },
            Response::Stats {
                text: "counter serve.requests.nuts 3\ngauge serve.pool.depth 1\n\
                       hist serve.run_ns.nuts count 3 sum 96 max 64 buckets 6:3"
                    .to_string(),
            },
        ] {
            assert_eq!(Response::parse(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn request_frames_dispatch_on_first_line() {
        assert_eq!(RequestFrame::parse("stats").unwrap(), RequestFrame::Stats);
        assert_eq!(RequestFrame::Stats.encode().unwrap(), "stats".to_string());
        let req = Request {
            name: "coin".to_string(),
            scheme: stan2gprob::Scheme::Mixed,
            method: MethodSpec::Advi { steps: 50 },
            chains: 1,
            seed: 1,
            gq: false,
            data: Vec::new(),
            source: "parameters { real z; }\nmodel { z ~ normal(0, 1); }".to_string(),
        };
        let frame = RequestFrame::Run(req.clone());
        assert_eq!(
            RequestFrame::parse(&frame.encode().unwrap()).unwrap(),
            frame
        );
        // `statsx` and other unknown first lines are rejected, with the
        // offending line echoed for the error frame.
        let err = RequestFrame::parse("statsx\nmore").unwrap_err();
        assert!(err.contains("unknown request frame `statsx`"), "{err}");
        let err = RequestFrame::parse("").unwrap_err();
        assert!(err.contains("unknown request frame"), "{err}");
    }
}
