//! The load generator: replays mixed-model corpus traffic against a serve
//! instance and measures requests/sec and latency percentiles.
//!
//! Traffic is a round-robin mix over a request list (different models,
//! schemes, and methods), each connection cycling the list from its own
//! offset so every concurrency level exercises every model. `busy`
//! rejections are absorbed by [`Client::run_with_retry`] — capped
//! decorrelated-jitter backoff floored at the server's `retry_after_ms`
//! hint, deterministic per connection — and surface in the report as a
//! retry count; a request that exhausts its attempts counts as rejected.
//! Backpressure is the system working as designed, not a failure.
//!
//! Besides client-side latency, the generator polls the server's `stats`
//! frame before and after each level; the [`obs::Snapshot::delta`]
//! between the two polls is the server-side activity attributable to that
//! level (cache hits/misses, per-method queue/run latency percentiles),
//! rendered by [`server_breakdown_json`] into `BENCH_serve.json`. Going
//! over the wire — rather than reading in-process cache handles — means
//! the numbers are honest for remote `--addr` targets too.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crate::client::{Client, ClientError, RetryPolicy};
use crate::protocol::{MethodSpec, Request};

/// One load run's parameters.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent connections (each runs requests back to back).
    pub concurrency: usize,
    /// How long to keep issuing requests.
    pub duration: Duration,
    /// The traffic mix, cycled round-robin per connection.
    pub requests: Vec<Request>,
}

/// One load run's measurements.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent connections.
    pub concurrency: usize,
    /// Measured wall-clock seconds (>= the requested duration).
    pub duration_secs: f64,
    /// Requests that completed with a full response stream.
    pub completed: usize,
    /// Requests bounced by backpressure after exhausting their retries.
    pub rejected: usize,
    /// Requests that failed (transport or server error).
    pub failed: usize,
    /// `busy` rejections absorbed by retry backoff across all requests.
    pub retries: usize,
    /// Requests answered with a partial result (`deadline_exceeded`).
    pub deadline_exceeded: usize,
    /// Completed requests per second.
    pub rps: f64,
    /// Median completed-request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile completed-request latency, milliseconds.
    pub p99_ms: f64,
}

impl LoadReport {
    /// Renders the report as a JSON object (no external serializer).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"concurrency\": {}, \"duration_secs\": {:.3}, \"completed\": {}, \
             \"rejected\": {}, \"failed\": {}, \"retries\": {}, \"deadline_exceeded\": {}, \
             \"rps\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
            self.concurrency,
            self.duration_secs,
            self.completed,
            self.rejected,
            self.failed,
            self.retries,
            self.deadline_exceeded,
            self.rps,
            self.p50_ms,
            self.p99_ms
        )
    }
}

/// Renders the server-side activity between two `stats` polls (an
/// [`obs::Snapshot::delta`]) as a JSON object: cache counters, pool
/// rejections, and per-method request/queue/run latency percentiles from
/// the serve histograms (nanosecond histograms rendered as milliseconds).
/// Methods with zero requests in the window are omitted; the percentile
/// keys are absent when the server ran with timing disabled
/// (`GPROB_OBS=0`).
pub fn server_breakdown_json(delta: &obs::Snapshot) -> String {
    let c = |name: &str| delta.counter(name).unwrap_or(0);
    let mut out = format!(
        "{{\"cache\": {{\"program_hits\": {}, \"program_misses\": {}, \"model_hits\": {}, \
         \"model_misses\": {}, \"evictions\": {}}}, \"pool_rejected\": {}, \"methods\": {{",
        c("serve.cache.program_hits"),
        c("serve.cache.program_misses"),
        c("serve.cache.model_hits"),
        c("serve.cache.model_misses"),
        c("serve.cache.evictions"),
        c("serve.pool.rejected"),
    );
    let mut first = true;
    for method in ["nuts", "advi", "importance"] {
        let requests = c(&format!("serve.requests.{method}"));
        if requests == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{method}\": {{\"requests\": {requests}"));
        for key in ["request", "queue", "run"] {
            if let Some(h) = delta.histogram(&format!("serve.{key}_ns.{method}")) {
                if h.count > 0 {
                    out.push_str(&format!(
                        ", \"{key}_p50_ms\": {:.3}, \"{key}_p99_ms\": {:.3}",
                        h.p50() / 1e6,
                        h.p99() / 1e6
                    ));
                }
            }
        }
        out.push('}');
    }
    out.push_str("}}");
    out
}

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs one load level against a server, returning the aggregate report.
/// Requests still in flight at the deadline run to completion (and count),
/// so the measured duration can slightly exceed the requested one.
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> LoadReport {
    assert!(!spec.requests.is_empty(), "empty traffic mix");
    let start = Instant::now();
    let results: Vec<ConnTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..spec.concurrency.max(1))
            .map(|conn_id| {
                let requests = &spec.requests;
                let duration = spec.duration;
                s.spawn(move || {
                    let mut tally = ConnTally::default();
                    // Deterministic per-connection jitter stream, so a
                    // load run under faults replays exactly.
                    let policy = RetryPolicy {
                        seed: conn_id as u64 + 1,
                        ..RetryPolicy::default()
                    };
                    let Ok(mut client) = Client::connect(addr) else {
                        tally.failed = 1;
                        return tally;
                    };
                    let mut next = conn_id;
                    let conn_start = Instant::now();
                    while conn_start.elapsed() < duration {
                        let request = &requests[next % requests.len()];
                        next += 1;
                        let req_start = Instant::now();
                        match client.run_with_retry(request, &policy) {
                            Ok(outcome) => {
                                tally.completed += 1;
                                tally.retries += outcome.retries;
                                if outcome.fit.deadline_exceeded {
                                    tally.deadline_exceeded += 1;
                                }
                                tally
                                    .latencies_ms
                                    .push(req_start.elapsed().as_secs_f64() * 1e3);
                            }
                            Err(ClientError::Busy { .. }) => {
                                // Every attempt bounced; the sleeps already
                                // happened inside run_with_retry.
                                tally.rejected += 1;
                                tally.retries += policy.max_attempts.saturating_sub(1);
                            }
                            Err(_) => {
                                tally.failed += 1;
                                // The connection may be wedged; reconnect.
                                match Client::connect(addr) {
                                    Ok(fresh) => client = fresh,
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    });
    let duration_secs = start.elapsed().as_secs_f64();
    let mut total = ConnTally::default();
    for tally in results {
        total.completed += tally.completed;
        total.rejected += tally.rejected;
        total.failed += tally.failed;
        total.retries += tally.retries;
        total.deadline_exceeded += tally.deadline_exceeded;
        total.latencies_ms.extend(tally.latencies_ms);
    }
    total
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    LoadReport {
        concurrency: spec.concurrency.max(1),
        duration_secs,
        completed: total.completed,
        rejected: total.rejected,
        failed: total.failed,
        retries: total.retries,
        deadline_exceeded: total.deadline_exceeded,
        rps: total.completed as f64 / duration_secs,
        p50_ms: percentile_ms(&total.latencies_ms, 0.50),
        p99_ms: percentile_ms(&total.latencies_ms, 0.99),
    }
}

/// One connection thread's counts, merged into the [`LoadReport`].
#[derive(Default)]
struct ConnTally {
    completed: usize,
    rejected: usize,
    failed: usize,
    retries: usize,
    deadline_exceeded: usize,
    latencies_ms: Vec<f64>,
}

/// The standard mixed-model traffic mix over the bundled corpus: two
/// distinct models and two methods (multi-chain NUTS and importance
/// sampling), sized so single-digit milliseconds of sampling dominate
/// protocol overhead without making a 1-second smoke run trivial.
pub fn corpus_mix() -> Vec<Request> {
    let coin = model_zoo::find("coin").expect("corpus has coin");
    let schools = model_zoo::find("eight_schools_centered").expect("corpus has eight_schools");
    vec![
        Request {
            name: coin.name.to_string(),
            scheme: stan2gprob::Scheme::Mixed,
            method: MethodSpec::Nuts {
                warmup: 40,
                samples: 40,
            },
            chains: 2,
            seed: 7,
            gq: false,
            data: coin.dataset(11),
            source: coin.source.to_string(),
        },
        Request {
            name: schools.name.to_string(),
            scheme: stan2gprob::Scheme::Mixed,
            method: MethodSpec::Nuts {
                warmup: 40,
                samples: 40,
            },
            chains: 2,
            seed: 3,
            gq: false,
            data: schools.dataset(5),
            source: schools.source.to_string(),
        },
        Request {
            name: coin.name.to_string(),
            scheme: stan2gprob::Scheme::Generative,
            method: MethodSpec::Importance { particles: 400 },
            chains: 1,
            seed: 13,
            gq: false,
            data: coin.dataset(11),
            source: coin.source.to_string(),
        },
    ]
}
