//! A blocking client for the serve protocol, used by the load generator,
//! the differential tests, and the quickstart example.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, Request, RequestFrame, Response};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// A frame that does not parse, or frames in an impossible order.
    Protocol(String),
    /// The server reported a request failure.
    Server(String),
    /// The server rejected the request under backpressure.
    Busy {
        /// Suggested retry delay in milliseconds.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "busy, retry after {retry_after_ms}ms")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One served chain, as streamed by the server.
#[derive(Debug, Clone)]
pub struct ServedChain {
    /// Chain index.
    pub index: usize,
    /// Divergent transitions after warmup.
    pub divergences: usize,
    /// Wall-clock seconds the chain ran for on the server.
    pub wall_time: f64,
    /// Gradient evaluations the chain performed.
    pub n_grad_evals: usize,
    /// Constrained draws, one row per draw.
    pub draws: Vec<Vec<f64>>,
}

/// A complete served fit, assembled from the response stream. Chains are
/// sorted by index regardless of the completion order they streamed in.
#[derive(Debug, Clone, Default)]
pub struct ServedFit {
    /// Flat component names.
    pub names: Vec<String>,
    /// Per-chain results, sorted by chain index.
    pub chains: Vec<ServedChain>,
    /// Generated-quantities column names (requests with `gq: true`).
    pub gq_names: Option<Vec<String>>,
    /// Per-chain generated-quantities rows, sorted by chain index.
    pub gq_chains: Vec<(usize, Vec<Vec<f64>>)>,
    /// Total server-side request wall-clock seconds.
    pub wall_time: f64,
}

/// A blocking connection to a serve instance. One request runs at a time
/// per connection; open several connections for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connects with a timeout.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and collects the full streamed response.
    ///
    /// # Errors
    /// Transport, protocol, `busy`, and server-reported failures.
    pub fn request(&mut self, request: &Request) -> Result<ServedFit, ClientError> {
        self.request_streaming(request, &mut |_| {})
    }

    /// [`Client::request`], invoking `on_frame` with every frame as it
    /// arrives (chains stream in completion order; the returned fit is
    /// still sorted by index).
    ///
    /// # Errors
    /// Same as [`Client::request`].
    pub fn request_streaming(
        &mut self,
        request: &Request,
        on_frame: &mut dyn FnMut(&Response),
    ) -> Result<ServedFit, ClientError> {
        let payload = request.encode().map_err(ClientError::Protocol)?;
        write_frame(&mut self.stream, &payload)?;
        let mut fit = ServedFit::default();
        loop {
            let Some(frame) = read_frame(&mut self.stream)? else {
                return Err(ClientError::Protocol(
                    "connection closed mid-response".to_string(),
                ));
            };
            let response = Response::parse(&frame).map_err(ClientError::Protocol)?;
            on_frame(&response);
            match response {
                Response::Names { names } => fit.names = names,
                Response::Chain {
                    index,
                    divergences,
                    wall_time,
                    n_grad_evals,
                    draws,
                } => fit.chains.push(ServedChain {
                    index,
                    divergences,
                    wall_time,
                    n_grad_evals,
                    draws,
                }),
                Response::GqNames { names } => fit.gq_names = Some(names),
                Response::GqChain { index, rows } => fit.gq_chains.push((index, rows)),
                Response::Done { wall_time } => {
                    fit.wall_time = wall_time;
                    fit.chains.sort_by_key(|c| c.index);
                    fit.gq_chains.sort_by_key(|&(index, _)| index);
                    return Ok(fit);
                }
                Response::Busy { retry_after_ms } => {
                    return Err(ClientError::Busy { retry_after_ms })
                }
                Response::Error { message } => return Err(ClientError::Server(message)),
                Response::Stats { .. } => {
                    return Err(ClientError::Protocol(
                        "unexpected stats frame during a run".to_string(),
                    ))
                }
            }
        }
    }

    /// Requests the server's telemetry snapshot (the `stats` frame) and
    /// parses it back into an [`obs::Snapshot`]. Answered on the server's
    /// connection thread, so it works even while the worker pool is full.
    ///
    /// # Errors
    /// Transport failures, malformed snapshot text, or a non-`stats`
    /// response.
    pub fn stats(&mut self) -> Result<obs::Snapshot, ClientError> {
        let payload = RequestFrame::Stats
            .encode()
            .map_err(ClientError::Protocol)?;
        write_frame(&mut self.stream, &payload)?;
        let Some(frame) = read_frame(&mut self.stream)? else {
            return Err(ClientError::Protocol(
                "connection closed before stats response".to_string(),
            ));
        };
        match Response::parse(&frame).map_err(ClientError::Protocol)? {
            Response::Stats { text } => obs::Snapshot::parse(&text).map_err(ClientError::Protocol),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected stats frame, got `{}`",
                other.encode().lines().next().unwrap_or("")
            ))),
        }
    }
}
