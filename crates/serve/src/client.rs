//! A blocking client for the serve protocol, used by the load generator,
//! the differential tests, and the quickstart example.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, Request, RequestFrame, Response};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// A frame that does not parse, or frames in an impossible order.
    Protocol(String),
    /// The server reported a request failure.
    Server(String),
    /// The server rejected the request under backpressure.
    Busy {
        /// Suggested retry delay in milliseconds.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "busy, retry after {retry_after_ms}ms")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One served chain, as streamed by the server.
#[derive(Debug, Clone)]
pub struct ServedChain {
    /// Chain index.
    pub index: usize,
    /// Divergent transitions after warmup.
    pub divergences: usize,
    /// Wall-clock seconds the chain ran for on the server.
    pub wall_time: f64,
    /// Gradient evaluations the chain performed.
    pub n_grad_evals: usize,
    /// Constrained draws, one row per draw.
    pub draws: Vec<Vec<f64>>,
}

/// A complete served fit, assembled from the response stream. Chains are
/// sorted by index regardless of the completion order they streamed in.
#[derive(Debug, Clone, Default)]
pub struct ServedFit {
    /// Flat component names.
    pub names: Vec<String>,
    /// Per-chain results, sorted by chain index.
    pub chains: Vec<ServedChain>,
    /// Generated-quantities column names (requests with `gq: true`).
    pub gq_names: Option<Vec<String>>,
    /// Per-chain generated-quantities rows, sorted by chain index.
    pub gq_chains: Vec<(usize, Vec<Vec<f64>>)>,
    /// Total server-side request wall-clock seconds.
    pub wall_time: f64,
    /// `true` when the server ended the stream with `deadline_exceeded`:
    /// the request hit its deadline (or server drain) and `chains` holds
    /// the partial result — every chain present is complete and a bitwise
    /// prefix of the uncancelled same-seed run.
    pub deadline_exceeded: bool,
}

/// Retry knobs for [`Client::run_with_retry`]: capped exponential backoff
/// with decorrelated jitter (each sleep drawn uniformly from
/// `[base, 3 × previous]`, clamped to `cap`), floored at the server's
/// `retry_after_ms` hint when a `busy` rejection carries one.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` never retries).
    pub max_attempts: usize,
    /// Minimum sleep between attempts, and the first sleep's lower bound.
    pub base: Duration,
    /// Upper bound on any single sleep.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream (replayable load runs).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            seed: 1,
        }
    }
}

/// What [`Client::run_with_retry`] did to get its fit.
#[derive(Debug, Clone)]
pub struct RetriedFit {
    /// The served fit (check [`ServedFit::deadline_exceeded`] — a partial
    /// result is returned, not retried).
    pub fit: ServedFit,
    /// `busy` rejections absorbed before the request was accepted.
    pub retries: usize,
}

/// splitmix64: the jitter's deterministic pseudo-random stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A blocking connection to a serve instance. One request runs at a time
/// per connection; open several connections for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connects with a timeout.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and collects the full streamed response.
    ///
    /// # Errors
    /// Transport, protocol, `busy`, and server-reported failures.
    pub fn request(&mut self, request: &Request) -> Result<ServedFit, ClientError> {
        self.request_streaming(request, &mut |_| {})
    }

    /// [`Client::request`], invoking `on_frame` with every frame as it
    /// arrives (chains stream in completion order; the returned fit is
    /// still sorted by index).
    ///
    /// # Errors
    /// Same as [`Client::request`].
    pub fn request_streaming(
        &mut self,
        request: &Request,
        on_frame: &mut dyn FnMut(&Response),
    ) -> Result<ServedFit, ClientError> {
        let payload = request.encode().map_err(ClientError::Protocol)?;
        write_frame(&mut self.stream, &payload)?;
        let mut fit = ServedFit::default();
        loop {
            let Some(frame) = read_frame(&mut self.stream)? else {
                return Err(ClientError::Protocol(
                    "connection closed mid-response".to_string(),
                ));
            };
            let response = Response::parse(&frame).map_err(ClientError::Protocol)?;
            on_frame(&response);
            match response {
                Response::Names { names } => fit.names = names,
                Response::Chain {
                    index,
                    divergences,
                    wall_time,
                    n_grad_evals,
                    draws,
                } => fit.chains.push(ServedChain {
                    index,
                    divergences,
                    wall_time,
                    n_grad_evals,
                    draws,
                }),
                Response::GqNames { names } => fit.gq_names = Some(names),
                Response::GqChain { index, rows } => fit.gq_chains.push((index, rows)),
                Response::Done { wall_time } => {
                    fit.wall_time = wall_time;
                    fit.chains.sort_by_key(|c| c.index);
                    fit.gq_chains.sort_by_key(|&(index, _)| index);
                    return Ok(fit);
                }
                Response::DeadlineExceeded { wall_time } => {
                    fit.wall_time = wall_time;
                    fit.deadline_exceeded = true;
                    fit.chains.sort_by_key(|c| c.index);
                    fit.gq_chains.sort_by_key(|&(index, _)| index);
                    return Ok(fit);
                }
                Response::Busy { retry_after_ms } => {
                    return Err(ClientError::Busy { retry_after_ms })
                }
                Response::Error { message } => return Err(ClientError::Server(message)),
                Response::Stats { .. } => {
                    return Err(ClientError::Protocol(
                        "unexpected stats frame during a run".to_string(),
                    ))
                }
            }
        }
    }

    /// [`Client::request`] with retries: `busy` rejections back off with
    /// capped decorrelated jitter (see [`RetryPolicy`]) — never sleeping
    /// less than the server's `retry_after_ms` hint — and resubmit, up to
    /// `policy.max_attempts` total attempts. Everything else resolves
    /// immediately: errors propagate, and a `deadline_exceeded` response
    /// returns the partial fit (retrying a request that just burned its
    /// deadline would burn another; the caller decides).
    ///
    /// # Errors
    /// Transport, protocol, and server-reported failures; [`ClientError::Busy`]
    /// when every attempt was rejected.
    pub fn run_with_retry(
        &mut self,
        request: &Request,
        policy: &RetryPolicy,
    ) -> Result<RetriedFit, ClientError> {
        let mut jitter = policy.seed;
        let mut prev_sleep = policy.base.max(Duration::from_millis(1));
        let mut retries = 0;
        loop {
            match self.request(request) {
                Ok(fit) => return Ok(RetriedFit { fit, retries }),
                Err(ClientError::Busy { retry_after_ms }) => {
                    if retries + 1 >= policy.max_attempts.max(1) {
                        return Err(ClientError::Busy { retry_after_ms });
                    }
                    retries += 1;
                    // Decorrelated jitter: uniform in [base, 3 × previous],
                    // clamped to cap, floored at the server's hint.
                    let base_ms = policy.base.as_millis() as u64;
                    let span = (prev_sleep.as_millis() as u64 * 3).max(base_ms + 1) - base_ms;
                    let sleep_ms = (base_ms + splitmix64(&mut jitter) % span)
                        .min(policy.cap.as_millis() as u64)
                        .max(retry_after_ms);
                    prev_sleep = Duration::from_millis(sleep_ms);
                    std::thread::sleep(prev_sleep);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Requests the server's telemetry snapshot (the `stats` frame) and
    /// parses it back into an [`obs::Snapshot`]. Answered on the server's
    /// connection thread, so it works even while the worker pool is full.
    ///
    /// # Errors
    /// Transport failures, malformed snapshot text, or a non-`stats`
    /// response.
    pub fn stats(&mut self) -> Result<obs::Snapshot, ClientError> {
        let payload = RequestFrame::Stats
            .encode()
            .map_err(ClientError::Protocol)?;
        write_frame(&mut self.stream, &payload)?;
        let Some(frame) = read_frame(&mut self.stream)? else {
            return Err(ClientError::Protocol(
                "connection closed before stats response".to_string(),
            ));
        };
        match Response::parse(&frame).map_err(ClientError::Protocol)? {
            Response::Stats { text } => obs::Snapshot::parse(&text).map_err(ClientError::Protocol),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected stats frame, got `{}`",
                other.encode().lines().next().unwrap_or("")
            ))),
        }
    }
}
