//! The TCP inference server: accept loop, per-connection framing, and the
//! request execution path over the compiled-model cache and worker pool.
//!
//! One connection carries one request at a time (pipelining concurrency =
//! open connections). The connection thread parses a request frame and
//! submits the run as one job to the [`WorkerPool`]; the job binds a
//! [`deepstan::Session`] against the cached model — **zero** compile,
//! resolve, or DProg-lower work on a cache hit — and streams response
//! frames back through a channel the connection thread drains to the
//! socket. Per-chain draws flush as chains finish (thread-per-chain NUTS
//! reports in completion order while other chains still sample), so a
//! client sees its first chain before the request completes. When the
//! worker queue is full the connection answers `busy <retry_after_ms>`
//! immediately — see the backpressure contract in [`crate::pool`].
//!
//! # Deadlines and drain
//!
//! Each request runs under a [`CancelToken`] that is a child of the
//! server-wide drain token: [`ServeConfig::request_timeout`] arms the
//! child's deadline, and [`Server::shutdown`] cancels the parent. The
//! token is polled cooperatively in the inference outer loops (once per
//! draw / step, never inside a gradient evaluation), so cancellation
//! keeps the bitwise draw-prefix contract; a cancelled request streams
//! whatever chains completed and ends with a `deadline_exceeded` frame
//! instead of `done`, freeing the worker. See the failure-modes section
//! in the [crate docs](crate) for the full contract, including panic
//! isolation and the fault-injection schedule grammar.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use deepstan::{ImportanceSettings, Method, NutsSettings};
use gprob::value::Value;
use inference::advi::AdviConfig;
use inference::CancelToken;

use crate::cache::ModelCache;
use crate::faults::{FaultPlan, Faults};
use crate::pool::WorkerPool;
use crate::protocol::{write_frame, MethodSpec, Request, RequestFrame, Response, MAX_FRAME};

/// Stable label for per-method metric names
/// (`serve.requests.<label>`, `serve.request_ns.<label>`, ...).
fn method_label(method: &MethodSpec) -> &'static str {
    match method {
        MethodSpec::Nuts { .. } => "nuts",
        MethodSpec::Advi { .. } => "advi",
        MethodSpec::Importance { .. } => "importance",
    }
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth; submits beyond this bounce with `busy`.
    pub queue_capacity: usize,
    /// Upper bound on a request's `chains` (protects the thread budget).
    pub max_chains: usize,
    /// Maximum bound models kept in the cache (`None` = unbounded). Beyond
    /// this the least-recently-used model is evicted; compiled programs
    /// stay cached regardless (see [`ModelCache`]).
    pub model_cache_capacity: Option<usize>,
    /// Wall-clock budget per request, measured from job start (queue wait
    /// excluded). A request over budget is cancelled cooperatively at the
    /// next draw/step boundary and answered with `deadline_exceeded`
    /// after streaming the chains that completed. `None` (the default)
    /// never times out.
    pub request_timeout: Option<Duration>,
    /// How long [`Server::shutdown`] waits for in-flight requests to
    /// finish on their own before cancelling them (the drain phase).
    pub drain_timeout: Duration,
    /// Per-read socket timeout applied *inside* a frame: once a frame's
    /// first byte arrives, every subsequent read must make progress
    /// within this window or the connection is dropped (a stalled client
    /// holding a half-written length prefix frees its thread). Waiting
    /// *between* frames blocks indefinitely, so idle keep-alive
    /// connections are unaffected.
    pub io_timeout: Duration,
    /// Deterministic fault-injection plan (chaos testing). Defaults to
    /// the `GPROB_FAULTS` environment schedule — empty unless set. See
    /// [`crate::faults`] for the grammar.
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        ServeConfig {
            workers,
            queue_capacity: workers * 4,
            max_chains: 16,
            model_cache_capacity: None,
            request_timeout: None,
            drain_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            faults: FaultPlan::from_env(),
        }
    }
}

/// State shared by the accept loop, connection threads, and worker jobs.
struct Shared {
    cache: Arc<ModelCache>,
    pool: Arc<WorkerPool>,
    max_chains: usize,
    request_timeout: Option<Duration>,
    io_timeout: Duration,
    /// Parent of every per-request token; cancelled by drain.
    drain: CancelToken,
    /// Requests submitted to the pool and not yet finished.
    in_flight: AtomicUsize,
    faults: Faults,
}

/// A running server: owns the accept thread, the worker pool, and the
/// compiled-model cache. Dropping (or [`Server::shutdown`]) stops
/// accepting connections, drains in-flight requests (cancelling
/// stragglers past the drain timeout), and joins the workers.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
    drain_timeout: Duration,
    drained: bool,
}

impl Server {
    /// Binds `127.0.0.1:0` (an ephemeral port; read it back from
    /// [`Server::addr`]) and starts accepting connections.
    ///
    /// # Errors
    /// Socket bind failures.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(match config.model_cache_capacity {
            Some(cap) => ModelCache::with_model_capacity(cap),
            None => ModelCache::new(),
        });
        let pool = Arc::new(WorkerPool::new(config.workers, config.queue_capacity));
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            cache,
            pool,
            max_chains: config.max_chains.max(1),
            request_timeout: config.request_timeout,
            io_timeout: config.io_timeout,
            drain: CancelToken::new(),
            in_flight: AtomicUsize::new(0),
            faults: Faults::new(config.faults),
        });
        let accept_thread = {
            let (shared, stop) = (shared.clone(), stop.clone());
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Response frames are small and latency-sensitive;
                    // without this, Nagle + delayed ACK floors every
                    // request at ~40ms regardless of compute.
                    let _ = stream.set_nodelay(true);
                    let shared = shared.clone();
                    std::thread::spawn(move || {
                        // A dropped client mid-stream is normal churn, not a
                        // server error; a panicking connection thread must
                        // not take the process down either.
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                                let _ = serve_connection(stream, &shared);
                            }));
                        if result.is_err() {
                            obs::counter("serve.worker_panics").inc();
                        }
                    });
                }
            })
        };
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            shared,
            drain_timeout: config.drain_timeout,
            drained: false,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's compiled-model cache (tests read its counters).
    pub fn cache(&self) -> &Arc<ModelCache> {
        &self.shared.cache
    }

    /// Requests submitted to the pool and not yet finished (tests poll
    /// this to observe the drain phase).
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// The server's fault injector (chaos tests read its counts).
    pub fn faults(&self) -> &Faults {
        &self.shared.faults
    }

    /// Gracefully stops the server: stop accepting connections, let
    /// in-flight requests finish under [`ServeConfig::drain_timeout`],
    /// then cancel stragglers through the drain token and wait for them
    /// to unwind cooperatively. The drain duration lands in the
    /// `serve.drain_ns` histogram.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        if self.drained {
            return;
        }
        self.drained = true;
        let start = Instant::now();
        self.stop_accepting();
        // Phase 1: wait for in-flight requests to finish on their own.
        let polite = start + self.drain_timeout;
        while self.shared.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < polite {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Phase 2: cancel stragglers; they unwind at the next draw/step
        // boundary. Bounded by one more drain window as a backstop — the
        // pool join below still runs regardless.
        if self.shared.in_flight.load(Ordering::SeqCst) > 0 {
            self.shared.drain.cancel();
            let forced = Instant::now() + self.drain_timeout;
            while self.shared.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < forced {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        obs::histogram("serve.drain_ns").record(ns);
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Decrements the in-flight gauge when the job finishes — on success, on
/// panic (the closure's captures drop during unwind), and when a rejected
/// submit drops the closure unrun.
struct InFlightGuard(Arc<Shared>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Reads one request frame with the two-phase socket timeout: block
/// indefinitely for the frame's first byte (idle keep-alive connections
/// are fine), then require every subsequent read to make progress within
/// `io_timeout` — a client stalling mid-frame (e.g. a half-written length
/// prefix) errors out instead of pinning the connection thread.
///
/// `Ok(None)` on clean EOF at a frame boundary.
fn read_request_frame(stream: &mut TcpStream, io_timeout: Duration) -> io::Result<Option<String>> {
    stream.set_read_timeout(None)?;
    let mut first = [0u8; 1];
    match stream.read_exact(&mut first) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    stream.set_read_timeout(Some(io_timeout))?;
    let mut rest = [0u8; 3];
    stream.read_exact(&mut rest)?;
    let len = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    // A peer that stops reading cannot pin this thread on a write either.
    stream.set_write_timeout(Some(shared.io_timeout))?;
    while let Some(payload) = read_request_frame(&mut stream, shared.io_timeout)? {
        let request = match RequestFrame::parse(&payload) {
            Ok(RequestFrame::Run(request)) => request,
            Ok(RequestFrame::Stats) => {
                // Answered on the connection thread, never queued: stats
                // must stay readable while the pool is saturated. Live
                // gauges are sampled here so a snapshot is current.
                obs::gauge("serve.pool.depth").set(shared.pool.pending() as f64);
                obs::gauge("serve.cache.models").set(shared.cache.n_models() as f64);
                let text = obs::global().snapshot().to_text();
                write_frame(&mut stream, &Response::Stats { text }.encode())?;
                continue;
            }
            Err(message) => {
                write_frame(&mut stream, &Response::Error { message }.encode())?;
                continue;
            }
        };
        let label = method_label(&request.method);
        obs::counter(&format!("serve.requests.{label}")).inc();
        // Gated timing: e2e on the connection thread, queue wait measured
        // at job start. `submitted` doubles as the gate for both.
        let submitted = obs::enabled().then(Instant::now);
        let (tx, rx) = mpsc::channel::<String>();
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let guard = InFlightGuard(shared.clone());
        let job = {
            let shared = shared.clone();
            move || {
                let _guard = guard;
                if let Some(at) = submitted {
                    let ns = u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    obs::histogram(&format!("serve.queue_ns.{label}")).record(ns);
                }
                if let Some(delay) = shared.faults.job_delay() {
                    std::thread::sleep(delay);
                }
                if shared.faults.should_panic_job() {
                    panic!("injected fault: panic");
                }
                run_request(&shared, request, &tx);
            }
        };
        match shared.pool.submit(job) {
            Ok(()) => {
                // Drain until the job drops its sender (request finished);
                // the per-chain frames land here as chains complete.
                let mut terminated = false;
                for frame in rx {
                    if let Some(e) = shared.faults.write_error() {
                        return Err(e);
                    }
                    terminated = frame.starts_with("done ")
                        || frame.starts_with("deadline_exceeded ")
                        || frame.starts_with("error");
                    write_frame(&mut stream, &frame)?;
                }
                // A job that panicked dropped its sender mid-stream; the
                // client still gets a terminal frame instead of a hang.
                if !terminated {
                    write_frame(
                        &mut stream,
                        &Response::Error {
                            message: "request aborted: worker panicked".to_string(),
                        }
                        .encode(),
                    )?;
                }
                if let Some(at) = submitted {
                    let ns = u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    obs::histogram(&format!("serve.request_ns.{label}")).record(ns);
                }
            }
            Err(busy) => {
                obs::counter("serve.pool.rejected").inc();
                write_frame(
                    &mut stream,
                    &Response::Busy {
                        retry_after_ms: busy.retry_after_ms,
                    }
                    .encode(),
                )?;
            }
        }
    }
    stream.flush()
}

/// Records elapsed time into a histogram when dropped; covers every exit
/// path of [`run_request`] (early `fail` returns included).
struct RecordOnDrop {
    histogram: Option<std::sync::Arc<obs::Histogram>>,
    start: Instant,
}

impl Drop for RecordOnDrop {
    fn drop(&mut self) {
        if let Some(histogram) = &self.histogram {
            let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            histogram.record(ns);
        }
    }
}

/// Executes one request against the cache, streaming frames to `send`.
/// Send failures (client hung up) abort silently — the fit computation
/// finishes but nothing is kept.
fn run_request(shared: &Shared, request: Request, send: &mpsc::Sender<String>) {
    let start = Instant::now();
    // Deadline armed at job start, so queue wait doesn't eat the budget;
    // the child observes the drain token through its parent chain.
    let cancel = match shared.request_timeout {
        Some(timeout) => shared.drain.child_with_timeout(timeout),
        None => shared.drain.child(),
    };
    // Worker-side time (bind + fit + gq), excluding queue wait and socket
    // drain; recorded on every exit path, success or error.
    let run_hist = obs::enabled()
        .then(|| obs::histogram(&format!("serve.run_ns.{}", method_label(&request.method))));
    let _run_guard = RecordOnDrop {
        histogram: run_hist,
        start,
    };
    let fail = |message: String| {
        let _ = send.send(Response::Error { message }.encode());
    };
    let cached = match shared
        .cache
        .get_or_bind(&request.source, request.scheme, &request.data)
    {
        Ok(cached) => cached,
        Err(message) => return fail(message),
    };
    let program = match shared.cache.get_or_compile(&request.source) {
        Ok(program) => program,
        Err(message) => return fail(message),
    };
    let _ = send.send(
        Response::Names {
            names: cached.model.component_names(),
        }
        .encode(),
    );
    let refs: Vec<(&str, Value<f64>)> = request
        .data
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    let session = match program.session(&refs) {
        Ok(session) => session,
        Err(e) => return fail(e.to_string()),
    };
    let mut session = session
        .with_bound_model(cached.scheme, cached.model.clone())
        .workspace_pool(cached.pool.clone())
        .chains(request.chains.clamp(1, shared.max_chains))
        .seed(request.seed)
        .cancel(cancel.clone());
    let method = match request.method {
        MethodSpec::Nuts { warmup, samples } => Method::Nuts(NutsSettings {
            warmup,
            samples,
            ..Default::default()
        }),
        MethodSpec::Advi { steps } => Method::Advi(AdviConfig {
            steps,
            ..Default::default()
        }),
        MethodSpec::Importance { particles } => {
            Method::Importance(ImportanceSettings { particles })
        }
    };
    let mut fit = {
        let mut on_chain = |index: usize, chain: &deepstan::ChainResult| {
            let _ = send.send(
                Response::Chain {
                    index,
                    divergences: chain.divergences,
                    wall_time: chain.wall_time,
                    n_grad_evals: chain.n_grad_evals,
                    draws: chain.draws.clone(),
                }
                .encode(),
            );
        };
        match session.run_with_observer(method, &mut on_chain) {
            Ok(fit) => fit,
            Err(e) => return fail(e.to_string()),
        }
    };
    if fit.cancelled {
        // Partial result: the chains streamed above are each a bitwise
        // prefix of the uncancelled run. GQ is skipped — it would only
        // cover the partial draws the client already knows are partial.
        obs::counter("serve.cancelled").inc();
        if cancel.remaining().is_some_and(|left| left.is_zero()) {
            obs::counter("serve.deadline_exceeded").inc();
        }
        let _ = send.send(
            Response::DeadlineExceeded {
                wall_time: start.elapsed().as_secs_f64(),
            }
            .encode(),
        );
        return;
    }
    if request.gq {
        if let Err(e) = session.generated_quantities(&mut fit) {
            return fail(e.to_string());
        }
        let gq = fit.gq.as_ref().expect("attached above");
        let _ = send.send(
            Response::GqNames {
                names: gq.names.clone(),
            }
            .encode(),
        );
        for (index, rows) in gq.chains.iter().enumerate() {
            let _ = send.send(
                Response::GqChain {
                    index,
                    rows: rows.clone(),
                }
                .encode(),
            );
        }
    }
    let _ = send.send(
        Response::Done {
            wall_time: start.elapsed().as_secs_f64(),
        }
        .encode(),
    );
}
