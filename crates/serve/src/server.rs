//! The TCP inference server: accept loop, per-connection framing, and the
//! request execution path over the compiled-model cache and worker pool.
//!
//! One connection carries one request at a time (pipelining concurrency =
//! open connections). The connection thread parses a request frame and
//! submits the run as one job to the [`WorkerPool`]; the job binds a
//! [`deepstan::Session`] against the cached model — **zero** compile,
//! resolve, or DProg-lower work on a cache hit — and streams response
//! frames back through a channel the connection thread drains to the
//! socket. Per-chain draws flush as chains finish (thread-per-chain NUTS
//! reports in completion order while other chains still sample), so a
//! client sees its first chain before the request completes. When the
//! worker queue is full the connection answers `busy <retry_after_ms>`
//! immediately — see the backpressure contract in [`crate::pool`].

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use deepstan::{ImportanceSettings, Method, NutsSettings};
use gprob::value::Value;
use inference::advi::AdviConfig;

use crate::cache::ModelCache;
use crate::pool::WorkerPool;
use crate::protocol::{read_frame, write_frame, MethodSpec, Request, RequestFrame, Response};

/// Stable label for per-method metric names
/// (`serve.requests.<label>`, `serve.request_ns.<label>`, ...).
fn method_label(method: &MethodSpec) -> &'static str {
    match method {
        MethodSpec::Nuts { .. } => "nuts",
        MethodSpec::Advi { .. } => "advi",
        MethodSpec::Importance { .. } => "importance",
    }
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth; submits beyond this bounce with `busy`.
    pub queue_capacity: usize,
    /// Upper bound on a request's `chains` (protects the thread budget).
    pub max_chains: usize,
    /// Maximum bound models kept in the cache (`None` = unbounded). Beyond
    /// this the least-recently-used model is evicted; compiled programs
    /// stay cached regardless (see [`ModelCache`]).
    pub model_cache_capacity: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        ServeConfig {
            workers,
            queue_capacity: workers * 4,
            max_chains: 16,
            model_cache_capacity: None,
        }
    }
}

/// A running server: owns the accept thread, the worker pool, and the
/// compiled-model cache. Dropping (or [`Server::shutdown`]) stops accepting
/// connections and joins the workers.
pub struct Server {
    addr: SocketAddr,
    cache: Arc<ModelCache>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    // Dropped after the accept thread joins; its own Drop joins the workers.
    _pool: Arc<WorkerPool>,
}

impl Server {
    /// Binds `127.0.0.1:0` (an ephemeral port; read it back from
    /// [`Server::addr`]) and starts accepting connections.
    ///
    /// # Errors
    /// Socket bind failures.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(match config.model_cache_capacity {
            Some(cap) => ModelCache::with_model_capacity(cap),
            None => ModelCache::new(),
        });
        let pool = Arc::new(WorkerPool::new(config.workers, config.queue_capacity));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let (cache, pool, stop) = (cache.clone(), pool.clone(), stop.clone());
            let max_chains = config.max_chains.max(1);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Response frames are small and latency-sensitive;
                    // without this, Nagle + delayed ACK floors every
                    // request at ~40ms regardless of compute.
                    let _ = stream.set_nodelay(true);
                    let (cache, pool) = (cache.clone(), pool.clone());
                    std::thread::spawn(move || {
                        // A dropped client mid-stream is normal churn, not a
                        // server error.
                        let _ = serve_connection(stream, &cache, &pool, max_chains);
                    });
                }
            })
        };
        Ok(Server {
            addr,
            cache,
            stop,
            accept_thread: Some(accept_thread),
            _pool: pool,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's compiled-model cache (tests read its counters).
    pub fn cache(&self) -> &Arc<ModelCache> {
        &self.cache
    }

    /// Stops the accept loop and joins it. In-flight connections finish
    /// their current request; queued jobs drain when the pool drops.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    cache: &Arc<ModelCache>,
    pool: &WorkerPool,
    max_chains: usize,
) -> io::Result<()> {
    while let Some(payload) = read_frame(&mut stream)? {
        let request = match RequestFrame::parse(&payload) {
            Ok(RequestFrame::Run(request)) => request,
            Ok(RequestFrame::Stats) => {
                // Answered on the connection thread, never queued: stats
                // must stay readable while the pool is saturated. Live
                // gauges are sampled here so a snapshot is current.
                obs::gauge("serve.pool.depth").set(pool.pending() as f64);
                obs::gauge("serve.cache.models").set(cache.n_models() as f64);
                let text = obs::global().snapshot().to_text();
                write_frame(&mut stream, &Response::Stats { text }.encode())?;
                continue;
            }
            Err(message) => {
                write_frame(&mut stream, &Response::Error { message }.encode())?;
                continue;
            }
        };
        let label = method_label(&request.method);
        obs::counter(&format!("serve.requests.{label}")).inc();
        // Gated timing: e2e on the connection thread, queue wait measured
        // at job start. `submitted` doubles as the gate for both.
        let submitted = obs::enabled().then(Instant::now);
        let (tx, rx) = mpsc::channel::<String>();
        let job = {
            let cache = cache.clone();
            move || {
                if let Some(at) = submitted {
                    let ns = u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    obs::histogram(&format!("serve.queue_ns.{label}")).record(ns);
                }
                run_request(&cache, request, max_chains, &tx);
            }
        };
        match pool.submit(job) {
            Ok(()) => {
                // Drain until the job drops its sender (request finished);
                // the per-chain frames land here as chains complete.
                for frame in rx {
                    write_frame(&mut stream, &frame)?;
                }
                if let Some(at) = submitted {
                    let ns = u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    obs::histogram(&format!("serve.request_ns.{label}")).record(ns);
                }
            }
            Err(busy) => {
                obs::counter("serve.pool.rejected").inc();
                write_frame(
                    &mut stream,
                    &Response::Busy {
                        retry_after_ms: busy.retry_after_ms,
                    }
                    .encode(),
                )?;
            }
        }
    }
    stream.flush()
}

/// Records elapsed time into a histogram when dropped; covers every exit
/// path of [`run_request`] (early `fail` returns included).
struct RecordOnDrop {
    histogram: Option<std::sync::Arc<obs::Histogram>>,
    start: Instant,
}

impl Drop for RecordOnDrop {
    fn drop(&mut self) {
        if let Some(histogram) = &self.histogram {
            let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            histogram.record(ns);
        }
    }
}

/// Executes one request against the cache, streaming frames to `send`.
/// Send failures (client hung up) abort silently — the fit computation
/// finishes but nothing is kept.
fn run_request(
    cache: &ModelCache,
    request: Request,
    max_chains: usize,
    send: &mpsc::Sender<String>,
) {
    let start = Instant::now();
    // Worker-side time (bind + fit + gq), excluding queue wait and socket
    // drain; recorded on every exit path, success or error.
    let run_hist = obs::enabled()
        .then(|| obs::histogram(&format!("serve.run_ns.{}", method_label(&request.method))));
    let _run_guard = RecordOnDrop {
        histogram: run_hist,
        start,
    };
    let fail = |message: String| {
        let _ = send.send(Response::Error { message }.encode());
    };
    let cached = match cache.get_or_bind(&request.source, request.scheme, &request.data) {
        Ok(cached) => cached,
        Err(message) => return fail(message),
    };
    let program = match cache.get_or_compile(&request.source) {
        Ok(program) => program,
        Err(message) => return fail(message),
    };
    let _ = send.send(
        Response::Names {
            names: cached.model.component_names(),
        }
        .encode(),
    );
    let refs: Vec<(&str, Value<f64>)> = request
        .data
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    let session = match program.session(&refs) {
        Ok(session) => session,
        Err(e) => return fail(e.to_string()),
    };
    let mut session = session
        .with_bound_model(cached.scheme, cached.model.clone())
        .workspace_pool(cached.pool.clone())
        .chains(request.chains.clamp(1, max_chains))
        .seed(request.seed);
    let method = match request.method {
        MethodSpec::Nuts { warmup, samples } => Method::Nuts(NutsSettings {
            warmup,
            samples,
            ..Default::default()
        }),
        MethodSpec::Advi { steps } => Method::Advi(AdviConfig {
            steps,
            ..Default::default()
        }),
        MethodSpec::Importance { particles } => {
            Method::Importance(ImportanceSettings { particles })
        }
    };
    let mut fit = {
        let mut on_chain = |index: usize, chain: &deepstan::ChainResult| {
            let _ = send.send(
                Response::Chain {
                    index,
                    divergences: chain.divergences,
                    wall_time: chain.wall_time,
                    n_grad_evals: chain.n_grad_evals,
                    draws: chain.draws.clone(),
                }
                .encode(),
            );
        };
        match session.run_with_observer(method, &mut on_chain) {
            Ok(fit) => fit,
            Err(e) => return fail(e.to_string()),
        }
    };
    if request.gq {
        if let Err(e) = session.generated_quantities(&mut fit) {
            return fail(e.to_string());
        }
        let gq = fit.gq.as_ref().expect("attached above");
        let _ = send.send(
            Response::GqNames {
                names: gq.names.clone(),
            }
            .encode(),
        );
        for (index, rows) in gq.chains.iter().enumerate() {
            let _ = send.send(
                Response::GqChain {
                    index,
                    rows: rows.clone(),
                }
                .encode(),
            );
        }
    }
    let _ = send.send(
        Response::Done {
            wall_time: start.elapsed().as_secs_f64(),
        }
        .encode(),
    );
}
