//! `stan_ref` — the baseline Stan-semantics interpreter.
//!
//! This crate implements the imperative density semantics of Figure 3 of the
//! paper directly on the Stan AST: given data and parameter values, the model
//! block is executed statement by statement, accumulating the reserved
//! `target` variable (`target += e` adds `e`; `e ~ D` adds `D_lpdf(e)`).
//! Combined with the same constraint transforms and NUTS engine used by the
//! GProb backends, it plays the role CmdStan plays in the paper's evaluation:
//! the reference posterior machinery and the speed baseline.
//!
//! # Example
//!
//! ```
//! use gprob::value::{Env, Value};
//! use stan_ref::StanModel;
//!
//! let src = r#"
//!     data { int N; int<lower=0,upper=1> x[N]; }
//!     parameters { real<lower=0,upper=1> z; }
//!     model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
//! "#;
//! let program = stan_frontend::compile_frontend(src).unwrap();
//! let mut data = Env::new();
//! data.insert("N".to_string(), Value::Int(2));
//! data.insert("x".to_string(), Value::IntArray(vec![1, 0]));
//! let model = StanModel::new(&program, data).unwrap();
//! let (lp, grad) = model.log_density_and_grad(&[0.0]).unwrap();
//! assert!(lp.is_finite() && grad.len() == 1);
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use gprob::eval::{
    default_value, eval_expr, exec_stmt, DeterministicOnly, EvalCtx, Flow, TargetAccumulator,
};
use gprob::model::ParamSlot;
use gprob::value::{lift_env, Env, RuntimeError, Value};
use minidiff::{grad, tape, Real, Var};
use probdist::Constraint;
use rand::rngs::StdRng;
use rand::Rng;
use stan_frontend::ast::{BaseType, Program, Stmt};

/// A Stan program instantiated with data, evaluated with the reference
/// density semantics (the paper's Figure 3).
pub struct StanModel {
    program: Program,
    data: Env<f64>,
    slots: Vec<ParamSlot>,
    dim: usize,
}

impl StanModel {
    /// Instantiates the model: runs `transformed data` once and lays out the
    /// unconstrained parameter vector from the `parameters` declarations.
    ///
    /// # Errors
    /// Fails if the transformed-data block fails, a parameter shape cannot be
    /// evaluated, or a parameter type is unsupported.
    pub fn new(program: &Program, mut data: Env<f64>) -> Result<Self, RuntimeError> {
        let ctx: EvalCtx<f64> = EvalCtx::with_functions(&program.functions);
        if let Some(td) = &program.transformed_data {
            let mut handler = DeterministicOnly;
            for stmt in &td.stmts {
                match exec_stmt(stmt, &mut data, &ctx, &mut handler)? {
                    Flow::Normal => {}
                    other => {
                        return Err(RuntimeError::new(format!(
                            "unexpected control flow {other:?} in transformed data"
                        )))
                    }
                }
            }
        }

        let mut slots = Vec::new();
        let mut offset = 0usize;
        for d in &program.parameters {
            let mut dims: Vec<i64> = Vec::new();
            for e in &d.dims {
                dims.push(eval_expr(e, &data, &ctx)?.as_int()?);
            }
            match &d.ty {
                BaseType::Real => {}
                BaseType::Vector(n) | BaseType::RowVector(n) => {
                    dims.push(eval_expr(n, &data, &ctx)?.as_int()?);
                }
                BaseType::Matrix(r, c) => {
                    dims.push(eval_expr(r, &data, &ctx)?.as_int()?);
                    dims.push(eval_expr(c, &data, &ctx)?.as_int()?);
                }
                other => {
                    return Err(RuntimeError::new(format!(
                        "parameter type {other:?} is not supported by the reference interpreter"
                    )))
                }
            }
            let size: usize = dims.iter().map(|&d| d.max(0) as usize).product();
            let lower = match &d.constraint.lower {
                Some(e) => Some(eval_expr(e, &data, &ctx)?.as_real()?),
                None => None,
            };
            let upper = match &d.constraint.upper {
                Some(e) => Some(eval_expr(e, &data, &ctx)?.as_real()?),
                None => None,
            };
            slots.push(ParamSlot {
                name: d.name.clone(),
                dims,
                size,
                offset,
                constraint: Constraint::from_bounds(lower, upper),
            });
            offset += size;
        }

        Ok(StanModel {
            program: program.clone(),
            data,
            slots,
            dim: offset,
        })
    }

    /// Number of unconstrained dimensions.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The data environment (after transformed data).
    pub fn data(&self) -> &Env<f64> {
        &self.data
    }

    /// Parameter layout.
    pub fn slots(&self) -> &[ParamSlot] {
        &self.slots
    }

    /// Flat component names (`mu`, `theta[1]`, ...).
    pub fn component_names(&self) -> Vec<String> {
        self.slots
            .iter()
            .flat_map(|s| s.component_names())
            .collect()
    }

    /// Maps an unconstrained vector to constrained parameter values and the
    /// log-Jacobian of the transforms.
    ///
    /// # Errors
    /// Fails if `theta_u` has the wrong length.
    pub fn constrain<T: Real>(&self, theta_u: &[T]) -> Result<(Env<T>, T), RuntimeError> {
        if theta_u.len() != self.dim {
            return Err(RuntimeError::new(format!(
                "expected {} unconstrained values, got {}",
                self.dim,
                theta_u.len()
            )));
        }
        let mut env = Env::new();
        let mut log_jac = T::from_f64(0.0);
        for slot in &self.slots {
            let mut comps = Vec::with_capacity(slot.size);
            for i in 0..slot.size {
                let u = theta_u[slot.offset + i];
                comps.push(slot.constraint.to_constrained(u));
                log_jac = log_jac + slot.constraint.log_jacobian(u);
            }
            env.insert(slot.name.clone(), shape_param(&comps, &slot.dims));
        }
        Ok((env, log_jac))
    }

    /// The value of `target` (the un-normalized log-density of Figure 3) for
    /// the given unconstrained parameters, including the Jacobian correction.
    ///
    /// This executes `transformed parameters` followed by `model` in a fresh
    /// environment exactly as the Stan semantics prescribes.
    ///
    /// # Errors
    /// Propagates evaluation errors (unknown functions, bad indexing, ...).
    pub fn log_density<T: Real>(&self, theta_u: &[T]) -> Result<T, RuntimeError> {
        let (params, log_jac) = self.constrain(theta_u)?;
        let ctx: EvalCtx<T> = EvalCtx::with_functions(&self.program.functions);
        let mut env: Env<T> = lift_env(&self.data);
        for (k, v) in params {
            env.insert(k, v);
        }
        let mut handler = TargetAccumulator::default();
        if let Some(tp) = &self.program.transformed_parameters {
            for stmt in &tp.stmts {
                exec_stmt(stmt, &mut env, &ctx, &mut handler)?;
            }
        }
        for stmt in &self.program.model.stmts {
            exec_stmt(stmt, &mut env, &ctx, &mut handler)?;
        }
        Ok(handler.target + log_jac)
    }

    /// Plain `f64` log-density.
    ///
    /// # Errors
    /// Propagates evaluation errors.
    pub fn log_density_f64(&self, theta_u: &[f64]) -> Result<f64, RuntimeError> {
        self.log_density(theta_u)
    }

    /// Log-density and gradient via the reverse-mode tape.
    ///
    /// # Errors
    /// Propagates evaluation errors.
    pub fn log_density_and_grad(&self, theta_u: &[f64]) -> Result<(f64, Vec<f64>), RuntimeError> {
        tape::reset();
        let vars: Vec<Var> = theta_u.iter().map(|&x| Var::new(x)).collect();
        let lp = self.log_density(&vars)?;
        let g = grad(lp, &vars);
        Ok((lp.value(), g))
    }

    /// Stan-style initialization: uniform in `[-2, 2]` on the unconstrained
    /// scale.
    pub fn initial_unconstrained(&self, rng: &mut StdRng) -> Vec<f64> {
        (0..self.dim).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    /// Evaluates the `generated quantities` block for one draw.
    ///
    /// # Errors
    /// Propagates evaluation errors.
    pub fn generated_quantities(
        &self,
        theta_u: &[f64],
        rng: Rc<RefCell<StdRng>>,
    ) -> Result<Env<f64>, RuntimeError> {
        let Some(gq) = &self.program.generated_quantities else {
            return Ok(Env::new());
        };
        let (params, _) = self.constrain::<f64>(theta_u)?;
        let mut env = self.data.clone();
        for (k, v) in params {
            env.insert(k, v);
        }
        let ctx = EvalCtx::with_functions(&self.program.functions).rng(rng);
        let mut handler = DeterministicOnly;
        if let Some(tp) = &self.program.transformed_parameters {
            for stmt in &tp.stmts {
                exec_stmt(stmt, &mut env, &ctx, &mut handler)?;
            }
        }
        let declared: Vec<String> = gq
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::LocalDecl(d) => Some(d.name.clone()),
                _ => None,
            })
            .collect();
        for stmt in &gq.stmts {
            exec_stmt(stmt, &mut env, &ctx, &mut handler)?;
        }
        Ok(env
            .into_iter()
            .filter(|(k, _)| declared.contains(k))
            .collect())
    }

    /// Default (zero / empty) values of every data variable — handy when
    /// constructing synthetic data sets shape-compatible with the program.
    ///
    /// # Errors
    /// Fails when a dimension expression cannot be evaluated from the
    /// already-provided variables.
    pub fn data_defaults(program: &Program, partial: &Env<f64>) -> Result<Env<f64>, RuntimeError> {
        let ctx: EvalCtx<f64> = EvalCtx::empty();
        let mut env = partial.clone();
        for d in &program.data {
            if !env.contains_key(&d.name) {
                let v: Value<f64> = default_value(d, &env, &ctx)?;
                env.insert(d.name.clone(), v);
            }
        }
        Ok(env)
    }
}

fn shape_param<T: Real>(comps: &[T], dims: &[i64]) -> Value<T> {
    match dims.len() {
        0 => Value::Real(comps[0]),
        1 => Value::Vector(comps.to_vec()),
        _ => {
            let chunk = comps.len() / dims[0].max(1) as usize;
            Value::Array(
                comps
                    .chunks(chunk.max(1))
                    .map(|c| shape_param(c, &dims[1..]))
                    .collect(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stan_frontend::compile_frontend;

    fn coin_model() -> StanModel {
        let src = r#"
            data { int N; int<lower=0,upper=1> x[N]; }
            parameters { real<lower=0,upper=1> z; }
            model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
        "#;
        let program = compile_frontend(src).unwrap();
        let mut data = Env::new();
        data.insert("N".into(), Value::Int(10));
        data.insert(
            "x".into(),
            Value::IntArray(vec![1, 1, 1, 0, 1, 0, 1, 1, 0, 1]),
        );
        StanModel::new(&program, data).unwrap()
    }

    #[test]
    fn coin_density_matches_manual_computation() {
        let m = coin_model();
        let u = 0.4_f64;
        let z = 1.0 / (1.0 + (-u).exp());
        let lp = m.log_density_f64(&[u]).unwrap();
        let manual = 7.0 * z.ln() + 3.0 * (1.0 - z).ln() + (z * (1.0 - z)).ln();
        assert!((lp - manual).abs() < 1e-10, "{lp} vs {manual}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = coin_model();
        let (_, g) = m.log_density_and_grad(&[0.2]).unwrap();
        let h = 1e-6;
        let fd = (m.log_density_f64(&[0.2 + h]).unwrap() - m.log_density_f64(&[0.2 - h]).unwrap())
            / (2.0 * h);
        assert!((g[0] - fd).abs() < 1e-5);
    }

    #[test]
    fn transformed_blocks_and_generated_quantities() {
        let src = r#"
            data { int N; real y[N]; }
            transformed data { real mean_y; mean_y = mean(y); }
            parameters { real mu; real<lower=0> sigma; }
            transformed parameters { real shifted; shifted = mu + mean_y; }
            model { y ~ normal(shifted, sigma); mu ~ normal(0, 10); sigma ~ lognormal(0, 1); }
            generated quantities { real yrep; yrep = normal_rng(shifted, sigma); }
        "#;
        let program = compile_frontend(src).unwrap();
        let mut data = Env::new();
        data.insert("N".into(), Value::Int(3));
        data.insert("y".into(), Value::Vector(vec![1.0, 2.0, 3.0]));
        let m = StanModel::new(&program, data).unwrap();
        assert_eq!(m.dim(), 2);
        // transformed data computed once
        assert_eq!(m.data().get("mean_y").unwrap(), &Value::Real(2.0));
        let lp = m.log_density_f64(&[0.1, -0.2]).unwrap();
        assert!(lp.is_finite());
        let rng = Rc::new(RefCell::new(rand::SeedableRng::seed_from_u64(1)));
        let gq = m.generated_quantities(&[0.1, -0.2], rng).unwrap();
        assert!(gq.contains_key("yrep"));
    }

    #[test]
    fn vector_parameters_and_left_expressions() {
        let src = r#"
            data { int N; }
            parameters { real phi[N]; }
            model {
              phi ~ normal(0, 1);
              sum(phi) ~ normal(0, 0.001 * N);
            }
        "#;
        let program = compile_frontend(src).unwrap();
        let mut data = Env::new();
        data.insert("N".into(), Value::Int(3));
        let m = StanModel::new(&program, data).unwrap();
        assert_eq!(m.dim(), 3);
        let theta = [0.5, -0.2, 0.1];
        let lp = m.log_density_f64(&theta).unwrap();
        let normal = |x: f64, mu: f64, sd: f64| {
            -0.5 * ((x - mu) / sd).powi(2) - sd.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
        };
        let manual: f64 =
            theta.iter().map(|&x| normal(x, 0.0, 1.0)).sum::<f64>() + normal(0.4, 0.0, 0.003);
        assert!((lp - manual).abs() < 1e-9, "{lp} vs {manual}");
    }

    #[test]
    fn wrong_dimension_errors() {
        let m = coin_model();
        assert!(m.log_density_f64(&[0.1, 0.2]).is_err());
    }

    #[test]
    fn data_defaults_fill_missing_entries() {
        let src = "data { int N; real y[3]; } parameters { real mu; } model { mu ~ normal(0,1); }";
        let program = compile_frontend(src).unwrap();
        let env = StanModel::data_defaults(&program, &Env::new()).unwrap();
        assert_eq!(env.get("N").unwrap(), &Value::Int(0));
        assert_eq!(env.get("y").unwrap().len(), 3);
    }
}
