//! Stan-style constraint transforms between constrained and unconstrained
//! parameter spaces.
//!
//! Stan (and our reproduction) runs Hamiltonian Monte Carlo on an
//! unconstrained space ℝⁿ. Each declared parameter constraint
//! (`<lower=...>`, `<upper=...>`, `<lower=...,upper=...>`) induces a smooth
//! bijection from ℝ to the constrained domain; the log-density picks up the
//! log of the absolute Jacobian determinant of that bijection.

use minidiff::Real;

/// A declared domain constraint for a scalar parameter.
///
/// Bounds are `f64` because in every supported model they are data-dependent
/// but parameter-independent (the `garch11`-style case where a bound depends
/// on another *parameter* is unsupported, mirroring the mismatch reported in
/// the paper's evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constraint {
    /// No constraint: the identity transform.
    None,
    /// `<lower=l>`: `x = l + exp(u)`.
    Lower(f64),
    /// `<upper=u>`: `x = u - exp(u)`.
    Upper(f64),
    /// `<lower=l, upper=h>`: `x = l + (h - l) * sigmoid(u)`.
    Bounded(f64, f64),
}

impl Constraint {
    /// Builds a constraint from optional lower/upper bounds.
    pub fn from_bounds(lower: Option<f64>, upper: Option<f64>) -> Self {
        match (lower, upper) {
            (None, None) => Constraint::None,
            (Some(l), None) => Constraint::Lower(l),
            (None, Some(u)) => Constraint::Upper(u),
            (Some(l), Some(u)) => Constraint::Bounded(l, u),
        }
    }

    /// Maps an unconstrained value to the constrained domain.
    pub fn to_constrained<T: Real>(&self, u: T) -> T {
        match *self {
            Constraint::None => u,
            Constraint::Lower(l) => u.exp() + T::from_f64(l),
            Constraint::Upper(h) => T::from_f64(h) - u.exp(),
            Constraint::Bounded(l, h) => T::from_f64(l) + T::from_f64(h - l) * u.sigmoid(),
        }
    }

    /// Log absolute Jacobian of [`Constraint::to_constrained`] at `u`.
    pub fn log_jacobian<T: Real>(&self, u: T) -> T {
        match *self {
            Constraint::None => T::from_f64(0.0),
            Constraint::Lower(_) | Constraint::Upper(_) => u,
            Constraint::Bounded(l, h) => {
                // log((h-l) * sigmoid(u) * (1 - sigmoid(u)))
                let s = u.sigmoid();
                T::from_f64((h - l).ln()) + s.ln() + (T::from_f64(1.0) - s).ln()
            }
        }
    }

    /// Maps a constrained value back to the unconstrained space (used to
    /// initialize chains from constrained starting points).
    pub fn to_unconstrained(&self, x: f64) -> f64 {
        match *self {
            Constraint::None => x,
            Constraint::Lower(l) => (x - l).max(1e-12).ln(),
            Constraint::Upper(h) => (h - x).max(1e-12).ln(),
            Constraint::Bounded(l, h) => {
                let p = ((x - l) / (h - l)).clamp(1e-12, 1.0 - 1e-12);
                (p / (1.0 - p)).ln()
            }
        }
    }

    /// The lower/upper bounds of the constrained domain.
    pub fn bounds(&self) -> (f64, f64) {
        match *self {
            Constraint::None => (f64::NEG_INFINITY, f64::INFINITY),
            Constraint::Lower(l) => (l, f64::INFINITY),
            Constraint::Upper(u) => (f64::NEG_INFINITY, u),
            Constraint::Bounded(l, u) => (l, u),
        }
    }

    /// Whether a constrained value lies inside the domain.
    pub fn contains(&self, x: f64) -> bool {
        let (lo, hi) = self.bounds();
        x >= lo && x <= hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidiff::{grad, tape, Var};
    use proptest::prelude::*;

    #[test]
    fn roundtrip_identity() {
        for c in [
            Constraint::None,
            Constraint::Lower(2.0),
            Constraint::Upper(-1.0),
            Constraint::Bounded(0.0, 10.0),
        ] {
            for &u in &[-1.5, 0.0, 0.7, 2.0] {
                let x = c.to_constrained(u);
                let back = c.to_unconstrained(x);
                assert!((back - u).abs() < 1e-6, "{c:?} u={u} x={x} back={back}");
                assert!(c.contains(x), "{c:?} produced out-of-domain {x}");
            }
        }
    }

    #[test]
    fn jacobian_matches_derivative_of_transform() {
        for c in [
            Constraint::Lower(1.0),
            Constraint::Upper(3.0),
            Constraint::Bounded(-2.0, 5.0),
        ] {
            for &u0 in &[-0.8, 0.0, 1.3] {
                tape::reset();
                let u = Var::new(u0);
                let x = c.to_constrained(u);
                let g = grad(x, &[u]);
                let lj = c.log_jacobian(u0);
                assert!(
                    (g[0].abs().ln() - lj).abs() < 1e-10,
                    "{c:?} u={u0}: dx/du={} log_jac={}",
                    g[0],
                    lj
                );
            }
        }
    }

    #[test]
    fn bounds_and_membership() {
        assert_eq!(Constraint::Lower(0.0).bounds(), (0.0, f64::INFINITY));
        assert!(Constraint::Bounded(0.0, 1.0).contains(0.5));
        assert!(!Constraint::Bounded(0.0, 1.0).contains(1.5));
        assert_eq!(
            Constraint::from_bounds(Some(1.0), Some(2.0)),
            Constraint::Bounded(1.0, 2.0)
        );
    }

    proptest! {
        #[test]
        fn prop_constrained_values_are_in_domain(u in -20.0f64..20.0, l in -5.0f64..0.0, width in 0.1f64..10.0) {
            let c = Constraint::Bounded(l, l + width);
            let x = c.to_constrained(u);
            prop_assert!(x >= l - 1e-9 && x <= l + width + 1e-9);
        }

        #[test]
        fn prop_lower_roundtrip(u in -10.0f64..10.0, l in -5.0f64..5.0) {
            let c = Constraint::Lower(l);
            let x = c.to_constrained(u);
            prop_assert!((c.to_unconstrained(x) - u).abs() < 1e-6);
        }
    }
}
