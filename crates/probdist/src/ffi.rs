//! `extern "C"` shims over the element kernels and constraint transforms,
//! for machine-code callers (the `gprob` DProg JIT).
//!
//! Emitted code cannot call generic Rust functions directly: it needs
//! symbols with a fixed System-V signature and no unwinding. Each shim here
//! is a thin, monomorphic wrapper that (a) reads the `DistKind` /
//! [`Constraint`] operand through a pointer the code generator embedded as
//! an immediate, (b) calls the exact kernel the interpreter calls — no
//! distribution math is duplicated — and (c) reports the `Option` result
//! through a sentinel (`NaN`, matching the interpreter's `unwrap_or(NAN)`)
//! or an `i32` flag.
//!
//! Safety contract (upheld by the emitter, documented per function): every
//! pointer argument is non-null, properly aligned, and points at data that
//! outlives the call — `kind`/`constraint` point into the JIT's owned copy
//! of the program, `out` points at scratch in the caller's stack frame.

use crate::sweep::{lpdf_elem_partials, lpdf_elem_value};
use crate::transform::Constraint;
use crate::DistKind;

/// `lpdf_elem_value(*kind, x, &[a0, a1, a2]).unwrap_or(NaN)`.
///
/// # Safety
/// `kind` must point at a live [`DistKind`].
pub unsafe extern "C" fn elem_value_c(
    kind: *const DistKind,
    x: f64,
    a0: f64,
    a1: f64,
    a2: f64,
) -> f64 {
    lpdf_elem_value(*kind, x, &[a0, a1, a2]).unwrap_or(f64::NAN)
}

/// `lpdf_elem_partials(*kind, x, &[a0, a1, a2])`: writes `[dx, d0, d1, d2]`
/// to `out` and returns 1 when the kernel exists, returns 0 (leaving `out`
/// untouched) when it does not — the branch the interpreter takes on `None`.
///
/// # Safety
/// `kind` must point at a live [`DistKind`]; `out` at 4 writable `f64`s.
pub unsafe extern "C" fn elem_partials_c(
    kind: *const DistKind,
    out: *mut f64,
    x: f64,
    a0: f64,
    a1: f64,
    a2: f64,
) -> i32 {
    match lpdf_elem_partials(*kind, x, &[a0, a1, a2]) {
        Some((_, dx, dp)) => {
            *out = dx;
            *out.add(1) = dp[0];
            *out.add(2) = dp[1];
            *out.add(3) = dp[2];
            1
        }
        None => 0,
    }
}

/// Forward half of a constrain step: writes `to_constrained(u)` to `out_x`
/// and returns `log_jacobian(u)`.
///
/// # Safety
/// `constraint` must point at a live [`Constraint`]; `out_x` at a writable
/// `f64`.
pub unsafe extern "C" fn constrain_forward_c(
    constraint: *const Constraint,
    out_x: *mut f64,
    u: f64,
) -> f64 {
    let c = &*constraint;
    *out_x = c.to_constrained(u);
    c.log_jacobian(u)
}
