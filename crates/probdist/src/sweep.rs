//! Batched ("sweep") log-density kernels for element-wise observation sites.
//!
//! The scalar scoring path evaluates `x[i] ~ dist(args...)` one element at a
//! time: each element constructs a [`crate::Dist`], runs [`crate::Dist::lpdf`]
//! in the generic scalar type, and — on the gradient path — records several
//! tape nodes per element. [`lpdf_sweep`] evaluates the *whole* sweep in one
//! pass: the primal sum is computed in plain `f64` (using exactly the same
//! formulas and accumulation order as the scalar path, so the two agree to
//! rounding), and the reverse rule is analytic per kernel, recorded as a
//! single fused multi-parent tape node ([`minidiff::Real::fused`]) with one
//! entry per *tracked* input. A sweep of N elements therefore contributes
//! O(#tracked parents) tape entries instead of O(N · ops-per-lpdf) nodes.
//!
//! Supported families (the corpus' element-wise likelihoods): normal,
//! lognormal, bernoulli, bernoulli_logit, poisson, poisson_log, exponential,
//! cauchy, student_t, beta, gamma, binomial and binomial_logit. Everything
//! else reports `false` from [`supports_sweep`] and callers fall back to the
//! scalar path.
//!
//! Besides the fused-sum kernel ([`lpdf_sweep`]), the module exposes the
//! per-element form [`lpdf_elems`], which writes each element's log density
//! into a caller-owned slice. That is the kernel behind pointwise
//! log-likelihood collection (`generated quantities` rows feeding
//! PSIS-LOO / WAIC), where the *vector* of log densities is the result and
//! no gradient is ever needed.
//!
//! Broadcasting follows Stan's vectorized sampling statements: each argument
//! is either one scalar shared by every element ([`SweepArg::Scalar`]) or a
//! slice with one value per element ([`SweepArg::Reals`] / [`SweepArg::Ints`]).

use minidiff::special;
use minidiff::Real;

use crate::dist::{DistError, DistKind};

/// The observed values of one batched site, borrowed as a contiguous slice
/// (no per-element indexing or cloning).
#[derive(Debug, Clone, Copy)]
pub enum SweepVals<'a, T: Real> {
    /// Real observations; elements may be gradient-tracked (e.g. a model
    /// parameter vector observed by the comprehensive translation).
    Reals(&'a [T]),
    /// Integer observations (data; never tracked).
    Ints(&'a [i64]),
}

impl<T: Real> SweepVals<'_, T> {
    /// Number of elements in the sweep.
    pub fn len(&self) -> usize {
        match self {
            SweepVals::Reals(v) => v.len(),
            SweepVals::Ints(v) => v.len(),
        }
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn value(&self, i: usize) -> f64 {
        match self {
            SweepVals::Reals(v) => v[i].value(),
            SweepVals::Ints(v) => v[i] as f64,
        }
    }

    #[inline]
    fn tracked(&self, i: usize) -> Option<T> {
        match self {
            SweepVals::Reals(v) if v[i].is_tracked_value() => Some(v[i]),
            _ => None,
        }
    }
}

/// One distribution argument of a batched site: a scalar broadcast across
/// the sweep, or one value per element.
#[derive(Debug, Clone, Copy)]
pub enum SweepArg<'a, T: Real> {
    /// A scalar shared by every element.
    Scalar(T),
    /// One real value per element (length must equal the sweep length).
    Reals(&'a [T]),
    /// One integer value per element (length must equal the sweep length).
    Ints(&'a [i64]),
}

impl<T: Real> SweepArg<'_, T> {
    /// The per-element slice length, or `None` for a scalar broadcast.
    fn slice_len(&self) -> Option<usize> {
        match self {
            SweepArg::Scalar(_) => None,
            SweepArg::Reals(v) => Some(v.len()),
            SweepArg::Ints(v) => Some(v.len()),
        }
    }

    #[inline]
    fn value(&self, i: usize) -> f64 {
        match self {
            SweepArg::Scalar(v) => v.value(),
            SweepArg::Reals(v) => v[i].value(),
            SweepArg::Ints(v) => v[i] as f64,
        }
    }
}

/// Whether [`lpdf_sweep`] has a batched kernel (with an analytic reverse
/// rule) for this family.
pub fn supports_sweep(kind: DistKind) -> bool {
    matches!(
        kind,
        DistKind::Normal
            | DistKind::LogNormal
            | DistKind::Bernoulli
            | DistKind::BernoulliLogit
            | DistKind::Poisson
            | DistKind::PoissonLog
            | DistKind::Exponential
            | DistKind::Cauchy
            | DistKind::StudentT
            | DistKind::Beta
            | DistKind::Gamma
            | DistKind::Binomial
            | DistKind::BinomialLogit
            | DistKind::Uniform
            | DistKind::DoubleExponential
            | DistKind::InvGamma
            | DistKind::ChiSquare
    )
}

/// Whether [`lpdf_elem_partials`] has a scalar kernel for this family — the
/// sweep set plus `improper_uniform` (the comprehensive scheme's synthetic
/// prior, which never appears in a source observation loop but is scored by
/// the tape-free density programs of `gprob::dprog`).
pub fn supports_elem(kind: DistKind) -> bool {
    supports_sweep(kind) || kind == DistKind::ImproperUniform
}

/// Number of distribution arguments the kernel consumes.
pub fn sweep_arity(kind: DistKind) -> usize {
    match kind {
        DistKind::Normal
        | DistKind::LogNormal
        | DistKind::Cauchy
        | DistKind::Beta
        | DistKind::Gamma
        | DistKind::Binomial
        | DistKind::BinomialLogit
        | DistKind::Uniform
        | DistKind::DoubleExponential
        | DistKind::InvGamma
        | DistKind::ImproperUniform => 2,
        DistKind::StudentT => 3,
        _ => 1,
    }
}

/// The additive constant of the normal log density for one scale value:
/// `-½·ln(2π) - ln(sigma)`. Callers that score many elements against the
/// *same* sigma hoist this out of their loops; [`normal_lpdf_from_const`]
/// then finishes each element with exactly the association the scalar
/// kernel uses, so the hoisted evaluation is bitwise identical to calling
/// [`lpdf_elem_value`] per element.
#[inline(always)]
pub fn normal_lpdf_const(sigma: f64) -> f64 {
    let half_log_2pi = 0.5 * (2.0 * std::f64::consts::PI).ln();
    -half_log_2pi - sigma.ln()
}

/// One normal log density given the pre-hoisted constant of
/// [`normal_lpdf_const`] — the only transcendental-free piece left per
/// element (`z = (x-mu)/sigma; c - 0.5·z·z`).
#[inline(always)]
pub fn normal_lpdf_from_const(c: f64, x: f64, mu: f64, sigma: f64) -> f64 {
    let z = (x - mu) / sigma;
    c - 0.5 * z * z
}

/// The normal kernel's analytic partials alone, `(∂/∂x, ∂/∂mu, ∂/∂sigma)`,
/// skipping the log-density value (and with it the per-element `ln`).
/// Formulas match [`lpdf_elem_partials`] exactly.
#[inline(always)]
pub fn normal_partials_only(x: f64, mu: f64, sigma: f64) -> (f64, f64, f64) {
    let z = (x - mu) / sigma;
    let dmu = z / sigma;
    (-dmu, dmu, (z * z - 1.0) / sigma)
}

/// The normal family's elem kernel, shared verbatim between the scalar
/// dispatch ([`elem`]) and the lane-specialized entry points so every path
/// computes identical bits.
#[inline(always)]
fn normal_elem(x: f64, mu: f64, sigma: f64, want: bool) -> (f64, f64, [f64; 3]) {
    let lp = normal_lpdf_from_const(normal_lpdf_const(sigma), x, mu, sigma);
    if !want {
        return (lp, 0.0, [0.0; 3]);
    }
    let (dx, dmu, ds) = normal_partials_only(x, mu, sigma);
    (lp, dx, [dmu, ds, 0.0])
}

/// The Cauchy kernel's analytic partials alone, `(∂/∂x, ∂/∂loc, ∂/∂scale)`
/// — no logarithms at all (they only appear in the density value).
#[inline(always)]
fn cauchy_partials_only(x: f64, loc: f64, scale: f64) -> (f64, f64, f64) {
    let z = (x - loc) / scale;
    let u = 1.0 + z * z;
    let dx = -2.0 * z / (u * scale);
    (dx, -dx, (z * z - 1.0) / (u * scale))
}

/// The Cauchy elem kernel (see [`normal_elem`] for the sharing rationale).
#[inline(always)]
fn cauchy_elem(x: f64, loc: f64, scale: f64, want: bool) -> (f64, f64, [f64; 3]) {
    let z = (x - loc) / scale;
    let lp = -(std::f64::consts::PI).ln() - scale.ln() - (1.0 + z * z).ln();
    if !want {
        return (lp, 0.0, [0.0; 3]);
    }
    let (dx, dloc, dscale) = cauchy_partials_only(x, loc, scale);
    (lp, dx, [dloc, dscale, 0.0])
}

/// The Bernoulli-logit kernel's `∂lpdf/∂logit` alone — one sigmoid, no
/// softplus (that only feeds the density value). Out-of-support rounds to
/// zero, matching [`bernoulli_logit_elem`].
#[inline(always)]
fn bernoulli_logit_dlogit(x: f64, l: f64) -> f64 {
    let k = x.round();
    if k == 1.0 {
        special::sigmoid(-l)
    } else if k == 0.0 {
        -special::sigmoid(l)
    } else {
        0.0
    }
}

/// The Bernoulli-logit elem kernel (see [`normal_elem`]).
#[inline(always)]
fn bernoulli_logit_elem(x: f64, l: f64, want: bool) -> (f64, f64, [f64; 3]) {
    let k = x.round();
    if k == 1.0 {
        (
            -special::softplus(-l),
            0.0,
            [if want { special::sigmoid(-l) } else { 0.0 }, 0.0, 0.0],
        )
    } else if k == 0.0 {
        (
            -special::softplus(l),
            0.0,
            [if want { -special::sigmoid(l) } else { 0.0 }, 0.0, 0.0],
        )
    } else {
        (f64::NEG_INFINITY, 0.0, [0.0; 3])
    }
}

/// One element's log density plus its analytic partials, all in `f64`.
///
/// Returns `(lpdf, d lpdf/dx, [d lpdf/d argj; 3])`. Partials are computed
/// only when `want` is set (the `f64` density path skips them); elements
/// outside the support contribute `-inf` with zero partials, matching the
/// scalar path where the `-inf` is an untracked constant.
#[inline]
fn elem(kind: DistKind, x: f64, a: &[f64; 3], want: bool) -> (f64, f64, [f64; 3]) {
    let neg_inf = f64::NEG_INFINITY;
    let zero = (0.0, 0.0, [0.0; 3]);
    let half_log_2pi = 0.5 * (2.0 * std::f64::consts::PI).ln();
    match kind {
        DistKind::Normal => normal_elem(x, a[0], a[1], want),
        DistKind::LogNormal => {
            let (mu, sigma) = (a[0], a[1]);
            if x <= 0.0 {
                return (neg_inf, zero.1, zero.2);
            }
            let lx = x.ln();
            let z = (lx - mu) / sigma;
            let lp = -half_log_2pi - sigma.ln() - lx - 0.5 * z * z;
            if !want {
                return (lp, 0.0, [0.0; 3]);
            }
            let dmu = z / sigma;
            (
                lp,
                -(1.0 + z / sigma) / x,
                [dmu, (z * z - 1.0) / sigma, 0.0],
            )
        }
        DistKind::Bernoulli => {
            let p = a[0];
            let k = x.round();
            if k == 1.0 {
                (p.ln(), 0.0, [if want { 1.0 / p } else { 0.0 }, 0.0, 0.0])
            } else if k == 0.0 {
                (
                    (1.0 - p).ln(),
                    0.0,
                    [if want { -1.0 / (1.0 - p) } else { 0.0 }, 0.0, 0.0],
                )
            } else {
                (neg_inf, zero.1, zero.2)
            }
        }
        DistKind::BernoulliLogit => bernoulli_logit_elem(x, a[0], want),
        DistKind::Poisson => {
            let rate = a[0];
            let k = x.round();
            if k < 0.0 {
                return (neg_inf, zero.1, zero.2);
            }
            let lp = k * rate.ln() - rate - special::lgamma(k + 1.0);
            (lp, 0.0, [if want { k / rate - 1.0 } else { 0.0 }, 0.0, 0.0])
        }
        DistKind::PoissonLog => {
            let eta = a[0];
            let k = x.round();
            if k < 0.0 {
                return (neg_inf, zero.1, zero.2);
            }
            let lp = k * eta - eta.exp() - special::lgamma(k + 1.0);
            (lp, 0.0, [if want { k - eta.exp() } else { 0.0 }, 0.0, 0.0])
        }
        DistKind::Exponential => {
            let rate = a[0];
            if x < 0.0 {
                return (neg_inf, zero.1, zero.2);
            }
            let lp = rate.ln() - rate * x;
            if !want {
                return (lp, 0.0, [0.0; 3]);
            }
            (lp, -rate, [1.0 / rate - x, 0.0, 0.0])
        }
        DistKind::Cauchy => cauchy_elem(x, a[0], a[1], want),
        DistKind::StudentT => {
            let (nu, loc, scale) = (a[0], a[1], a[2]);
            let z = (x - loc) / scale;
            let u = 1.0 + z * z / nu;
            let lp = special::lgamma((nu + 1.0) * 0.5)
                - special::lgamma(nu * 0.5)
                - 0.5 * (nu * std::f64::consts::PI).ln()
                - scale.ln()
                - (nu + 1.0) * 0.5 * u.ln();
            if !want {
                return (lp, 0.0, [0.0; 3]);
            }
            let dz = -(nu + 1.0) * z / (nu * u);
            let dx = dz / scale;
            let dnu = 0.5 * (special::digamma((nu + 1.0) * 0.5) - special::digamma(nu * 0.5))
                - 0.5 / nu
                - 0.5 * u.ln()
                + (nu + 1.0) * z * z / (2.0 * nu * nu * u);
            (
                lp,
                dx,
                [dnu, -dx, (-1.0 + (nu + 1.0) * z * z / (nu * u)) / scale],
            )
        }
        DistKind::Beta => {
            let (a0, b0) = (a[0], a[1]);
            if !(0.0..=1.0).contains(&x) {
                return (neg_inf, zero.1, zero.2);
            }
            let log_beta = special::lgamma(a0) + special::lgamma(b0) - special::lgamma(a0 + b0);
            let lp = (a0 - 1.0) * x.ln() + (b0 - 1.0) * (1.0 - x).ln() - log_beta;
            if !want {
                return (lp, 0.0, [0.0; 3]);
            }
            let dab = special::digamma(a0 + b0);
            (
                lp,
                (a0 - 1.0) / x - (b0 - 1.0) / (1.0 - x),
                [
                    x.ln() - special::digamma(a0) + dab,
                    (1.0 - x).ln() - special::digamma(b0) + dab,
                    0.0,
                ],
            )
        }
        DistKind::Gamma => {
            let (shape, rate) = (a[0], a[1]);
            if x <= 0.0 {
                return (neg_inf, zero.1, zero.2);
            }
            let lp = shape * rate.ln() - special::lgamma(shape) + (shape - 1.0) * x.ln() - rate * x;
            if !want {
                return (lp, 0.0, [0.0; 3]);
            }
            (
                lp,
                (shape - 1.0) / x - rate,
                [
                    rate.ln() - special::digamma(shape) + x.ln(),
                    shape / rate - x,
                    0.0,
                ],
            )
        }
        DistKind::Binomial => {
            // n arrives through an untracked int (or rounded real) argument,
            // matching `dist_from_kind`'s construction; its partial is zero.
            let (n, p) = (a[0].round(), a[1]);
            let k = x.round();
            if k < 0.0 || k > n {
                return (neg_inf, zero.1, zero.2);
            }
            let log_choose =
                special::lgamma(n + 1.0) - special::lgamma(k + 1.0) - special::lgamma(n - k + 1.0);
            let lp = log_choose + k * p.ln() + (n - k) * (1.0 - p).ln();
            if !want {
                return (lp, 0.0, [0.0; 3]);
            }
            (lp, 0.0, [0.0, k / p - (n - k) / (1.0 - p), 0.0])
        }
        DistKind::BinomialLogit => {
            let (n, l) = (a[0].round(), a[1]);
            let k = x.round();
            if k < 0.0 || k > n {
                return (neg_inf, zero.1, zero.2);
            }
            let log_choose =
                special::lgamma(n + 1.0) - special::lgamma(k + 1.0) - special::lgamma(n - k + 1.0);
            let lp = log_choose - k * special::softplus(-l) - (n - k) * special::softplus(l);
            if !want {
                return (lp, 0.0, [0.0; 3]);
            }
            (lp, 0.0, [0.0, k - n * special::sigmoid(l), 0.0])
        }
        DistKind::Uniform => {
            let (lo, hi) = (a[0], a[1]);
            if x < lo || x > hi {
                return (neg_inf, zero.1, zero.2);
            }
            let lp = -((hi - lo).ln());
            if !want {
                return (lp, 0.0, [0.0; 3]);
            }
            let w = 1.0 / (hi - lo);
            (lp, 0.0, [w, -w, 0.0])
        }
        DistKind::ImproperUniform => {
            // Constant density on the (possibly unbounded) interval; the
            // partials are identically zero, matching the scalar path where
            // the 0 / -inf result is an untracked constant.
            let (lo, hi) = (a[0], a[1]);
            if x < lo || x > hi {
                (neg_inf, zero.1, zero.2)
            } else {
                (0.0, 0.0, [0.0; 3])
            }
        }
        DistKind::DoubleExponential => {
            let (loc, scale) = (a[0], a[1]);
            let lp = -(2.0 * scale).ln() - (x - loc).abs() / scale;
            if !want {
                return (lp, 0.0, [0.0; 3]);
            }
            // Sub-gradient 0 at x == loc, exactly as `Var::abs` records it.
            let s = if x > loc {
                1.0
            } else if x < loc {
                -1.0
            } else {
                0.0
            };
            (
                lp,
                -s / scale,
                [
                    s / scale,
                    -1.0 / scale + (x - loc).abs() / (scale * scale),
                    0.0,
                ],
            )
        }
        DistKind::InvGamma => {
            let (shape, scale) = (a[0], a[1]);
            if x <= 0.0 {
                return (neg_inf, zero.1, zero.2);
            }
            let lp =
                shape * scale.ln() - special::lgamma(shape) - (shape + 1.0) * x.ln() - scale / x;
            if !want {
                return (lp, 0.0, [0.0; 3]);
            }
            (
                lp,
                -(shape + 1.0) / x + scale / (x * x),
                [
                    scale.ln() - special::digamma(shape) - x.ln(),
                    shape / scale - 1.0 / x,
                    0.0,
                ],
            )
        }
        DistKind::ChiSquare => {
            let nu = a[0];
            if x <= 0.0 {
                return (neg_inf, zero.1, zero.2);
            }
            let half_nu = nu * 0.5;
            let lp = -half_nu * 2f64.ln() - special::lgamma(half_nu) + (half_nu - 1.0) * x.ln()
                - 0.5 * x;
            if !want {
                return (lp, 0.0, [0.0; 3]);
            }
            (
                lp,
                (half_nu - 1.0) / x - 0.5,
                [
                    -0.5 * 2f64.ln() - 0.5 * special::digamma(half_nu) + 0.5 * x.ln(),
                    0.0,
                    0.0,
                ],
            )
        }
        _ => (f64::NAN, 0.0, [0.0; 3]),
    }
}

/// One element's log density and analytic partials, public form: returns
/// `(lpdf, ∂lpdf/∂x, [∂lpdf/∂argⱼ; 3])`, or `None` for families without a
/// kernel ([`supports_elem`] is the guard). This is the scalar reverse rule
/// shared by the fused tape nodes ([`lpdf_sweep`]) and the tape-free density
/// programs of `gprob::dprog`, which evaluate value + gradient with no tape
/// at all.
#[inline]
pub fn lpdf_elem_partials(kind: DistKind, x: f64, args: &[f64; 3]) -> Option<(f64, f64, [f64; 3])> {
    if !supports_elem(kind) {
        return None;
    }
    Some(elem(kind, x, args, true))
}

/// One element's log density only (no partials) — the forward half of
/// [`lpdf_elem_partials`].
#[inline]
pub fn lpdf_elem_value(kind: DistKind, x: f64, args: &[f64; 3]) -> Option<f64> {
    if !supports_elem(kind) {
        return None;
    }
    Some(elem(kind, x, args, false).0)
}

/// Lane-widened form of [`lpdf_elem_value`]: scores `L` independent points
/// of the *same* element position in one call. `xs[l]` is lane `l`'s
/// observation and `args[j][l]` lane `l`'s `j`-th distribution argument, so
/// a struct-of-arrays register file (`gprob::dprog`'s lane evaluation) feeds
/// its rows straight in. Each lane runs exactly the scalar kernel — same
/// formulas, same order — so lane `l`'s result is bitwise the value a
/// single-point evaluation of that lane would produce.
#[inline]
pub fn lpdf_elem_value_lanes<const L: usize>(
    kind: DistKind,
    xs: &[f64; L],
    args: &[[f64; L]; 3],
) -> Option<[f64; L]> {
    if !supports_elem(kind) {
        return None;
    }
    let mut out = [0.0; L];
    // Dispatch once for the hot families; each lane still runs exactly the
    // scalar kernel (the shared `*_elem` functions), so the specialization
    // only hoists the family match out of the lane loop.
    match kind {
        DistKind::Normal => {
            for l in 0..L {
                out[l] = normal_elem(xs[l], args[0][l], args[1][l], false).0;
            }
        }
        DistKind::Cauchy => {
            for l in 0..L {
                out[l] = cauchy_elem(xs[l], args[0][l], args[1][l], false).0;
            }
        }
        DistKind::BernoulliLogit => {
            for l in 0..L {
                out[l] = bernoulli_logit_elem(xs[l], args[0][l], false).0;
            }
        }
        _ => {
            for l in 0..L {
                let a = [args[0][l], args[1][l], args[2][l]];
                out[l] = elem(kind, xs[l], &a, false).0;
            }
        }
    }
    Some(out)
}

/// Lane-widened form of [`lpdf_elem_partials`]: `L` points' log densities
/// and analytic partials in one call, returned lane-major as
/// `(lpdf[l], ∂lpdf/∂x[l], [∂lpdf/∂argⱼ[l]; 3])`. Lane `l` computes exactly
/// what a scalar [`lpdf_elem_partials`] call on lane `l`'s inputs would.
#[inline]
#[allow(clippy::type_complexity)]
pub fn lpdf_elem_partials_lanes<const L: usize>(
    kind: DistKind,
    xs: &[f64; L],
    args: &[[f64; L]; 3],
) -> Option<([f64; L], [f64; L], [[f64; L]; 3])> {
    if !supports_elem(kind) {
        return None;
    }
    let mut lp = [0.0; L];
    let mut dx = [0.0; L];
    let mut dp = [[0.0; L]; 3];
    let mut store = |l: usize, v: f64, d: f64, p: [f64; 3]| {
        lp[l] = v;
        dx[l] = d;
        dp[0][l] = p[0];
        dp[1][l] = p[1];
        dp[2][l] = p[2];
    };
    match kind {
        DistKind::Normal => {
            for l in 0..L {
                let (v, d, p) = normal_elem(xs[l], args[0][l], args[1][l], true);
                store(l, v, d, p);
            }
        }
        DistKind::Cauchy => {
            for l in 0..L {
                let (v, d, p) = cauchy_elem(xs[l], args[0][l], args[1][l], true);
                store(l, v, d, p);
            }
        }
        DistKind::BernoulliLogit => {
            for l in 0..L {
                let (v, d, p) = bernoulli_logit_elem(xs[l], args[0][l], true);
                store(l, v, d, p);
            }
        }
        _ => {
            for l in 0..L {
                let a = [args[0][l], args[1][l], args[2][l]];
                let (v, d, p) = elem(kind, xs[l], &a, true);
                store(l, v, d, p);
            }
        }
    }
    Some((lp, dx, dp))
}

/// Lane-widened analytic partials **without** the log-density value — the
/// reverse sweeps of `gprob::dprog` never consume it, and for the hot
/// families the value is where the transcendentals live (`ln` for normal
/// and Cauchy, `softplus` for Bernoulli-logit). Partial formulas are
/// exactly [`lpdf_elem_partials`]'s, so every adjoint produced here is
/// bitwise the one the full kernel computes; other families fall back to
/// the full kernel and simply discard the value.
#[inline]
#[allow(clippy::type_complexity)]
pub fn lpdf_elem_partials_only_lanes<const L: usize>(
    kind: DistKind,
    xs: &[f64; L],
    args: &[[f64; L]; 3],
) -> Option<([f64; L], [[f64; L]; 3])> {
    if !supports_elem(kind) {
        return None;
    }
    let mut dx = [0.0; L];
    let mut dp = [[0.0; L]; 3];
    match kind {
        DistKind::Normal => {
            for l in 0..L {
                let (d, dmu, ds) = normal_partials_only(xs[l], args[0][l], args[1][l]);
                dx[l] = d;
                dp[0][l] = dmu;
                dp[1][l] = ds;
            }
        }
        DistKind::Cauchy => {
            for l in 0..L {
                let (d, dloc, dscale) = cauchy_partials_only(xs[l], args[0][l], args[1][l]);
                dx[l] = d;
                dp[0][l] = dloc;
                dp[1][l] = dscale;
            }
        }
        DistKind::BernoulliLogit => {
            for l in 0..L {
                dp[0][l] = bernoulli_logit_dlogit(xs[l], args[0][l]);
            }
        }
        _ => {
            for l in 0..L {
                let a = [args[0][l], args[1][l], args[2][l]];
                let (_, d, p) = elem(kind, xs[l], &a, true);
                dx[l] = d;
                dp[0][l] = p[0];
                dp[1][l] = p[1];
                dp[2][l] = p[2];
            }
        }
    }
    Some((dx, dp))
}

/// Argument operands pre-resolved for the `f64` hot loops: scalars collapse
/// to their value once, per-element slices are cut to exactly the sweep
/// length up front. The per-element loops then index windows whose length
/// the optimizer has already compared against the loop bound, so the bounds
/// checks vanish from the kernels.
#[derive(Clone, Copy)]
enum ArgWindow<'a, T: Real> {
    Scalar(f64),
    Reals(&'a [T]),
    Ints(&'a [i64]),
}

impl<T: Real> ArgWindow<'_, T> {
    #[inline]
    fn value(&self, i: usize) -> f64 {
        match self {
            ArgWindow::Scalar(v) => *v,
            ArgWindow::Reals(v) => v[i].value(),
            ArgWindow::Ints(v) => v[i] as f64,
        }
    }
}

/// Cuts every per-element argument to `[..n]` (validated beforehand) and
/// resolves scalar broadcasts. Slots beyond `args.len()` read as 0.0, like
/// the untouched tail of the old reused `abuf`.
#[inline]
fn arg_windows<'a, T: Real>(args: &[SweepArg<'a, T>], n: usize) -> [ArgWindow<'a, T>; 3] {
    let mut out = [ArgWindow::Scalar(0.0); 3];
    for (j, a) in args.iter().enumerate() {
        out[j] = match a {
            SweepArg::Scalar(v) => ArgWindow::Scalar(v.value()),
            SweepArg::Reals(v) => ArgWindow::Reals(&v[..n]),
            SweepArg::Ints(v) => ArgWindow::Ints(&v[..n]),
        };
    }
    out
}

/// An adjoint accumulation target for one operand of a batched sweep.
pub enum AdjSink<'a> {
    /// The operand needs no adjoint (untracked data).
    Skip,
    /// A scalar broadcast operand: partials sum over the sweep.
    Scalar(&'a mut f64),
    /// A per-element operand: one adjoint slot per element.
    Elems(&'a mut [f64]),
}

impl AdjSink<'_> {
    #[inline]
    fn add(&mut self, i: usize, v: f64) {
        match self {
            AdjSink::Skip => {}
            AdjSink::Scalar(s) => **s += v,
            AdjSink::Elems(e) => e[i] += v,
        }
    }
}

/// The reverse rule of [`lpdf_sweep`] callable without any tape `Var`s: for
/// every element, accumulates `seed · ∂lpdf/∂(operand)` into the caller's
/// adjoint sinks (`+=`, so fan-in composes). `seed` is the adjoint of the
/// sweep's summed log density (1.0 when the sweep feeds the log density
/// directly).
///
/// The partials are exactly the ones [`lpdf_sweep`] records on its fused tape
/// node — this entry point exists so backends that keep no tape (the
/// `gprob::dprog` flat density programs) reuse the identical formulas.
///
/// # Errors
/// Same argument validation as [`lpdf_sweep`] (plus `improper_uniform`,
/// whose partials are identically zero).
pub fn lpdf_sweep_adjoint(
    kind: DistKind,
    xs: SweepVals<'_, f64>,
    args: &[SweepArg<'_, f64>],
    seed: f64,
    x_sink: &mut AdjSink<'_>,
    arg_sinks: &mut [AdjSink<'_>; 3],
) -> Result<(), DistError> {
    if !supports_elem(kind) {
        return Err(DistError::new(format!(
            "{}: no batched sweep kernel",
            kind.name()
        )));
    }
    let k = sweep_arity(kind);
    if args.len() < k {
        return Err(DistError::new(format!(
            "{}: expected {k} arguments, got {}",
            kind.name(),
            args.len()
        )));
    }
    let args = &args[..k];
    let n = xs.len();
    for a in args {
        if let Some(len) = a.slice_len() {
            if len != n {
                return Err(DistError::new(format!(
                    "broadcast length mismatch in {}: {len} vs {n}",
                    kind.name()
                )));
            }
        }
    }
    let aw = arg_windows(args, n);
    let mut body = |i: usize, xv: f64| {
        let abuf = [aw[0].value(i), aw[1].value(i), aw[2].value(i)];
        let (_, dx, dp) = elem(kind, xv, &abuf, true);
        x_sink.add(i, dx * seed);
        for (j, sink) in arg_sinks.iter_mut().enumerate().take(k) {
            sink.add(i, dp[j] * seed);
        }
    };
    match xs {
        SweepVals::Reals(v) => {
            for (i, x) in v[..n].iter().enumerate() {
                body(i, x.value());
            }
        }
        SweepVals::Ints(v) => {
            for (i, &x) in v[..n].iter().enumerate() {
                body(i, x as f64);
            }
        }
    }
    Ok(())
}

/// Sum of element-wise log densities of a batched observation site, with
/// the analytic fused reverse rule on the gradient path.
///
/// Semantically identical to scoring each element through
/// [`crate::dist_from_kind`] + [`crate::Dist::lpdf`] and summing in element
/// order; for `T = f64` no gradient bookkeeping happens at all, and for
/// tracked scalars the result is one fused tape node.
///
/// # Errors
/// Reports unsupported families ([`supports_sweep`] is the caller's guard),
/// missing arguments, and per-element argument slices whose length does not
/// match the sweep length.
pub fn lpdf_sweep<T: Real>(
    kind: DistKind,
    xs: SweepVals<'_, T>,
    args: &[SweepArg<'_, T>],
) -> Result<T, DistError> {
    if !supports_sweep(kind) {
        return Err(DistError::new(format!(
            "{}: no batched sweep kernel",
            kind.name()
        )));
    }
    let k = sweep_arity(kind);
    if args.len() < k {
        return Err(DistError::new(format!(
            "{}: expected {k} arguments, got {}",
            kind.name(),
            args.len()
        )));
    }
    let args = &args[..k];
    let n = xs.len();
    for a in args {
        if let Some(len) = a.slice_len() {
            if len != n {
                return Err(DistError::new(format!(
                    "broadcast length mismatch in {}: {len} vs {n}",
                    kind.name()
                )));
            }
        }
    }

    let mut abuf = [0f64; 3];
    let mut sum = 0.0f64;

    if !T::TRACKED {
        // f64 fast path: zipped slice windows instead of per-element indexed
        // access — same formulas and accumulation order, no bounds checks.
        let aw = arg_windows(args, n);
        match xs {
            SweepVals::Reals(v) => {
                for (i, x) in v[..n].iter().enumerate() {
                    let ab = [aw[0].value(i), aw[1].value(i), aw[2].value(i)];
                    sum += elem(kind, x.value(), &ab, false).0;
                }
            }
            SweepVals::Ints(v) => {
                for (i, &x) in v[..n].iter().enumerate() {
                    let ab = [aw[0].value(i), aw[1].value(i), aw[2].value(i)];
                    sum += elem(kind, x as f64, &ab, false).0;
                }
            }
        }
        return Ok(T::from_f64(sum));
    }

    // Gradient path: accumulate one (parent, partial) pair per tracked
    // input. Scalar-broadcast arguments get one slot whose partial sums over
    // the sweep; per-element inputs get one slot per tracked element.
    let mut parents: Vec<T> = Vec::with_capacity(k + 2 * n);
    let mut partials: Vec<f64> = Vec::with_capacity(k + 2 * n);
    let mut scalar_slot = [usize::MAX; 3];
    for (j, a) in args.iter().enumerate() {
        if let SweepArg::Scalar(v) = a {
            if v.is_tracked_value() {
                scalar_slot[j] = parents.len();
                parents.push(*v);
                partials.push(0.0);
            }
        }
    }
    for i in 0..n {
        for (j, a) in args.iter().enumerate() {
            abuf[j] = a.value(i);
        }
        let (lp, dx, dp) = elem(kind, xs.value(i), &abuf, true);
        sum += lp;
        if let Some(p) = xs.tracked(i) {
            parents.push(p);
            partials.push(dx);
        }
        for (j, a) in args.iter().enumerate() {
            match a {
                SweepArg::Scalar(_) => {
                    let s = scalar_slot[j];
                    if s != usize::MAX {
                        partials[s] += dp[j];
                    }
                }
                SweepArg::Reals(v) => {
                    if v[i].is_tracked_value() {
                        parents.push(v[i]);
                        partials.push(dp[j]);
                    }
                }
                SweepArg::Ints(_) => {}
            }
        }
    }
    Ok(T::fused(sum, &parents, &partials))
}

/// Per-element log densities of a batched site, written into `out` — the
/// pointwise form of [`lpdf_sweep`], used to collect log-likelihood rows
/// (`log_lik[i] = dist_lpdf(y[i] | ...)`) for model criticism without a
/// per-element distribution construction or interpreter dispatch.
///
/// Evaluation is plain `f64` (generated quantities never carry gradients).
/// Element `i` of `out` receives exactly the value the scalar path computes
/// for `dist_lpdf(xs[i] | args[i])`.
///
/// # Errors
/// Same argument validation as [`lpdf_sweep`], plus an error when `out` is
/// not exactly the sweep length.
pub fn lpdf_elems(
    kind: DistKind,
    xs: SweepVals<'_, f64>,
    args: &[SweepArg<'_, f64>],
    out: &mut [f64],
) -> Result<(), DistError> {
    if !supports_sweep(kind) {
        return Err(DistError::new(format!(
            "{}: no batched sweep kernel",
            kind.name()
        )));
    }
    let k = sweep_arity(kind);
    if args.len() < k {
        return Err(DistError::new(format!(
            "{}: expected {k} arguments, got {}",
            kind.name(),
            args.len()
        )));
    }
    let args = &args[..k];
    let n = xs.len();
    if out.len() != n {
        return Err(DistError::new(format!(
            "lpdf_elems output length mismatch: {} vs {n}",
            out.len()
        )));
    }
    for a in args {
        if let Some(len) = a.slice_len() {
            if len != n {
                return Err(DistError::new(format!(
                    "broadcast length mismatch in {}: {len} vs {n}",
                    kind.name()
                )));
            }
        }
    }
    let aw = arg_windows(args, n);
    match xs {
        SweepVals::Reals(v) => {
            for (i, (slot, x)) in out.iter_mut().zip(&v[..n]).enumerate() {
                let ab = [aw[0].value(i), aw[1].value(i), aw[2].value(i)];
                *slot = elem(kind, x.value(), &ab, false).0;
            }
        }
        SweepVals::Ints(v) => {
            for (i, (slot, &x)) in out.iter_mut().zip(&v[..n]).enumerate() {
                let ab = [aw[0].value(i), aw[1].value(i), aw[2].value(i)];
                *slot = elem(kind, x as f64, &ab, false).0;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{dist_from_kind, DistArg};
    use minidiff::{grad, tape, Var};

    const KINDS: [DistKind; 17] = [
        DistKind::Normal,
        DistKind::LogNormal,
        DistKind::Bernoulli,
        DistKind::BernoulliLogit,
        DistKind::Poisson,
        DistKind::PoissonLog,
        DistKind::Exponential,
        DistKind::Cauchy,
        DistKind::StudentT,
        DistKind::Beta,
        DistKind::Gamma,
        DistKind::Binomial,
        DistKind::BinomialLogit,
        DistKind::Uniform,
        DistKind::DoubleExponential,
        DistKind::InvGamma,
        DistKind::ChiSquare,
    ];

    /// In-support observations and arguments for each kind.
    fn case(kind: DistKind) -> (Vec<f64>, Vec<f64>) {
        match kind {
            DistKind::Normal => (vec![0.3, -1.2, 2.5, 0.0], vec![0.4, 1.3]),
            DistKind::LogNormal => (vec![0.7, 2.1, 0.05, 3.3], vec![-0.2, 0.8]),
            DistKind::Bernoulli => (vec![1.0, 0.0, 1.0, 1.0], vec![0.37]),
            DistKind::BernoulliLogit => (vec![0.0, 1.0, 0.0, 1.0], vec![-0.6]),
            DistKind::Poisson => (vec![0.0, 3.0, 7.0, 1.0], vec![2.4]),
            DistKind::PoissonLog => (vec![2.0, 0.0, 5.0, 1.0], vec![0.9]),
            DistKind::Exponential => (vec![0.1, 2.2, 0.9, 4.0], vec![1.7]),
            DistKind::Cauchy => (vec![0.0, -3.0, 1.5, 9.0], vec![0.4, 2.1]),
            DistKind::StudentT => (vec![0.2, -1.0, 4.0, 0.9], vec![4.0, 0.5, 1.8]),
            DistKind::Beta => (vec![0.2, 0.55, 0.9, 0.31], vec![2.0, 3.5]),
            DistKind::Gamma => (vec![0.4, 2.2, 1.1, 5.0], vec![3.0, 2.0]),
            DistKind::Binomial => (vec![3.0, 0.0, 7.0, 10.0], vec![10.0, 0.35]),
            DistKind::BinomialLogit => (vec![2.0, 9.0, 5.0, 0.0], vec![10.0, -0.4]),
            DistKind::Uniform => (vec![0.2, 1.9, 0.8, 1.1], vec![-0.5, 2.5]),
            DistKind::DoubleExponential => (vec![0.3, -2.1, 1.4, 0.0], vec![0.2, 1.3]),
            DistKind::InvGamma => (vec![0.6, 2.4, 1.0, 4.2], vec![3.0, 2.5]),
            DistKind::ChiSquare => (vec![0.5, 2.0, 4.8, 1.3], vec![3.0]),
            other => panic!("no sweep test case for {}", other.name()),
        }
    }

    fn scalar_sum(kind: DistKind, xs: &[f64], a: &[f64]) -> f64 {
        let args: Vec<DistArg<f64>> = a.iter().map(|&v| DistArg::Scalar(v)).collect();
        let d = dist_from_kind(kind, &args).unwrap();
        xs.iter().map(|&x| d.lpdf(x).unwrap()).sum()
    }

    #[test]
    fn sweep_values_match_the_scalar_path_for_every_kernel() {
        for kind in KINDS {
            let (xs, a) = case(kind);
            let sargs: Vec<SweepArg<f64>> = a.iter().map(|&v| SweepArg::Scalar(v)).collect();
            let got = lpdf_sweep(kind, SweepVals::Reals(&xs), &sargs).unwrap();
            let want = scalar_sum(kind, &xs, &a);
            assert!(
                (got - want).abs() < 1e-12,
                "{}: {got} vs {want}",
                kind.name()
            );
        }
    }

    #[test]
    fn sweep_gradients_match_the_tape_for_scalar_args() {
        for kind in KINDS {
            let (xs, a) = case(kind);
            // Fused path.
            tape::reset();
            let avars: Vec<Var> = a.iter().map(|&v| Var::new(v)).collect();
            let sargs: Vec<SweepArg<Var>> = avars.iter().map(|&v| SweepArg::Scalar(v)).collect();
            let xvars: Vec<Var> = xs.iter().map(|&x| Var::constant(x)).collect();
            let fused = lpdf_sweep(kind, SweepVals::Reals(&xvars), &sargs).unwrap();
            let fused_grad = grad(fused, &avars);
            // Scalar tape path.
            tape::reset();
            let avars2: Vec<Var> = a.iter().map(|&v| Var::new(v)).collect();
            let dargs: Vec<DistArg<Var>> = avars2.iter().map(|&v| DistArg::Scalar(v)).collect();
            let d = dist_from_kind(kind, &dargs).unwrap();
            let mut acc = Var::constant(0.0);
            for &x in &xs {
                acc = acc + d.lpdf(Var::constant(x)).unwrap();
            }
            let tape_grad = grad(acc, &avars2);
            assert!(
                (fused.value() - acc.value()).abs() < 1e-12,
                "{}: primal {} vs {}",
                kind.name(),
                fused.value(),
                acc.value()
            );
            for (i, (g1, g2)) in fused_grad.iter().zip(&tape_grad).enumerate() {
                let tol = 1e-10 * (1.0 + g1.abs().max(g2.abs()));
                assert!(
                    (g1 - g2).abs() < tol,
                    "{} arg {i}: fused {g1} vs tape {g2}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn per_element_arguments_and_tracked_observations_get_gradients() {
        // y[i] ~ normal(mu[i], sigma) with both mu and y tracked.
        let ys = [0.5, -0.2, 1.7];
        let mus = [0.0, 0.3, 1.0];
        tape::reset();
        let yv: Vec<Var> = ys.iter().map(|&y| Var::new(y)).collect();
        let muv: Vec<Var> = mus.iter().map(|&m| Var::new(m)).collect();
        let sigma = Var::new(0.8);
        let fused = lpdf_sweep(
            DistKind::Normal,
            SweepVals::Reals(&yv),
            &[SweepArg::Reals(&muv), SweepArg::Scalar(sigma)],
        )
        .unwrap();
        let mut wrt = yv.clone();
        wrt.extend(&muv);
        wrt.push(sigma);
        let fused_grad = grad(fused, &wrt);
        // Reference: scalar tape.
        tape::reset();
        let yv2: Vec<Var> = ys.iter().map(|&y| Var::new(y)).collect();
        let muv2: Vec<Var> = mus.iter().map(|&m| Var::new(m)).collect();
        let sigma2 = Var::new(0.8);
        let mut acc = Var::constant(0.0);
        for (y, m) in yv2.iter().zip(&muv2) {
            let d = crate::Dist::Normal {
                mu: *m,
                sigma: sigma2,
            };
            acc = acc + d.lpdf(*y).unwrap();
        }
        let mut wrt2 = yv2.clone();
        wrt2.extend(&muv2);
        wrt2.push(sigma2);
        let tape_grad = grad(acc, &wrt2);
        assert!((fused.value() - acc.value()).abs() < 1e-12);
        for (g1, g2) in fused_grad.iter().zip(&tape_grad) {
            assert!((g1 - g2).abs() < 1e-10, "{g1} vs {g2}");
        }
    }

    #[test]
    fn int_observations_and_length_mismatches() {
        // bernoulli over an int slice.
        let ks = [1i64, 0, 1, 1, 0];
        let p = 0.42f64;
        let got = lpdf_sweep(
            DistKind::Bernoulli,
            SweepVals::<f64>::Ints(&ks),
            &[SweepArg::Scalar(p)],
        )
        .unwrap();
        let want: f64 = ks
            .iter()
            .map(|&k| if k == 1 { p.ln() } else { (1.0 - p).ln() })
            .sum();
        assert!((got - want).abs() < 1e-12);
        // Mismatched per-element argument length is an error.
        let xs = [0.1f64, 0.2];
        let mus = [0.0f64; 3];
        let err = lpdf_sweep(
            DistKind::Normal,
            SweepVals::Reals(&xs),
            &[SweepArg::Reals(&mus), SweepArg::Scalar(1.0)],
        )
        .unwrap_err();
        assert!(err.to_string().contains("length mismatch"));
        // Unsupported families are refused (callers guard with supports_sweep).
        assert!(!supports_sweep(DistKind::Categorical));
        let err = lpdf_sweep(
            DistKind::Categorical,
            SweepVals::Reals(&xs),
            &[SweepArg::Scalar(0.5)],
        );
        assert!(err.is_err());
        // improper_uniform has an elem kernel (for the tape-free density
        // programs) but is not a sweep-lowering family.
        assert!(supports_elem(DistKind::ImproperUniform));
        assert!(!supports_sweep(DistKind::ImproperUniform));
    }

    #[test]
    fn adjoint_entry_matches_the_fused_tape_gradients() {
        // y[i] ~ normal(mu[i], sigma): compare lpdf_sweep_adjoint (no Var
        // anywhere) against the fused tape node's gradients.
        let ys = [0.5, -0.2, 1.7];
        let mus = [0.0, 0.3, 1.0];
        let sigma = 0.8;
        tape::reset();
        let yv: Vec<Var> = ys.iter().map(|&y| Var::new(y)).collect();
        let muv: Vec<Var> = mus.iter().map(|&m| Var::new(m)).collect();
        let sv = Var::new(sigma);
        let fused = lpdf_sweep(
            DistKind::Normal,
            SweepVals::Reals(&yv),
            &[SweepArg::Reals(&muv), SweepArg::Scalar(sv)],
        )
        .unwrap();
        let mut wrt = yv.clone();
        wrt.extend(&muv);
        wrt.push(sv);
        let tape_grad = grad(fused, &wrt);
        // Tape-free reverse with a non-unit seed (adjoint composition).
        let seed = 1.7;
        let mut dx = [0.0f64; 3];
        let mut dmu = [0.0f64; 3];
        let mut dsigma = 0.0f64;
        lpdf_sweep_adjoint(
            DistKind::Normal,
            SweepVals::Reals(&ys),
            &[SweepArg::Reals(&mus), SweepArg::Scalar(sigma)],
            seed,
            &mut AdjSink::Elems(&mut dx),
            &mut [
                AdjSink::Elems(&mut dmu),
                AdjSink::Scalar(&mut dsigma),
                AdjSink::Skip,
            ],
        )
        .unwrap();
        for i in 0..3 {
            assert!((dx[i] - seed * tape_grad[i]).abs() < 1e-12);
            assert!((dmu[i] - seed * tape_grad[3 + i]).abs() < 1e-12);
        }
        assert!((dsigma - seed * tape_grad[6]).abs() < 1e-12);
        // The public elem entry agrees with the sweep decomposition.
        let (lp, d_x, d_args) =
            lpdf_elem_partials(DistKind::Normal, ys[0], &[mus[0], sigma, 0.0]).unwrap();
        assert!(
            (lp - lpdf_elem_value(DistKind::Normal, ys[0], &[mus[0], sigma, 0.0]).unwrap()).abs()
                < 1e-15
        );
        assert!((d_x * seed - dx[0]).abs() < 1e-12);
        assert!((d_args[0] * seed - dmu[0]).abs() < 1e-12);
        // Unsupported families report None.
        assert!(lpdf_elem_partials(DistKind::Dirichlet, 0.5, &[1.0, 1.0, 0.0]).is_none());
    }

    #[test]
    fn per_element_lpdfs_match_the_scalar_path() {
        for kind in KINDS {
            let (xs, a) = case(kind);
            let sargs: Vec<SweepArg<f64>> = a.iter().map(|&v| SweepArg::Scalar(v)).collect();
            let mut out = vec![0.0; xs.len()];
            lpdf_elems(kind, SweepVals::Reals(&xs), &sargs, &mut out).unwrap();
            let dargs: Vec<DistArg<f64>> = a.iter().map(|&v| DistArg::Scalar(v)).collect();
            let d = dist_from_kind(kind, &dargs).unwrap();
            for (i, (&x, &got)) in xs.iter().zip(&out).enumerate() {
                let want = d.lpdf(x).unwrap();
                assert!(
                    (got - want).abs() < 1e-12,
                    "{} elem {i}: {got} vs {want}",
                    kind.name()
                );
            }
            // Sum agrees with the fused kernel.
            let total = lpdf_sweep(kind, SweepVals::Reals(&xs), &sargs).unwrap();
            let sum: f64 = out.iter().sum();
            assert!((total - sum).abs() < 1e-12);
        }
        // Output length is validated.
        let xs = [0.1f64, 0.2];
        let mut short = vec![0.0; 1];
        let err = lpdf_elems(
            DistKind::Exponential,
            SweepVals::Reals(&xs),
            &[SweepArg::Scalar(1.0)],
            &mut short,
        )
        .unwrap_err();
        assert!(err.to_string().contains("length mismatch"));
    }

    #[test]
    fn binomial_kernels_take_per_element_trial_counts() {
        // y[i] ~ binomial(n[i], p): n as an int slice, p tracked.
        let ns = [5i64, 9, 12, 7];
        let ks = [2i64, 9, 4, 0];
        tape::reset();
        let p = Var::new(0.4);
        let fused = lpdf_sweep(
            DistKind::Binomial,
            SweepVals::<Var>::Ints(&ks),
            &[SweepArg::Ints(&ns), SweepArg::Scalar(p)],
        )
        .unwrap();
        let fused_grad = grad(fused, &[p]);
        tape::reset();
        let p2 = Var::new(0.4);
        let mut acc = Var::constant(0.0);
        for (&n, &k) in ns.iter().zip(&ks) {
            let d = crate::Dist::Binomial { n, p: p2 };
            acc = acc + d.lpdf(Var::constant(k as f64)).unwrap();
        }
        let tape_grad = grad(acc, &[p2]);
        assert!((fused.value() - acc.value()).abs() < 1e-12);
        assert!((fused_grad[0] - tape_grad[0]).abs() < 1e-10);
    }

    #[test]
    fn out_of_support_elements_are_neg_infinity_with_zero_partials() {
        tape::reset();
        let rate = Var::new(1.3);
        let xs = [0.5f64, -1.0, 2.0];
        let xv: Vec<Var> = xs.iter().map(|&x| Var::constant(x)).collect();
        let lp = lpdf_sweep(
            DistKind::Exponential,
            SweepVals::Reals(&xv),
            &[SweepArg::Scalar(rate)],
        )
        .unwrap();
        assert_eq!(lp.value(), f64::NEG_INFINITY);
        // The in-support elements still contribute their partials: the tape
        // path behaves the same (the -inf term is an untracked constant).
        let g = grad(lp, &[rate]);
        let want = (1.0 / 1.3 - 0.5) + (1.0 / 1.3 - 2.0);
        assert!((g[0] - want).abs() < 1e-12, "{} vs {want}", g[0]);
    }

    #[test]
    fn empty_sweeps_score_zero() {
        let xs: [f64; 0] = [];
        let lp = lpdf_sweep(
            DistKind::Normal,
            SweepVals::Reals(&xs),
            &[SweepArg::Scalar(0.0), SweepArg::Scalar(1.0)],
        )
        .unwrap();
        assert_eq!(lp, 0.0);
    }
}
