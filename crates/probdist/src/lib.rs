//! `probdist` — probability distributions and constraint transforms.
//!
//! This crate is the distribution library shared by every runtime in the
//! workspace: the GProb interpreter (Pyro/NumPyro analog), the baseline Stan
//! semantics interpreter, and the variational-inference guides. It plays the
//! role of (the used subset of) the Stan math library and of Pyro's
//! `distributions` module in the original paper.
//!
//! * [`Dist`] — a runtime distribution value parameterized by a
//!   [`minidiff::Real`] scalar, with log-density ([`Dist::lpdf`],
//!   [`Dist::lpdf_vec`]), sampling ([`Dist::sample`]) and support queries.
//! * [`Constraint`] / [`transform`] — Stan-style constrained-to-unconstrained
//!   reparameterizations with log-Jacobian corrections, used so that HMC
//!   explores an unconstrained space exactly as CmdStan does.
//! * [`sampling`] — primitive samplers (Box–Muller normal, Marsaglia–Tsang
//!   gamma, …) built only on [`rand`]'s uniform generator.
//!
//! # Example
//!
//! ```
//! use probdist::Dist;
//! let d: Dist<f64> = Dist::normal(0.0, 1.0);
//! let lp = d.lpdf(0.0).unwrap();
//! assert!((lp + 0.9189385332046727).abs() < 1e-12);
//! ```

pub mod dist;
pub mod ffi;
pub mod sampling;
pub mod sweep;
pub mod transform;

pub use dist::{dist_from_kind, dist_from_name, Dist, DistError, DistKind, SampleValue, Support};
pub use sweep::{
    lpdf_elem_partials, lpdf_elem_partials_lanes, lpdf_elem_partials_only_lanes, lpdf_elem_value,
    lpdf_elem_value_lanes, lpdf_elems, lpdf_sweep, lpdf_sweep_adjoint, normal_lpdf_const,
    normal_lpdf_from_const, normal_partials_only, supports_elem, supports_sweep, sweep_arity,
    AdjSink, SweepArg, SweepVals,
};
pub use transform::Constraint;
