//! Primitive samplers built on top of a uniform random number generator.
//!
//! `rand` 0.8 only ships uniform generation without the `rand_distr`
//! companion crate, so the non-uniform samplers needed by the generative
//! runtime (prior simulation, synthetic data generation, initialization) are
//! implemented here from first principles.

use rand::Rng;

/// Standard normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal draw with location and scale.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * standard_normal(rng)
}

/// Gamma draw (shape/rate parameterization) using Marsaglia–Tsang, with the
/// usual boost for shape < 1.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, rate: f64) -> f64 {
    assert!(
        shape > 0.0 && rate > 0.0,
        "gamma requires positive parameters"
    );
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0, rate) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v / rate;
        }
    }
}

/// Beta draw from two gamma draws.
pub fn beta<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64) -> f64 {
    let x = gamma(rng, a, 1.0);
    let y = gamma(rng, b, 1.0);
    x / (x + y)
}

/// Exponential draw with the given rate.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Cauchy draw with location and scale.
pub fn cauchy<R: Rng + ?Sized>(rng: &mut R, loc: f64, scale: f64) -> f64 {
    let u: f64 = rng.gen::<f64>() - 0.5;
    loc + scale * (std::f64::consts::PI * u).tan()
}

/// Student-t draw with `nu` degrees of freedom, location and scale.
pub fn student_t<R: Rng + ?Sized>(rng: &mut R, nu: f64, loc: f64, scale: f64) -> f64 {
    let z = standard_normal(rng);
    let g = gamma(rng, nu / 2.0, 0.5); // chi^2(nu)
    loc + scale * z / (g / nu).sqrt()
}

/// Poisson draw. Knuth's method for small rates, normal approximation with
/// rejection of negatives for large rates.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> i64 {
    if rate <= 0.0 {
        return 0;
    }
    if rate > 30.0 {
        let x = normal(rng, rate, rate.sqrt()).round();
        return x.max(0.0) as i64;
    }
    let l = (-rate).exp();
    let mut k = 0i64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Binomial draw as the sum of `n` Bernoulli draws (n is small in our models).
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: i64, p: f64) -> i64 {
    (0..n).filter(|_| rng.gen::<f64>() < p).count() as i64
}

/// Categorical draw over (not necessarily normalized) non-negative weights;
/// returns a 1-based index following the Stan convention.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> i64 {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return (i + 1) as i64;
        }
    }
    weights.len() as i64
}

/// Dirichlet draw via normalized gamma draws.
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64]) -> Vec<f64> {
    let draws: Vec<f64> = alpha.iter().map(|&a| gamma(rng, a, 1.0)).collect();
    let s: f64 = draws.iter().sum();
    draws.into_iter().map(|x| x / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_and_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1.0);
        (m, v)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let (m, v) = mean_and_var(&xs);
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
        assert!((v - 9.0).abs() < 0.5, "var {v}");
    }

    #[test]
    fn gamma_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let (shape, rate) = (3.0, 2.0);
        let xs: Vec<f64> = (0..20_000).map(|_| gamma(&mut rng, shape, rate)).collect();
        let (m, v) = mean_and_var(&xs);
        assert!((m - shape / rate).abs() < 0.05, "mean {m}");
        assert!((v - shape / (rate * rate)).abs() < 0.1, "var {v}");
    }

    #[test]
    fn gamma_small_shape_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(gamma(&mut rng, 0.3, 1.0) > 0.0);
        }
    }

    #[test]
    fn beta_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..20_000).map(|_| beta(&mut rng, 2.0, 6.0)).collect();
        let (m, _) = mean_and_var(&xs);
        assert!((m - 0.25).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn poisson_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..20_000).map(|_| poisson(&mut rng, 4.5) as f64).collect();
        let (m, _) = mean_and_var(&xs);
        assert!((m - 4.5).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            let k = categorical(&mut rng, &[0.2, 0.3, 0.5]);
            counts[(k - 1) as usize] += 1;
        }
        assert!((counts[2] as f64 / 30_000.0 - 0.5).abs() < 0.02);
        assert!((counts[0] as f64 / 30_000.0 - 0.2).abs() < 0.02);
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = dirichlet(&mut rng, &[1.0, 2.0, 3.0]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(d.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn student_t_is_heavy_tailed_but_centered() {
        let mut rng = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| student_t(&mut rng, 5.0, 1.0, 2.0))
            .collect();
        let (m, _) = mean_and_var(&xs);
        assert!((m - 1.0).abs() < 0.1, "mean {m}");
    }
}
