//! Runtime distribution values: log densities, sampling and support.

use std::fmt;

use minidiff::special;
use minidiff::Real;
use rand::Rng;

use crate::sampling;

/// Error raised when a distribution is constructed or evaluated with invalid
/// arguments (wrong arity, value outside the support, unsupported operation).
#[derive(Debug, Clone, PartialEq)]
pub struct DistError {
    message: String,
}

impl DistError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DistError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "distribution error: {}", self.message)
    }
}

impl std::error::Error for DistError {}

/// Support (definition domain) of a distribution, used by the mixed
/// compilation scheme to decide whether a `sample(uniform)`/`observe(D, x)`
/// pair may be merged into `sample(D)` (Section 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Support {
    /// The whole real line.
    Real,
    /// Positive reals `(0, ∞)`.
    Positive,
    /// The unit interval `[0, 1]`.
    UnitInterval,
    /// `[lower, ∞)`.
    LowerBounded(f64),
    /// `(-∞, upper]`.
    UpperBounded(f64),
    /// `[lower, upper]`.
    Bounded(f64, f64),
    /// Non-negative integers.
    NonNegativeInt,
    /// Integers in `[lo, hi]` (inclusive).
    IntRange(i64, i64),
    /// Probability simplex of the given dimension.
    Simplex(usize),
    /// Product of real lines of the given dimension.
    RealVector(usize),
}

impl Support {
    /// Returns the support as `(lower, upper)` bounds when it is an interval
    /// of reals, or `None` for discrete / structured supports.
    pub fn as_interval(&self) -> Option<(f64, f64)> {
        match *self {
            Support::Real => Some((f64::NEG_INFINITY, f64::INFINITY)),
            Support::Positive => Some((0.0, f64::INFINITY)),
            Support::UnitInterval => Some((0.0, 1.0)),
            Support::LowerBounded(l) => Some((l, f64::INFINITY)),
            Support::UpperBounded(u) => Some((f64::NEG_INFINITY, u)),
            Support::Bounded(l, u) => Some((l, u)),
            _ => None,
        }
    }
}

/// A sampled value in plain `f64` space (sampling is always untracked).
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A real scalar.
    Real(f64),
    /// An integer (Bernoulli, binomial, Poisson, categorical draws).
    Int(i64),
    /// A real vector (Dirichlet, multivariate normal, vectorized draws).
    Vec(Vec<f64>),
}

impl SampleValue {
    /// The value as a real number, converting integers.
    pub fn as_f64(&self) -> f64 {
        match self {
            SampleValue::Real(x) => *x,
            SampleValue::Int(k) => *k as f64,
            SampleValue::Vec(_) => f64::NAN,
        }
    }
}

/// A runtime distribution parameterized by a [`Real`] scalar type `T`.
///
/// The generic parameter lets the same distribution code produce plain `f64`
/// densities (fast path, NumPyro analog) or tape-tracked densities for
/// gradient-based inference.
#[derive(Debug, Clone)]
pub enum Dist<T: Real> {
    /// Normal with mean and standard deviation.
    Normal { mu: T, sigma: T },
    /// Log-normal.
    LogNormal { mu: T, sigma: T },
    /// Continuous uniform on `[lo, hi]`.
    Uniform { lo: T, hi: T },
    /// Improper uniform with constant density on the (possibly unbounded)
    /// interval; introduced by the comprehensive compilation scheme.
    ImproperUniform { lo: f64, hi: f64 },
    /// Beta distribution.
    Beta { a: T, b: T },
    /// Gamma with shape and rate.
    Gamma { shape: T, rate: T },
    /// Inverse gamma with shape and scale.
    InvGamma { shape: T, scale: T },
    /// Exponential with rate.
    Exponential { rate: T },
    /// Cauchy with location and scale.
    Cauchy { loc: T, scale: T },
    /// Student-t with degrees of freedom, location and scale.
    StudentT { nu: T, loc: T, scale: T },
    /// Double exponential (Laplace) with location and scale.
    DoubleExponential { loc: T, scale: T },
    /// Chi-squared with degrees of freedom.
    ChiSquare { nu: T },
    /// Bernoulli with success probability.
    Bernoulli { p: T },
    /// Bernoulli parameterized by log-odds.
    BernoulliLogit { logit: T },
    /// Binomial with number of trials and success probability.
    Binomial { n: i64, p: T },
    /// Binomial parameterized by number of trials and log-odds.
    BinomialLogit { n: i64, logit: T },
    /// Poisson with rate.
    Poisson { rate: T },
    /// Poisson parameterized by log-rate.
    PoissonLog { log_rate: T },
    /// Categorical over `1..=K` with probabilities (Stan convention).
    Categorical { probs: Vec<T> },
    /// Categorical over `1..=K` parameterized by unnormalized log-odds.
    CategoricalLogit { logits: Vec<T> },
    /// Dirichlet over the simplex.
    Dirichlet { alpha: Vec<T> },
    /// Multivariate normal with diagonal covariance (given as std devs).
    MultiNormalDiag { mu: Vec<T>, sigma: Vec<T> },
}

impl<T: Real> Dist<T> {
    /// Normal distribution constructor.
    pub fn normal(mu: T, sigma: T) -> Self {
        Dist::Normal { mu, sigma }
    }

    /// Uniform distribution constructor.
    pub fn uniform(lo: T, hi: T) -> Self {
        Dist::Uniform { lo, hi }
    }

    /// Improper uniform constructor (constant density on the interval).
    pub fn improper_uniform(lo: f64, hi: f64) -> Self {
        Dist::ImproperUniform { lo, hi }
    }

    /// Beta distribution constructor.
    pub fn beta(a: T, b: T) -> Self {
        Dist::Beta { a, b }
    }

    /// Bernoulli distribution constructor.
    pub fn bernoulli(p: T) -> Self {
        Dist::Bernoulli { p }
    }

    /// The distribution's name as used in Stan source code.
    pub fn name(&self) -> &'static str {
        match self {
            Dist::Normal { .. } => "normal",
            Dist::LogNormal { .. } => "lognormal",
            Dist::Uniform { .. } => "uniform",
            Dist::ImproperUniform { .. } => "improper_uniform",
            Dist::Beta { .. } => "beta",
            Dist::Gamma { .. } => "gamma",
            Dist::InvGamma { .. } => "inv_gamma",
            Dist::Exponential { .. } => "exponential",
            Dist::Cauchy { .. } => "cauchy",
            Dist::StudentT { .. } => "student_t",
            Dist::DoubleExponential { .. } => "double_exponential",
            Dist::ChiSquare { .. } => "chi_square",
            Dist::Bernoulli { .. } => "bernoulli",
            Dist::BernoulliLogit { .. } => "bernoulli_logit",
            Dist::Binomial { .. } => "binomial",
            Dist::BinomialLogit { .. } => "binomial_logit",
            Dist::Poisson { .. } => "poisson",
            Dist::PoissonLog { .. } => "poisson_log",
            Dist::Categorical { .. } => "categorical",
            Dist::CategoricalLogit { .. } => "categorical_logit",
            Dist::Dirichlet { .. } => "dirichlet",
            Dist::MultiNormalDiag { .. } => "multi_normal",
        }
    }

    /// The support of the distribution.
    pub fn support(&self) -> Support {
        match self {
            Dist::Normal { .. }
            | Dist::Cauchy { .. }
            | Dist::StudentT { .. }
            | Dist::DoubleExponential { .. } => Support::Real,
            Dist::LogNormal { .. }
            | Dist::Gamma { .. }
            | Dist::InvGamma { .. }
            | Dist::Exponential { .. }
            | Dist::ChiSquare { .. } => Support::Positive,
            Dist::Uniform { lo, hi } => Support::Bounded(lo.value(), hi.value()),
            Dist::ImproperUniform { lo, hi } => {
                if lo.is_infinite() && hi.is_infinite() {
                    Support::Real
                } else if hi.is_infinite() {
                    Support::LowerBounded(*lo)
                } else if lo.is_infinite() {
                    Support::UpperBounded(*hi)
                } else {
                    Support::Bounded(*lo, *hi)
                }
            }
            Dist::Beta { .. } => Support::UnitInterval,
            Dist::Bernoulli { .. } | Dist::BernoulliLogit { .. } => Support::IntRange(0, 1),
            Dist::Binomial { n, .. } | Dist::BinomialLogit { n, .. } => Support::IntRange(0, *n),
            Dist::Poisson { .. } | Dist::PoissonLog { .. } => Support::NonNegativeInt,
            Dist::Categorical { probs } => Support::IntRange(1, probs.len() as i64),
            Dist::CategoricalLogit { logits } => Support::IntRange(1, logits.len() as i64),
            Dist::Dirichlet { alpha } => Support::Simplex(alpha.len()),
            Dist::MultiNormalDiag { mu, .. } => Support::RealVector(mu.len()),
        }
    }

    /// Whether the distribution is over a vector-valued outcome.
    pub fn is_multivariate(&self) -> bool {
        matches!(self, Dist::Dirichlet { .. } | Dist::MultiNormalDiag { .. })
    }

    /// Log probability density (or mass) at a scalar value.
    ///
    /// Discrete distributions round the argument to the nearest integer,
    /// matching how Stan treats integer data passed through real-valued
    /// containers.
    ///
    /// # Errors
    /// Returns an error for multivariate distributions (use [`Dist::lpdf_vec`]).
    pub fn lpdf(&self, x: T) -> Result<T, DistError> {
        let neg_inf = T::from_f64(f64::NEG_INFINITY);
        let half_log_2pi = 0.5 * (2.0 * std::f64::consts::PI).ln();
        match self {
            Dist::Normal { mu, sigma } => {
                let z = (x - *mu) / *sigma;
                Ok(T::from_f64(-half_log_2pi) - sigma.ln() - T::from_f64(0.5) * z * z)
            }
            Dist::LogNormal { mu, sigma } => {
                if x.value() <= 0.0 {
                    return Ok(neg_inf);
                }
                let lx = x.ln();
                let z = (lx - *mu) / *sigma;
                Ok(T::from_f64(-half_log_2pi) - sigma.ln() - lx - T::from_f64(0.5) * z * z)
            }
            Dist::Uniform { lo, hi } => {
                if x.value() < lo.value() || x.value() > hi.value() {
                    Ok(neg_inf)
                } else {
                    Ok(-(*hi - *lo).ln())
                }
            }
            Dist::ImproperUniform { lo, hi } => {
                if x.value() < *lo || x.value() > *hi {
                    Ok(neg_inf)
                } else {
                    Ok(T::from_f64(0.0))
                }
            }
            Dist::Beta { a, b } => {
                let xv = x.value();
                if !(0.0..=1.0).contains(&xv) {
                    return Ok(neg_inf);
                }
                let log_beta = a.lgamma() + b.lgamma() - (*a + *b).lgamma();
                Ok((*a - T::from_f64(1.0)) * x.ln()
                    + (*b - T::from_f64(1.0)) * (T::from_f64(1.0) - x).ln()
                    - log_beta)
            }
            Dist::Gamma { shape, rate } => {
                if x.value() <= 0.0 {
                    return Ok(neg_inf);
                }
                Ok(
                    *shape * rate.ln() - shape.lgamma() + (*shape - T::from_f64(1.0)) * x.ln()
                        - *rate * x,
                )
            }
            Dist::InvGamma { shape, scale } => {
                if x.value() <= 0.0 {
                    return Ok(neg_inf);
                }
                Ok(*shape * scale.ln()
                    - shape.lgamma()
                    - (*shape + T::from_f64(1.0)) * x.ln()
                    - *scale / x)
            }
            Dist::Exponential { rate } => {
                if x.value() < 0.0 {
                    return Ok(neg_inf);
                }
                Ok(rate.ln() - *rate * x)
            }
            Dist::Cauchy { loc, scale } => {
                let z = (x - *loc) / *scale;
                Ok(T::from_f64(-(std::f64::consts::PI).ln())
                    - scale.ln()
                    - (T::from_f64(1.0) + z * z).ln())
            }
            Dist::StudentT { nu, loc, scale } => {
                let z = (x - *loc) / *scale;
                let half = T::from_f64(0.5);
                let one = T::from_f64(1.0);
                Ok(((*nu + one) * half).lgamma()
                    - (*nu * half).lgamma()
                    - half * (*nu * T::from_f64(std::f64::consts::PI)).ln()
                    - scale.ln()
                    - (*nu + one) * half * (one + z * z / *nu).ln())
            }
            Dist::DoubleExponential { loc, scale } => {
                Ok(-(T::from_f64(2.0) * *scale).ln() - (x - *loc).abs() / *scale)
            }
            Dist::ChiSquare { nu } => {
                if x.value() <= 0.0 {
                    return Ok(neg_inf);
                }
                let half = T::from_f64(0.5);
                Ok(
                    -(*nu * half) * T::from_f64(2f64.ln()) - (*nu * half).lgamma()
                        + (*nu * half - T::from_f64(1.0)) * x.ln()
                        - half * x,
                )
            }
            Dist::Bernoulli { p } => {
                let k = x.value().round();
                if k == 1.0 {
                    Ok(p.ln())
                } else if k == 0.0 {
                    Ok((T::from_f64(1.0) - *p).ln())
                } else {
                    Ok(neg_inf)
                }
            }
            Dist::BernoulliLogit { logit } => {
                let k = x.value().round();
                if k == 1.0 {
                    Ok(-(-*logit).softplus())
                } else if k == 0.0 {
                    Ok(-logit.softplus())
                } else {
                    Ok(neg_inf)
                }
            }
            Dist::Binomial { n, p } => {
                let k = x.value().round();
                if k < 0.0 || k > *n as f64 {
                    return Ok(neg_inf);
                }
                let log_choose = special::lgamma(*n as f64 + 1.0)
                    - special::lgamma(k + 1.0)
                    - special::lgamma(*n as f64 - k + 1.0);
                Ok(T::from_f64(log_choose)
                    + T::from_f64(k) * p.ln()
                    + T::from_f64(*n as f64 - k) * (T::from_f64(1.0) - *p).ln())
            }
            Dist::BinomialLogit { n, logit } => {
                let k = x.value().round();
                if k < 0.0 || k > *n as f64 {
                    return Ok(neg_inf);
                }
                let log_choose = special::lgamma(*n as f64 + 1.0)
                    - special::lgamma(k + 1.0)
                    - special::lgamma(*n as f64 - k + 1.0);
                // k ln sigmoid(l) + (n-k) ln sigmoid(-l), in softplus form.
                Ok(T::from_f64(log_choose)
                    - T::from_f64(k) * (-*logit).softplus()
                    - T::from_f64(*n as f64 - k) * logit.softplus())
            }
            Dist::Poisson { rate } => {
                let k = x.value().round();
                if k < 0.0 {
                    return Ok(neg_inf);
                }
                Ok(T::from_f64(k) * rate.ln() - *rate - T::from_f64(special::lgamma(k + 1.0)))
            }
            Dist::PoissonLog { log_rate } => {
                let k = x.value().round();
                if k < 0.0 {
                    return Ok(neg_inf);
                }
                Ok(T::from_f64(k) * *log_rate
                    - log_rate.exp()
                    - T::from_f64(special::lgamma(k + 1.0)))
            }
            Dist::Categorical { probs } => {
                let k = x.value().round() as i64;
                if k < 1 || k > probs.len() as i64 {
                    return Ok(neg_inf);
                }
                // Normalize so that unnormalized weights are accepted.
                let mut total = T::from_f64(0.0);
                for p in probs {
                    total = total + *p;
                }
                Ok(probs[(k - 1) as usize].ln() - total.ln())
            }
            Dist::CategoricalLogit { logits } => {
                let k = x.value().round() as i64;
                if k < 1 || k > logits.len() as i64 {
                    return Ok(neg_inf);
                }
                // log softmax, numerically stabilized by the max logit value.
                let m = logits
                    .iter()
                    .map(|l| l.value())
                    .fold(f64::NEG_INFINITY, f64::max);
                let mut sum = T::from_f64(0.0);
                for l in logits {
                    sum = sum + (*l - T::from_f64(m)).exp();
                }
                Ok(logits[(k - 1) as usize] - T::from_f64(m) - sum.ln())
            }
            Dist::Dirichlet { .. } | Dist::MultiNormalDiag { .. } => Err(DistError::new(format!(
                "{} is multivariate; use lpdf_vec",
                self.name()
            ))),
        }
    }

    /// Log density of a vector observation.
    ///
    /// For univariate distributions this is the sum of element-wise log
    /// densities (Stan's vectorized sampling statements). For multivariate
    /// distributions it is the joint density.
    ///
    /// # Errors
    /// Propagates element-wise errors and reports dimension mismatches for
    /// multivariate distributions.
    pub fn lpdf_vec(&self, xs: &[T]) -> Result<T, DistError> {
        match self {
            Dist::Dirichlet { alpha } => {
                if xs.len() != alpha.len() {
                    return Err(DistError::new("dirichlet dimension mismatch"));
                }
                let mut alpha0 = T::from_f64(0.0);
                let mut acc = T::from_f64(0.0);
                for (a, x) in alpha.iter().zip(xs) {
                    alpha0 = alpha0 + *a;
                    acc = acc + (*a - T::from_f64(1.0)) * x.ln() - a.lgamma();
                }
                Ok(acc + alpha0.lgamma())
            }
            Dist::MultiNormalDiag { mu, sigma } => {
                if xs.len() != mu.len() {
                    return Err(DistError::new("multi_normal dimension mismatch"));
                }
                let mut acc = T::from_f64(0.0);
                for ((m, s), x) in mu.iter().zip(sigma).zip(xs) {
                    let z = (*x - *m) / *s;
                    acc = acc + T::from_f64(-0.5 * (2.0 * std::f64::consts::PI).ln())
                        - s.ln()
                        - T::from_f64(0.5) * z * z;
                }
                Ok(acc)
            }
            _ => {
                let mut acc = T::from_f64(0.0);
                for x in xs {
                    acc = acc + self.lpdf(*x)?;
                }
                Ok(acc)
            }
        }
    }

    /// Draws a value from the distribution (untracked `f64` space).
    ///
    /// Improper uniforms are sampled from a standard normal restricted to the
    /// domain — any proper initialization distribution is acceptable since the
    /// comprehensive scheme only needs *some* starting point with non-zero
    /// density; this mirrors Stan's `[-2, 2]` uniform initialization on the
    /// unconstrained scale.
    ///
    /// # Errors
    /// Returns an error if parameters are invalid (e.g. non-positive scale).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<SampleValue, DistError> {
        let val = |v: f64| Ok(SampleValue::Real(v));
        match self {
            Dist::Normal { mu, sigma } => val(sampling::normal(rng, mu.value(), sigma.value())),
            Dist::LogNormal { mu, sigma } => {
                val(sampling::normal(rng, mu.value(), sigma.value()).exp())
            }
            Dist::Uniform { lo, hi } => val(rng.gen_range(lo.value()..hi.value())),
            Dist::ImproperUniform { lo, hi } => {
                let z = sampling::standard_normal(rng);
                let x = if lo.is_infinite() && hi.is_infinite() {
                    z
                } else if hi.is_infinite() {
                    lo + z.abs() + 0.1
                } else if lo.is_infinite() {
                    hi - z.abs() - 0.1
                } else {
                    lo + (hi - lo) * rng.gen::<f64>()
                };
                val(x)
            }
            Dist::Beta { a, b } => val(sampling::beta(rng, a.value(), b.value())),
            Dist::Gamma { shape, rate } => val(sampling::gamma(rng, shape.value(), rate.value())),
            Dist::InvGamma { shape, scale } => {
                val(scale.value() / sampling::gamma(rng, shape.value(), 1.0))
            }
            Dist::Exponential { rate } => val(sampling::exponential(rng, rate.value())),
            Dist::Cauchy { loc, scale } => val(sampling::cauchy(rng, loc.value(), scale.value())),
            Dist::StudentT { nu, loc, scale } => val(sampling::student_t(
                rng,
                nu.value(),
                loc.value(),
                scale.value(),
            )),
            Dist::DoubleExponential { loc, scale } => {
                let u: f64 = rng.gen::<f64>() - 0.5;
                val(loc.value() - scale.value() * u.signum() * (1.0 - 2.0 * u.abs()).ln())
            }
            Dist::ChiSquare { nu } => val(sampling::gamma(rng, nu.value() / 2.0, 0.5)),
            Dist::Bernoulli { p } => Ok(SampleValue::Int((rng.gen::<f64>() < p.value()) as i64)),
            Dist::BernoulliLogit { logit } => Ok(SampleValue::Int(
                (rng.gen::<f64>() < special::sigmoid(logit.value())) as i64,
            )),
            Dist::Binomial { n, p } => Ok(SampleValue::Int(sampling::binomial(rng, *n, p.value()))),
            Dist::BinomialLogit { n, logit } => Ok(SampleValue::Int(sampling::binomial(
                rng,
                *n,
                special::sigmoid(logit.value()),
            ))),
            Dist::Poisson { rate } => Ok(SampleValue::Int(sampling::poisson(rng, rate.value()))),
            Dist::PoissonLog { log_rate } => Ok(SampleValue::Int(sampling::poisson(
                rng,
                log_rate.value().exp(),
            ))),
            Dist::Categorical { probs } => {
                let w: Vec<f64> = probs.iter().map(|p| p.value()).collect();
                Ok(SampleValue::Int(sampling::categorical(rng, &w)))
            }
            Dist::CategoricalLogit { logits } => {
                let m = logits
                    .iter()
                    .map(|l| l.value())
                    .fold(f64::NEG_INFINITY, f64::max);
                let w: Vec<f64> = logits.iter().map(|l| (l.value() - m).exp()).collect();
                Ok(SampleValue::Int(sampling::categorical(rng, &w)))
            }
            Dist::Dirichlet { alpha } => {
                let a: Vec<f64> = alpha.iter().map(|x| x.value()).collect();
                Ok(SampleValue::Vec(sampling::dirichlet(rng, &a)))
            }
            Dist::MultiNormalDiag { mu, sigma } => Ok(SampleValue::Vec(
                mu.iter()
                    .zip(sigma)
                    .map(|(m, s)| sampling::normal(rng, m.value(), s.value()))
                    .collect(),
            )),
        }
    }
}

/// Identity of a distribution family, resolved from its Stan name.
///
/// Resolution passes (e.g. `gprob::resolved`) translate the name of every
/// `sample` / `observe` site to a `DistKind` once at compile time, so the
/// density hot path dispatches on a `Copy` enum instead of re-matching the
/// name string on every evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistKind {
    /// `normal(mu, sigma)`
    Normal,
    /// `lognormal(mu, sigma)`
    LogNormal,
    /// `uniform(lo, hi)`
    Uniform,
    /// `improper_uniform(lo?, hi?)`
    ImproperUniform,
    /// `beta(a, b)`
    Beta,
    /// `gamma(shape, rate)`
    Gamma,
    /// `inv_gamma(shape, scale)`
    InvGamma,
    /// `exponential(rate)`
    Exponential,
    /// `cauchy(loc, scale)`
    Cauchy,
    /// `student_t(nu, loc, scale)`
    StudentT,
    /// `double_exponential(loc, scale)`
    DoubleExponential,
    /// `chi_square(nu)`
    ChiSquare,
    /// `bernoulli(p)`
    Bernoulli,
    /// `bernoulli_logit(logit)`
    BernoulliLogit,
    /// `binomial(n, p)`
    Binomial,
    /// `binomial_logit(n, logit)`
    BinomialLogit,
    /// `poisson(rate)`
    Poisson,
    /// `poisson_log(log_rate)`
    PoissonLog,
    /// `categorical(probs)`
    Categorical,
    /// `categorical_logit(logits)`
    CategoricalLogit,
    /// `dirichlet(alpha)`
    Dirichlet,
    /// `multi_normal(mu, sigma)` / `multi_normal_diag(mu, sigma)`
    MultiNormalDiag,
}

impl DistKind {
    /// Resolves a Stan distribution name, or `None` for unknown families.
    pub fn from_name(name: &str) -> Option<DistKind> {
        Some(match name {
            "normal" => DistKind::Normal,
            "lognormal" => DistKind::LogNormal,
            "uniform" => DistKind::Uniform,
            "improper_uniform" => DistKind::ImproperUniform,
            "beta" => DistKind::Beta,
            "gamma" => DistKind::Gamma,
            "inv_gamma" => DistKind::InvGamma,
            "exponential" => DistKind::Exponential,
            "cauchy" => DistKind::Cauchy,
            "student_t" => DistKind::StudentT,
            "double_exponential" => DistKind::DoubleExponential,
            "chi_square" => DistKind::ChiSquare,
            "bernoulli" => DistKind::Bernoulli,
            "bernoulli_logit" => DistKind::BernoulliLogit,
            "binomial" => DistKind::Binomial,
            "binomial_logit" => DistKind::BinomialLogit,
            "poisson" => DistKind::Poisson,
            "poisson_log" => DistKind::PoissonLog,
            "categorical" => DistKind::Categorical,
            "categorical_logit" => DistKind::CategoricalLogit,
            "dirichlet" => DistKind::Dirichlet,
            "multi_normal" | "multi_normal_diag" => DistKind::MultiNormalDiag,
            _ => return None,
        })
    }

    /// The canonical Stan spelling (used in error messages).
    pub fn name(self) -> &'static str {
        match self {
            DistKind::Normal => "normal",
            DistKind::LogNormal => "lognormal",
            DistKind::Uniform => "uniform",
            DistKind::ImproperUniform => "improper_uniform",
            DistKind::Beta => "beta",
            DistKind::Gamma => "gamma",
            DistKind::InvGamma => "inv_gamma",
            DistKind::Exponential => "exponential",
            DistKind::Cauchy => "cauchy",
            DistKind::StudentT => "student_t",
            DistKind::DoubleExponential => "double_exponential",
            DistKind::ChiSquare => "chi_square",
            DistKind::Bernoulli => "bernoulli",
            DistKind::BernoulliLogit => "bernoulli_logit",
            DistKind::Binomial => "binomial",
            DistKind::BinomialLogit => "binomial_logit",
            DistKind::Poisson => "poisson",
            DistKind::PoissonLog => "poisson_log",
            DistKind::Categorical => "categorical",
            DistKind::CategoricalLogit => "categorical_logit",
            DistKind::Dirichlet => "dirichlet",
            DistKind::MultiNormalDiag => "multi_normal_diag",
        }
    }

    /// Whether the outcome of the distribution is a vector (so a container
    /// left-hand side must not be broadcast element-wise).
    pub fn is_multivariate(self) -> bool {
        matches!(self, DistKind::Dirichlet | DistKind::MultiNormalDiag)
    }

    /// Whether the distribution is legitimately parameterized by a vector
    /// (so a vector argument does not imply element-wise broadcasting).
    pub fn has_vector_param(self) -> bool {
        matches!(self, DistKind::Categorical | DistKind::CategoricalLogit)
    }
}

/// Constructs a distribution by its Stan name from real-valued arguments.
///
/// This is the dynamic entry point used by both interpreters when evaluating
/// `x ~ dist(args...)` statements. Vector arguments are accepted where the
/// distribution is parameterized by a vector (categorical, dirichlet,
/// multi_normal) or where Stan broadcasts (handled by the caller). Hot paths
/// that already resolved the name should call [`dist_from_kind`] instead.
///
/// # Errors
/// Returns an error for unknown distribution names or wrong arity.
pub fn dist_from_name<T: Real>(name: &str, args: &[DistArg<T>]) -> Result<Dist<T>, DistError> {
    let kind = DistKind::from_name(name)
        .ok_or_else(|| DistError::new(format!("unknown distribution '{name}'")))?;
    dist_from_kind(kind, args)
}

/// Constructs a distribution from its pre-resolved [`DistKind`] — the
/// dispatch used by the slot-resolved runtime, which resolves every site's
/// name exactly once at compile time.
///
/// # Errors
/// Returns an error on wrong arity or a vector argument where a scalar is
/// required.
pub fn dist_from_kind<T: Real>(kind: DistKind, args: &[DistArg<T>]) -> Result<Dist<T>, DistError> {
    let name = kind.name();
    let scalar = |i: usize| -> Result<T, DistError> {
        match args.get(i) {
            Some(DistArg::Scalar(x)) => Ok(*x),
            Some(DistArg::Vector(_)) => Err(DistError::new(format!(
                "{name}: argument {i} must be a scalar"
            ))),
            None => Err(DistError::new(format!("{name}: missing argument {i}"))),
        }
    };
    let vector = |i: usize| -> Result<Vec<T>, DistError> {
        match args.get(i) {
            Some(DistArg::Vector(v)) => Ok(v.clone()),
            Some(DistArg::Scalar(x)) => Ok(vec![*x]),
            None => Err(DistError::new(format!("{name}: missing argument {i}"))),
        }
    };
    match kind {
        DistKind::Normal => Ok(Dist::Normal {
            mu: scalar(0)?,
            sigma: scalar(1)?,
        }),
        DistKind::LogNormal => Ok(Dist::LogNormal {
            mu: scalar(0)?,
            sigma: scalar(1)?,
        }),
        DistKind::Uniform => Ok(Dist::Uniform {
            lo: scalar(0)?,
            hi: scalar(1)?,
        }),
        DistKind::ImproperUniform => Ok(Dist::ImproperUniform {
            lo: scalar(0).map(|x| x.value()).unwrap_or(f64::NEG_INFINITY),
            hi: scalar(1).map(|x| x.value()).unwrap_or(f64::INFINITY),
        }),
        DistKind::Beta => Ok(Dist::Beta {
            a: scalar(0)?,
            b: scalar(1)?,
        }),
        DistKind::Gamma => Ok(Dist::Gamma {
            shape: scalar(0)?,
            rate: scalar(1)?,
        }),
        DistKind::InvGamma => Ok(Dist::InvGamma {
            shape: scalar(0)?,
            scale: scalar(1)?,
        }),
        DistKind::Exponential => Ok(Dist::Exponential { rate: scalar(0)? }),
        DistKind::Cauchy => Ok(Dist::Cauchy {
            loc: scalar(0)?,
            scale: scalar(1)?,
        }),
        DistKind::StudentT => Ok(Dist::StudentT {
            nu: scalar(0)?,
            loc: scalar(1)?,
            scale: scalar(2)?,
        }),
        DistKind::DoubleExponential => Ok(Dist::DoubleExponential {
            loc: scalar(0)?,
            scale: scalar(1)?,
        }),
        DistKind::ChiSquare => Ok(Dist::ChiSquare { nu: scalar(0)? }),
        DistKind::Bernoulli => Ok(Dist::Bernoulli { p: scalar(0)? }),
        DistKind::BernoulliLogit => Ok(Dist::BernoulliLogit { logit: scalar(0)? }),
        DistKind::Binomial => Ok(Dist::Binomial {
            n: scalar(0)?.value().round() as i64,
            p: scalar(1)?,
        }),
        DistKind::BinomialLogit => Ok(Dist::BinomialLogit {
            n: scalar(0)?.value().round() as i64,
            logit: scalar(1)?,
        }),
        DistKind::Poisson => Ok(Dist::Poisson { rate: scalar(0)? }),
        DistKind::PoissonLog => Ok(Dist::PoissonLog {
            log_rate: scalar(0)?,
        }),
        DistKind::Categorical => Ok(Dist::Categorical { probs: vector(0)? }),
        DistKind::CategoricalLogit => Ok(Dist::CategoricalLogit { logits: vector(0)? }),
        DistKind::Dirichlet => Ok(Dist::Dirichlet { alpha: vector(0)? }),
        DistKind::MultiNormalDiag => Ok(Dist::MultiNormalDiag {
            mu: vector(0)?,
            sigma: vector(1)?,
        }),
    }
}

/// A distribution argument: either a scalar or a vector of scalars.
#[derive(Debug, Clone)]
pub enum DistArg<T: Real> {
    /// A scalar argument.
    Scalar(T),
    /// A vector argument.
    Vector(Vec<T>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidiff::{grad, tape, Var};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn normal_lpdf_known_value() {
        let d: Dist<f64> = Dist::normal(1.0, 2.0);
        // scipy.stats.norm.logpdf(0, 1, 2) = -1.7370857137642328
        assert_close(d.lpdf(0.0).unwrap(), -1.7370857137642328, 1e-12);
    }

    #[test]
    fn beta_lpdf_known_value() {
        let d: Dist<f64> = Dist::beta(2.0, 3.0);
        // ln(0.4^1 * 0.6^2 / B(2,3)) = ln(1.728)
        assert_close(d.lpdf(0.4).unwrap(), 0.5469646703818611, 1e-12);
    }

    #[test]
    fn gamma_lpdf_known_value() {
        let d: Dist<f64> = Dist::Gamma {
            shape: 3.0,
            rate: 2.0,
        };
        // 3 ln 2 - ln Gamma(3) + 2 ln 1.5 - 3
        assert_close(d.lpdf(1.5).unwrap(), -0.8027754226637804, 1e-10);
    }

    #[test]
    fn student_t_lpdf_known_value() {
        let d: Dist<f64> = Dist::StudentT {
            nu: 4.0,
            loc: 1.0,
            scale: 2.0,
        };
        // lnGamma(2.5) - lnGamma(2) - 0.5 ln(4 pi) - ln 2 - 2.5 ln(1.0625)
        assert_close(d.lpdf(0.0).unwrap(), -1.825537988112757, 1e-8);
    }

    #[test]
    fn poisson_and_binomial_pmfs() {
        let p: Dist<f64> = Dist::Poisson { rate: 3.0 };
        // 2 ln 3 - 3 - ln 2
        assert_close(p.lpdf(2.0).unwrap(), -1.4959226032237267, 1e-10);
        let b: Dist<f64> = Dist::Binomial { n: 10, p: 0.3 };
        // ln C(10,4) + 4 ln 0.3 + 6 ln 0.7
        assert_close(b.lpdf(4.0).unwrap(), -1.608833350218668, 1e-10);
    }

    #[test]
    fn bernoulli_logit_matches_manual() {
        let logit = 0.7;
        let d: Dist<f64> = Dist::BernoulliLogit { logit };
        let p = special::sigmoid(logit);
        assert_close(d.lpdf(1.0).unwrap(), p.ln(), 1e-12);
        assert_close(d.lpdf(0.0).unwrap(), (1.0 - p).ln(), 1e-12);
    }

    #[test]
    fn categorical_logit_is_log_softmax() {
        let d: Dist<f64> = Dist::CategoricalLogit {
            logits: vec![0.1, 1.2, -0.3],
        };
        let z = special::log_sum_exp(&[0.1, 1.2, -0.3]);
        assert_close(d.lpdf(2.0).unwrap(), 1.2 - z, 1e-12);
        assert_eq!(d.lpdf(4.0).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn categorical_accepts_unnormalized_weights() {
        let d: Dist<f64> = Dist::Categorical {
            probs: vec![2.0, 6.0],
        };
        assert_close(d.lpdf(1.0).unwrap(), 0.25f64.ln(), 1e-12);
    }

    #[test]
    fn dirichlet_lpdf_known_value() {
        let d: Dist<f64> = Dist::Dirichlet {
            alpha: vec![1.0, 2.0, 3.0],
        };
        // lnGamma(6) - lnGamma(2) - lnGamma(3) + ln(0.3) + 2 ln(0.5)
        assert_close(
            d.lpdf_vec(&[0.2, 0.3, 0.5]).unwrap(),
            1.5040773967762764,
            1e-12,
        );
    }

    #[test]
    fn outside_support_is_neg_infinity() {
        let beta: Dist<f64> = Dist::beta(2.0, 2.0);
        assert_eq!(beta.lpdf(1.5).unwrap(), f64::NEG_INFINITY);
        let gamma: Dist<f64> = Dist::Gamma {
            shape: 1.0,
            rate: 1.0,
        };
        assert_eq!(gamma.lpdf(-0.1).unwrap(), f64::NEG_INFINITY);
        let uni: Dist<f64> = Dist::uniform(0.0, 1.0);
        assert_eq!(uni.lpdf(2.0).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn improper_uniform_has_zero_log_density_inside() {
        let d: Dist<f64> = Dist::improper_uniform(0.0, f64::INFINITY);
        assert_eq!(d.lpdf(3.0).unwrap(), 0.0);
        assert_eq!(d.lpdf(-1.0).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn vectorized_lpdf_sums_elementwise() {
        let d: Dist<f64> = Dist::normal(0.0, 1.0);
        let xs = [0.5, -1.0, 2.0];
        let expect: f64 = xs.iter().map(|&x| d.lpdf(x).unwrap()).sum();
        assert_close(d.lpdf_vec(&xs).unwrap(), expect, 1e-12);
    }

    #[test]
    fn lpdf_gradient_matches_analytic_for_normal() {
        tape::reset();
        let mu = Var::new(0.5);
        let sigma = Var::new(1.5);
        let d = Dist::Normal { mu, sigma };
        let lp = d.lpdf(Var::constant(2.0)).unwrap();
        let g = grad(lp, &[mu, sigma]);
        // d/dmu = (x-mu)/sigma^2 ; d/dsigma = ((x-mu)^2 - sigma^2)/sigma^3
        assert_close(g[0], (2.0 - 0.5) / (1.5 * 1.5), 1e-12);
        assert_close(
            g[1],
            ((2.0 - 0.5f64).powi(2) - 1.5 * 1.5) / 1.5f64.powi(3),
            1e-12,
        );
    }

    #[test]
    fn dist_from_name_roundtrip() {
        let d =
            dist_from_name::<f64>("normal", &[DistArg::Scalar(0.0), DistArg::Scalar(1.0)]).unwrap();
        assert_eq!(d.name(), "normal");
        let e = dist_from_name::<f64>("nosuchdist", &[]);
        assert!(e.is_err());
        let c = dist_from_name::<f64>("categorical", &[DistArg::Vector(vec![0.2, 0.8])]).unwrap();
        assert_eq!(c.support(), Support::IntRange(1, 2));
    }

    #[test]
    fn sampling_matches_density_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let d: Dist<f64> = Dist::Gamma {
            shape: 4.0,
            rate: 2.0,
        };
        let mut acc = 0.0;
        for _ in 0..20_000 {
            acc += d.sample(&mut rng).unwrap().as_f64();
        }
        assert_close(acc / 20_000.0, 2.0, 0.05);
    }

    #[test]
    fn supports_are_reported() {
        let d: Dist<f64> = Dist::Gamma {
            shape: 1.0,
            rate: 1.0,
        };
        assert_eq!(d.support(), Support::Positive);
        assert_eq!(d.support().as_interval(), Some((0.0, f64::INFINITY)));
        let u: Dist<f64> = Dist::uniform(-1.0, 1.0);
        assert_eq!(u.support(), Support::Bounded(-1.0, 1.0));
    }
}
