//! Cancellation-equivalence tests: cooperative cancellation may shorten a
//! run, never change it.
//!
//! The `CancelToken` is polled only in outer loops (per NUTS iteration,
//! per ADVI/SVI step, per importance particle), so the arithmetic of every
//! completed draw is untouched. Two consequences, both asserted here:
//!
//! * A cancelled run's completed draws are **bitwise identical** to the
//!   prefix of the same-seed run to completion.
//! * A run that finishes just under its deadline is **byte-identical** to
//!   the same run with no deadline at all — an unfired token is free.

use std::time::Duration;

use deepstan::{DeepStan, ImportanceSettings, Method, NutsSettings};
use gprob::value::Value;
use inference::CancelToken;

const COIN: &str = r#"
    data { int N; int<lower=0,upper=1> x[N]; }
    parameters { real<lower=0,upper=1> z; }
    model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
"#;

fn coin_data() -> Vec<(&'static str, Value<f64>)> {
    vec![
        ("N", Value::Int(4)),
        ("x", Value::IntArray(vec![1, 0, 1, 1])),
    ]
}

fn nuts_fit(samples: usize, cancel: Option<CancelToken>) -> deepstan::Fit {
    let program = DeepStan::compile(COIN).unwrap();
    let mut session = program.session(&coin_data()).unwrap().chains(2).seed(42);
    if let Some(cancel) = cancel {
        session = session.cancel(cancel);
    }
    session
        .run(Method::Nuts(NutsSettings {
            warmup: 50,
            samples,
            ..Default::default()
        }))
        .unwrap()
}

#[test]
fn cancelled_nuts_chains_are_bitwise_prefixes_of_the_full_run() {
    // Cancel mid-sampling from another thread; far more iterations are
    // requested than the cancellation window allows.
    let cancel = CancelToken::new();
    let trigger = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            cancel.cancel();
        })
    };
    let partial = nuts_fit(50_000_000, Some(cancel));
    trigger.join().unwrap();
    assert!(partial.cancelled, "the token must have cut the run short");
    let longest = partial
        .chains
        .iter()
        .map(|c| c.draws.len())
        .max()
        .unwrap_or(0);
    assert!(longest < 50_000_000, "the run cannot have finished");
    if longest == 0 {
        return; // Cancelled inside warmup on a very slow machine.
    }
    // NUTS iteration i does not depend on the total iteration count, so a
    // full same-seed run of `longest` draws must reproduce every partial
    // chain bit for bit.
    let full = nuts_fit(longest, None);
    assert!(!full.cancelled);
    for (p, f) in partial.chains.iter().zip(&full.chains) {
        for (prow, frow) in p.draws.iter().zip(&f.draws) {
            assert_eq!(prow.len(), frow.len());
            for (a, b) in prow.iter().zip(frow) {
                assert_eq!(a.to_bits(), b.to_bits(), "partial {a} != full {b}");
            }
        }
    }
}

#[test]
fn finishing_under_the_deadline_is_byte_identical_to_no_deadline() {
    // A deadline generous enough to never fire must leave no trace.
    let timed = nuts_fit(
        60,
        Some(CancelToken::with_timeout(Duration::from_secs(600))),
    );
    let untimed = nuts_fit(60, None);
    assert!(!timed.cancelled);
    assert!(!untimed.cancelled);
    assert_eq!(timed.names, untimed.names);
    assert_eq!(timed.chains.len(), untimed.chains.len());
    for (t, u) in timed.chains.iter().zip(&untimed.chains) {
        assert_eq!(t.divergences, u.divergences);
        assert_eq!(t.n_grad_evals, u.n_grad_evals);
        assert_eq!(t.draws.len(), u.draws.len());
        for (trow, urow) in t.draws.iter().zip(&u.draws) {
            for (a, b) in trow.iter().zip(urow) {
                assert_eq!(a.to_bits(), b.to_bits(), "timed {a} != untimed {b}");
            }
        }
    }
}

#[test]
fn pre_cancelled_tokens_yield_empty_partial_fits_not_errors() {
    let cancel = CancelToken::new();
    cancel.cancel();
    let program = DeepStan::compile(COIN).unwrap();

    // NUTS: cancelled before the first iteration — empty chains, no error.
    let fit = program
        .session(&coin_data())
        .unwrap()
        .chains(2)
        .seed(7)
        .cancel(cancel.clone())
        .run(Method::Nuts(NutsSettings {
            warmup: 10,
            samples: 10,
            ..Default::default()
        }))
        .unwrap();
    assert!(fit.cancelled);
    assert!(fit.chains.iter().all(|c| c.draws.is_empty()));

    // Importance: cancelled before the first particle.
    let fit = program
        .session(&coin_data())
        .unwrap()
        .seed(7)
        .cancel(cancel)
        .run(Method::Importance(ImportanceSettings { particles: 100 }))
        .unwrap();
    assert!(fit.cancelled);
    assert!(fit.chains[0].draws.is_empty());
}
