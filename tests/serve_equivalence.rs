//! Differential tests for the serve subsystem: draws served over the wire
//! must be **bitwise** equal to a direct in-process `Session::run` with the
//! same seed, for every method the protocol carries — the server is a
//! transport plus a cache, never a different sampler.

use deepstan::{DeepStan, ImportanceSettings, Method, NutsSettings};
use gprob::value::Value;
use inference::advi::AdviConfig;
use serve::client::Client;
use serve::protocol::{MethodSpec, Request, Response};
use serve::server::{ServeConfig, Server};
use stan2gprob::Scheme;

fn request_for(entry: &model_zoo::ModelEntry, method: MethodSpec, chains: usize) -> Request {
    Request {
        name: entry.name.to_string(),
        scheme: Scheme::Mixed,
        method,
        chains,
        seed: 42,
        gq: false,
        data: entry.dataset(9),
        source: entry.source.to_string(),
    }
}

fn direct_fit(request: &Request, method: Method) -> deepstan::Fit {
    let program = DeepStan::compile(&request.source).unwrap();
    let refs: Vec<(&str, Value<f64>)> = request
        .data
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    program
        .session(&refs)
        .unwrap()
        .scheme(request.scheme)
        .chains(request.chains)
        .seed(request.seed)
        .run(method)
        .unwrap()
}

fn assert_bitwise_equal(served: &serve::ServedFit, direct: &deepstan::Fit) {
    assert_eq!(served.names, direct.names);
    assert_eq!(served.chains.len(), direct.chains.len());
    for (s, d) in served.chains.iter().zip(&direct.chains) {
        assert_eq!(s.divergences, d.divergences);
        assert_eq!(s.n_grad_evals, d.n_grad_evals);
        assert_eq!(s.draws.len(), d.draws.len());
        for (srow, drow) in s.draws.iter().zip(&d.draws) {
            assert_eq!(srow.len(), drow.len());
            for (a, b) in srow.iter().zip(drow) {
                assert_eq!(a.to_bits(), b.to_bits(), "served {a} != direct {b}");
            }
        }
    }
}

#[test]
fn served_nuts_draws_are_bitwise_equal_to_direct_sessions() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for name in ["coin", "eight_schools_centered", "kidscore_momiq"] {
        let Some(entry) = model_zoo::find(name) else {
            continue;
        };
        let request = request_for(
            &entry,
            MethodSpec::Nuts {
                warmup: 60,
                samples: 50,
            },
            3,
        );
        let served = client.request(&request).unwrap();
        let direct = direct_fit(
            &request,
            Method::Nuts(NutsSettings {
                warmup: 60,
                samples: 50,
                ..Default::default()
            }),
        );
        assert_bitwise_equal(&served, &direct);
        // Repeat the identical request: the cache-hit path must serve the
        // same bits too.
        let again = client.request(&request).unwrap();
        assert_bitwise_equal(&again, &direct);
    }
    server.shutdown();
}

#[test]
fn served_advi_and_importance_match_direct_sessions() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let coin = model_zoo::find("coin").unwrap();

    let advi_req = request_for(&coin, MethodSpec::Advi { steps: 150 }, 2);
    let served = client.request(&advi_req).unwrap();
    let direct = direct_fit(
        &advi_req,
        Method::Advi(AdviConfig {
            steps: 150,
            ..Default::default()
        }),
    );
    assert_bitwise_equal(&served, &direct);

    let mut imp_req = request_for(&coin, MethodSpec::Importance { particles: 300 }, 1);
    imp_req.scheme = Scheme::Generative;
    let served = client.request(&imp_req).unwrap();
    let direct = direct_fit(
        &imp_req,
        Method::Importance(ImportanceSettings { particles: 300 }),
    );
    assert_bitwise_equal(&served, &direct);
    server.shutdown();
}

#[test]
fn served_generated_quantities_match_direct_sessions() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let coin = model_zoo::find("coin").unwrap();
    let mut request = request_for(
        &coin,
        MethodSpec::Nuts {
            warmup: 40,
            samples: 30,
        },
        2,
    );
    request.gq = true;
    let served = client.request(&request).unwrap();

    let program = DeepStan::compile(&request.source).unwrap();
    let refs: Vec<(&str, Value<f64>)> = request
        .data
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    let mut session = program
        .session(&refs)
        .unwrap()
        .chains(request.chains)
        .seed(request.seed);
    let mut fit = session
        .run(Method::Nuts(NutsSettings {
            warmup: 40,
            samples: 30,
            ..Default::default()
        }))
        .unwrap();
    session.generated_quantities(&mut fit).unwrap();
    let gq = fit.gq.as_ref().unwrap();

    assert_eq!(served.gq_names.as_ref(), Some(&gq.names));
    assert_eq!(served.gq_chains.len(), gq.chains.len());
    for ((index, srows), drows) in served.gq_chains.iter().zip(&gq.chains) {
        assert_eq!(served.gq_chains[*index].0, *index);
        assert_eq!(srows.len(), drows.len());
        for (srow, drow) in srows.iter().zip(drows) {
            for (a, b) in srow.iter().zip(drow) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
    server.shutdown();
}

#[test]
fn chain_frames_stream_before_done_and_malformed_requests_report_errors() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let coin = model_zoo::find("coin").unwrap();
    let request = request_for(
        &coin,
        MethodSpec::Nuts {
            warmup: 30,
            samples: 20,
        },
        3,
    );
    // Observe the stream order: names first, then every chain, then done.
    let mut order = Vec::new();
    client
        .request_streaming(&request, &mut |frame| {
            order.push(match frame {
                Response::Names { .. } => "names",
                Response::Chain { .. } => "chain",
                Response::Done { .. } => "done",
                _ => "other",
            });
        })
        .unwrap();
    assert_eq!(order.first(), Some(&"names"));
    assert_eq!(order.last(), Some(&"done"));
    assert_eq!(order.iter().filter(|t| **t == "chain").count(), 3);

    // A model that fails to compile reports `error` (and the connection
    // stays usable for the next request).
    let mut bad = request.clone();
    bad.source = "parameters {".to_string();
    let err = client.request(&bad).unwrap_err();
    assert!(matches!(err, serve::ClientError::Server(_)), "{err}");
    let ok = client.request(&request).unwrap();
    assert_eq!(ok.chains.len(), 3);
    server.shutdown();
}
