//! Cache-concurrency suite: concurrent requests for one uncached model
//! compile and bind it exactly once, cache hits perform zero
//! compile/resolve/DProg-lower work, and worker pools recycle chain
//! workspaces across requests.
//!
//! Everything runs inside ONE `#[test]` function: the assertions read the
//! process-wide compile/bind counters (`deepstan::api::compile_count`,
//! `gprob::model::bind_count`), which would race against other tests in
//! this binary if the harness ran them in parallel.

use std::sync::Arc;

use serve::cache::ModelCache;
use serve::client::Client;
use serve::protocol::{MethodSpec, Request};
use serve::server::{ServeConfig, Server};
use stan2gprob::Scheme;

#[test]
fn concurrent_requests_compile_once_and_cache_hits_do_zero_compile_work() {
    let coin = model_zoo::find("coin").unwrap();
    let data = coin.dataset(3);

    // --- Thundering herd on a cold cache: 8 threads, one compile+bind. ---
    let cache = Arc::new(ModelCache::new());
    let compiles_before = deepstan::api::compile_count();
    let binds_before = gprob::model::bind_count();
    let models: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let data = data.clone();
                s.spawn(move || {
                    cache
                        .get_or_bind(coin.source, Scheme::Mixed, &data)
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        deepstan::api::compile_count() - compiles_before,
        1,
        "8 concurrent requests must run the front-end compile exactly once"
    );
    assert_eq!(
        gprob::model::bind_count() - binds_before,
        1,
        "8 concurrent requests must run resolve/sweep-lower/DProg-lower exactly once"
    );
    for m in &models {
        assert!(Arc::ptr_eq(&m.model, &models[0].model));
    }
    let stats = cache.stats();
    assert_eq!(stats.model_misses, 1);
    assert_eq!(stats.model_hits, 7);

    // --- Cache hits perform zero compile/resolve/lower work. ---
    let compiles_before = deepstan::api::compile_count();
    let binds_before = gprob::model::bind_count();
    cache
        .get_or_bind(coin.source, Scheme::Mixed, &data)
        .unwrap();
    assert_eq!(deepstan::api::compile_count() - compiles_before, 0);
    assert_eq!(gprob::model::bind_count() - binds_before, 0);

    // --- End to end over the wire: the second identical request is served
    // entirely from cache (zero new compiles/binds), and concurrent
    // connections racing a cold model still compile it once. ---
    let server = Server::start(ServeConfig::default()).unwrap();
    let request = Request {
        name: coin.name.to_string(),
        scheme: Scheme::Mixed,
        method: MethodSpec::Nuts {
            warmup: 30,
            samples: 20,
        },
        chains: 2,
        seed: 5,
        gq: false,
        data: data.clone(),
        source: coin.source.to_string(),
    };
    let mut client = Client::connect(server.addr()).unwrap();
    client.request(&request).unwrap();
    let compiles_before = deepstan::api::compile_count();
    let binds_before = gprob::model::bind_count();
    client.request(&request).unwrap();
    assert_eq!(
        deepstan::api::compile_count() - compiles_before,
        0,
        "a served cache hit must not touch the front end"
    );
    assert_eq!(
        gprob::model::bind_count() - binds_before,
        0,
        "a served cache hit must not rebind the model"
    );

    // Cold model, raced by 4 connections at once: exactly one compile+bind.
    let schools = model_zoo::find("eight_schools_centered").unwrap();
    let cold = Request {
        name: schools.name.to_string(),
        scheme: Scheme::Mixed,
        method: MethodSpec::Nuts {
            warmup: 30,
            samples: 20,
        },
        chains: 2,
        seed: 5,
        gq: false,
        data: schools.dataset(3),
        source: schools.source.to_string(),
    };
    let compiles_before = deepstan::api::compile_count();
    let binds_before = gprob::model::bind_count();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let cold = cold.clone();
            let addr = server.addr();
            s.spawn(move || {
                Client::connect(addr).unwrap().request(&cold).unwrap();
            });
        }
    });
    assert_eq!(deepstan::api::compile_count() - compiles_before, 1);
    assert_eq!(gprob::model::bind_count() - binds_before, 1);

    // --- Workspace pooling: repeat traffic stops allocating workspaces. ---
    let cached = server
        .cache()
        .get_or_bind(coin.source, Scheme::Mixed, &data)
        .unwrap();
    for _ in 0..6 {
        client.request(&request).unwrap();
    }
    // Workspaces go back to the pool as each chain's target drops, so
    // serial requests can never hold more than `chains` at once: total
    // allocations stay bounded by `chains` no matter how many requests
    // run (without pooling this connection would have allocated
    // chains x requests workspaces by now). The exact count is
    // scheduling-dependent — a chain that finishes early recycles its
    // workspace to the next chain.
    let created = cached.pool.created();
    assert!(
        (1..=request.chains as u64).contains(&created),
        "pooled chain workspaces must be reused across requests, \
         not allocated per chain (created {created})"
    );
    assert!(cached.pool.idle() >= 1);

    // --- A cached bound model carries its native density program (when
    // the platform compiles one) — eviction must not be the only way the
    // serve tier exercises the JIT. ---
    if cfg!(all(target_arch = "x86_64", target_os = "linux"))
        && std::env::var("GPROB_JIT").map_or(true, |v| v != "0" && v != "off")
    {
        assert!(
            cached.model.jit().is_some(),
            "served coin model should carry native code: {:?}",
            cached.model.jit_decline().map(|d| d.reason().to_string())
        );
    }
    server.shutdown();

    // --- Bounded cache over the wire: a capacity-2 server evicts the LRU
    // bound model under three-tenant traffic, and a request for the evicted
    // model re-binds it correctly (one bind, same answers as a fresh
    // server would give). ---
    let bounded = Server::start(ServeConfig {
        model_cache_capacity: Some(2),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(bounded.addr()).unwrap();
    let request_for = |name: &str| {
        let entry = model_zoo::find(name).unwrap();
        Request {
            name: entry.name.to_string(),
            scheme: Scheme::Mixed,
            method: MethodSpec::Nuts {
                warmup: 30,
                samples: 20,
            },
            chains: 1,
            seed: 5,
            gq: false,
            data: entry.dataset(3),
            source: entry.source.to_string(),
        }
    };
    let first = client.request(&request_for("coin")).unwrap();
    client
        .request(&request_for("eight_schools_centered"))
        .unwrap();
    assert_eq!(bounded.cache().evictions(), 0);
    // Third distinct model overflows the cap; coin is now the LRU.
    client.request(&request_for("nes_logit")).unwrap();
    assert_eq!(bounded.cache().n_models(), 2);
    assert_eq!(bounded.cache().evictions(), 1);
    // Re-requesting the evicted model re-binds it (exactly one bind) and
    // reproduces the original run bit for bit — eviction lost no state
    // that matters.
    let binds_before = gprob::model::bind_count();
    let again = client.request(&request_for("coin")).unwrap();
    assert_eq!(
        gprob::model::bind_count() - binds_before,
        1,
        "the evicted model must be re-bound exactly once"
    );
    assert_eq!(bounded.cache().evictions(), 2);
    assert_eq!(first.names, again.names);
    assert_eq!(first.chains.len(), again.chains.len());
    for (a, b) in first.chains.iter().zip(&again.chains) {
        assert_eq!(
            a.draws, b.draws,
            "re-binding after eviction must reproduce the original draws"
        );
    }
    bounded.shutdown();
}
