//! Differential suite for the slot-resolution refactor: on every runnable
//! corpus model and every compilation scheme, the slot-resolved density path
//! (`GModel::log_density_f64`) must agree with the retained string-keyed
//! baseline (`GModel::log_density_f64_baseline`) to 1e-12, pointwise — and
//! the gradients computed through both paths must match too.

use deepstan::DeepStan;
use gprob::eval::NoExternals;
use gprob::value::Value;
use gprob::GModel;
use minidiff::{grad, tape, Var};
use stan2gprob::Scheme;

fn probe_points(dim: usize) -> Vec<Vec<f64>> {
    let seeds = [
        vec![0.1, -0.3, 0.7],
        vec![0.5, 0.2, -0.1],
        vec![-0.8, 1.1, 0.4],
        vec![1.5, -1.5, 0.0],
        vec![0.0, 0.0, 0.0],
    ];
    seeds
        .iter()
        .map(|p| (0..dim).map(|i| p[i % p.len()]).collect())
        .collect()
}

fn baseline_grad(model: &GModel, theta: &[f64]) -> Option<(f64, Vec<f64>)> {
    tape::reset();
    let vars: Vec<Var> = theta.iter().map(|&x| Var::new(x)).collect();
    let lp = model.log_density_baseline(&vars, &NoExternals).ok()?;
    let g = grad(lp, &vars);
    Some((lp.value(), g))
}

#[test]
fn resolved_density_matches_string_baseline_on_the_whole_corpus() {
    let mut checked_models = 0;
    let mut checked_points = 0;
    for entry in model_zoo::corpus() {
        if !entry.should_run() {
            continue;
        }
        let Ok(program) = DeepStan::compile_named(entry.name, entry.source) else {
            continue;
        };
        let data = entry.dataset(3);
        let data_refs: Vec<(&str, Value<f64>)> =
            data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let mut model_checked = false;
        for scheme in [Scheme::Comprehensive, Scheme::Mixed, Scheme::Generative] {
            let Ok(model) = program.bind_with(scheme, &data_refs) else {
                continue;
            };
            for theta in probe_points(model.dim()) {
                let resolved = model.log_density_f64(&theta);
                let baseline = model.log_density_f64_baseline(&theta);
                match (resolved, baseline) {
                    (Ok(a), Ok(b)) => {
                        // -inf == -inf is fine; finite values must agree tightly.
                        if a.is_finite() || b.is_finite() {
                            assert!(
                                (a - b).abs() < 1e-12,
                                "{} ({scheme:?}) at {theta:?}: resolved {a} vs baseline {b}",
                                entry.name
                            );
                        }
                        model_checked = true;
                        checked_points += 1;
                    }
                    (Err(ea), Err(_eb)) => {
                        // Both paths must fail together (e.g. missing stdlib).
                        let _ = ea;
                    }
                    (a, b) => panic!(
                        "{} ({scheme:?}): paths diverge: resolved {a:?} vs baseline {b:?}",
                        entry.name
                    ),
                }
            }
        }
        if model_checked {
            checked_models += 1;
        }
    }
    assert!(
        checked_models >= 10,
        "only {checked_models} corpus models were comparable"
    );
    assert!(
        checked_points >= 100,
        "only {checked_points} points checked"
    );
}

#[test]
fn resolved_gradients_match_string_baseline() {
    for name in ["coin", "eight_schools_centered", "kidscore_momhs"] {
        let Some(entry) = model_zoo::find(name) else {
            continue;
        };
        let program = DeepStan::compile_named(name, entry.source).unwrap();
        let data = entry.dataset(5);
        let data_refs: Vec<(&str, Value<f64>)> =
            data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let model = program.bind(&data_refs).unwrap();
        for theta in probe_points(model.dim()) {
            let (lp_resolved, g_resolved) = model.log_density_and_grad(&theta).unwrap();
            let (lp_baseline, g_baseline) = baseline_grad(&model, &theta).unwrap();
            assert!(
                (lp_resolved - lp_baseline).abs() < 1e-12,
                "{name}: {lp_resolved} vs {lp_baseline}"
            );
            for (i, (a, b)) in g_resolved.iter().zip(&g_baseline).enumerate() {
                assert!(
                    (a - b).abs() < 1e-10,
                    "{name}: gradient component {i} differs: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn prior_runs_on_the_resolved_runtime_stay_in_support() {
    use std::cell::RefCell;
    use std::rc::Rc;
    let entry = model_zoo::find("coin").unwrap();
    let program = DeepStan::compile_named("coin", entry.source).unwrap();
    let data = entry.dataset(4);
    let data_refs: Vec<(&str, Value<f64>)> =
        data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let model = program.bind(&data_refs).unwrap();
    let rng = Rc::new(RefCell::new(rand::SeedableRng::seed_from_u64(2)));
    for _ in 0..25 {
        let run = model.run_prior(rng.clone()).unwrap();
        // The trace crosses back to the string-keyed world at this boundary.
        let z = run.trace.get("z").unwrap().as_real().unwrap();
        assert!((0.0..=1.0).contains(&z));
        assert!(run.score.is_finite());
    }
}
