//! Chaos suite: deterministic fault injection against a live server,
//! proving the serving tier loses requests but never capacity.
//!
//! Every test drives one fault class from `serve::faults` (worker panics,
//! queue delays, synthetic socket write errors) or one robustness contract
//! (deadlines, drain, slow-loris reads) and then asserts the server still
//! serves at full strength: the pool keeps all its workers, in-flight
//! returns to zero, injected-fault counts match observations exactly, and
//! draws served between faults stay **bitwise** equal to an in-process
//! `Session::run` with the same seed.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use deepstan::{DeepStan, Method, NutsSettings};
use gprob::value::Value;
use serve::client::{Client, ClientError};
use serve::faults::FaultPlan;
use serve::protocol::{MethodSpec, Request};
use serve::server::{ServeConfig, Server};
use stan2gprob::Scheme;

fn coin_request(warmup: usize, samples: usize, seed: u64) -> Request {
    let coin = model_zoo::find("coin").expect("corpus has coin");
    Request {
        name: coin.name.to_string(),
        scheme: Scheme::Mixed,
        method: MethodSpec::Nuts { warmup, samples },
        chains: 1,
        seed,
        gq: false,
        data: coin.dataset(9),
        source: coin.source.to_string(),
    }
}

/// In-process fit for `request` with the sample count overridden — NUTS
/// iteration `i` does not depend on the total iteration count, so a
/// shorter same-seed run is the longer run's bitwise prefix.
fn direct_nuts_fit(request: &Request, samples: usize) -> deepstan::Fit {
    let MethodSpec::Nuts { warmup, .. } = request.method else {
        panic!("nuts request expected");
    };
    let program = DeepStan::compile(&request.source).unwrap();
    let refs: Vec<(&str, Value<f64>)> = request
        .data
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    program
        .session(&refs)
        .unwrap()
        .scheme(request.scheme)
        .chains(request.chains)
        .seed(request.seed)
        .run(Method::Nuts(NutsSettings {
            warmup,
            samples,
            ..Default::default()
        }))
        .unwrap()
}

fn assert_draws_bitwise(served: &serve::ServedFit, direct: &deepstan::Fit) {
    assert_eq!(served.chains.len(), direct.chains.len());
    for (s, d) in served.chains.iter().zip(&direct.chains) {
        assert_eq!(s.draws.len(), d.draws.len());
        for (srow, drow) in s.draws.iter().zip(&d.draws) {
            for (a, b) in srow.iter().zip(drow) {
                assert_eq!(a.to_bits(), b.to_bits(), "served {a} != direct {b}");
            }
        }
    }
}

fn config_with(faults: &str) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 8,
        faults: FaultPlan::parse(faults).unwrap(),
        ..ServeConfig::default()
    }
}

fn wait_idle(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.in_flight() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.in_flight(), 0, "in-flight must return to zero");
}

#[test]
fn panic_faults_do_not_lose_workers() {
    // Every 3rd job panics; with 2 workers and 4 injected panics, a pool
    // that lost a worker per panic would deadlock long before request 12.
    let server = Server::start(config_with("panic:every=3")).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let request = coin_request(20, 20, 7);
    let direct = direct_nuts_fit(&request, 20);
    let mut completed = 0;
    let mut panicked = 0;
    for _ in 0..12 {
        match client.request(&request) {
            Ok(fit) => {
                completed += 1;
                assert!(!fit.deadline_exceeded);
                assert_draws_bitwise(&fit, &direct);
            }
            Err(ClientError::Server(message)) => {
                panicked += 1;
                assert!(
                    message.contains("worker panicked"),
                    "unexpected server error: {message}"
                );
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert_eq!(panicked, 4, "every=3 over 12 jobs injects exactly 4 panics");
    assert_eq!(completed, 8);
    assert_eq!(server.faults().injected_panics(), 4);
    wait_idle(&server);
    server.shutdown();
}

#[test]
fn delay_faults_slow_requests_without_dropping_them() {
    let server = Server::start(config_with("delay:ms=30:every=2")).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let request = coin_request(20, 20, 11);
    let direct = direct_nuts_fit(&request, 20);
    for _ in 0..6 {
        let fit = client.request(&request).unwrap();
        assert_draws_bitwise(&fit, &direct);
    }
    assert_eq!(server.faults().injected_delays(), 3);
    wait_idle(&server);
    server.shutdown();
}

#[test]
fn io_err_faults_drop_connections_not_capacity() {
    // Every 4th response-frame write fails; the connection dies, the
    // server does not. Reconnect and keep going.
    let server = Server::start(config_with("io_err:every=4")).unwrap();
    let request = coin_request(20, 20, 13);
    let direct = direct_nuts_fit(&request, 20);
    let mut client = Client::connect(server.addr()).unwrap();
    let mut completed = 0;
    let mut dropped = 0;
    for _ in 0..10 {
        match client.request(&request) {
            Ok(fit) => {
                completed += 1;
                assert_draws_bitwise(&fit, &direct);
            }
            Err(ClientError::Io(_) | ClientError::Protocol(_)) => {
                dropped += 1;
                client = Client::connect(server.addr()).unwrap();
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(dropped >= 1, "io_err:every=4 must drop at least one stream");
    assert!(
        completed >= 1,
        "the server must keep serving between faults"
    );
    assert!(server.faults().injected_io_errs() >= 1);
    // Full capacity afterwards: a fresh connection completes cleanly
    // (skipping past any write scheduled to fault).
    let mut fresh = Client::connect(server.addr()).unwrap();
    let ok = (0..4).any(|_| fresh.request(&request).is_ok());
    assert!(ok, "a fresh connection must complete after io_err faults");
    wait_idle(&server);
    server.shutdown();
}

#[test]
fn deadline_frees_the_worker_and_serves_a_bitwise_prefix() {
    let server = Server::start(ServeConfig {
        workers: 1,
        request_timeout: Some(Duration::from_millis(60)),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // Far more iterations than 60ms allows: the deadline must cut it.
    let request = coin_request(20, 50_000_000, 17);
    let before = obs::global().snapshot();
    let start = Instant::now();
    let fit = client.request(&request).unwrap();
    assert!(fit.deadline_exceeded, "the deadline must have fired");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "a deadline-exceeded request must come back promptly"
    );
    let partial = &fit.chains[0];
    assert!(
        partial.draws.len() < 50_000_000,
        "the run cannot have finished"
    );
    // The partial chain is the bitwise prefix of the same-seed run: a
    // direct run asked for exactly that many draws reproduces it.
    if !partial.draws.is_empty() {
        let direct = direct_nuts_fit(&request, partial.draws.len());
        assert_draws_bitwise(&fit, &direct);
    }
    let delta = obs::global().snapshot().delta(&before);
    assert!(delta.counter("serve.deadline_exceeded").unwrap_or(0) >= 1);
    assert!(delta.counter("serve.cancelled").unwrap_or(0) >= 1);
    // The single worker is free again: a small request completes.
    let quick = client.request(&coin_request(10, 10, 19)).unwrap();
    assert!(!quick.deadline_exceeded);
    assert_eq!(quick.chains[0].draws.len(), 10);
    wait_idle(&server);
    server.shutdown();
}

#[test]
fn shutdown_drains_then_cancels_stragglers() {
    let server = Server::start(ServeConfig {
        workers: 1,
        drain_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let runner = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.request(&coin_request(20, 50_000_000, 23))
    });
    // Wait until the long request is actually in flight.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.in_flight() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.in_flight(), 1, "the long request must be running");
    let before = obs::global().snapshot();
    let start = Instant::now();
    server.shutdown();
    // Polite window (150ms) + cancellation unwind; nowhere near the
    // request's natural runtime.
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "drain must cancel the straggler, not wait it out"
    );
    let fit = runner.join().unwrap().unwrap();
    assert!(
        fit.deadline_exceeded,
        "a drained request ends with deadline_exceeded"
    );
    let delta = obs::global().snapshot().delta(&before);
    let drained = delta.histogram("serve.drain_ns").expect("drain recorded");
    assert!(drained.count >= 1);
}

#[test]
fn slow_loris_half_prefix_frees_the_connection() {
    let server = Server::start(ServeConfig {
        io_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    })
    .unwrap();
    // Write half a length prefix and stall: the server must drop us once
    // the in-frame timeout lapses, not pin the connection thread.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(&[0u8, 0u8]).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let start = Instant::now();
    let mut buf = [0u8; 1];
    // EOF (Ok(0)) or a reset error both mean the server hung up.
    let hung_up = match stream.read(&mut buf) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => !matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
    };
    assert!(hung_up, "server must drop a stalled half-frame connection");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "the drop must happen within the io timeout, not eventually"
    );
    server.shutdown();
}

#[test]
fn idle_keepalive_connections_outlive_the_io_timeout() {
    let server = Server::start(ServeConfig {
        io_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let request = coin_request(10, 10, 29);
    client.request(&request).unwrap();
    // Idle well past the io timeout: waiting *between* frames must not
    // count against it.
    std::thread::sleep(Duration::from_millis(400));
    let fit = client.request(&request).unwrap();
    assert_eq!(fit.chains[0].draws.len(), 10);
    server.shutdown();
}

#[test]
fn retry_absorbs_backpressure_under_load() {
    // One worker, minimal queue: concurrent clients are guaranteed to see
    // busy rejections; run_with_retry must absorb them.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let tallies: Vec<(usize, usize)> = std::thread::scope(|s| {
        (0..4u64)
            .map(|conn| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let policy = serve::client::RetryPolicy {
                        max_attempts: 50,
                        seed: conn + 1,
                        ..Default::default()
                    };
                    let mut completed = 0;
                    let mut retries = 0;
                    for i in 0..3 {
                        let request = coin_request(20, 20, 31 + conn * 10 + i);
                        let outcome = client.run_with_retry(&request, &policy).unwrap();
                        completed += 1;
                        retries += outcome.retries;
                    }
                    (completed, retries)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let completed: usize = tallies.iter().map(|t| t.0).sum();
    assert_eq!(completed, 12, "every request must eventually complete");
    wait_idle(&server);
    server.shutdown();
}
