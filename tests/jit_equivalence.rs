//! Differential suite for the native x86_64 density-program backend
//! (`gprob::dprog::jit`):
//!
//! * across the whole corpus and every scheme, models whose density program
//!   JIT-compiles must produce **bitwise identical** values and gradients to
//!   the interpreted DProg at every probe point — same IEEE operations in
//!   the same order is the emitter's contract, not an approximation;
//! * the models the emitter claims to support must actually compile to
//!   native code (both eight_schools variants, the kidscore family, arK,
//!   the garch11 / arma11 recurrence loops, coin, nes_logit);
//! * models whose density program declines keep the tape path bitwise, and
//!   the JIT decline states a reason;
//! * repeated evaluation never reallocates the executable page (the code
//!   pointer and length are pinned across evaluations);
//! * a proptest over random expression bodies confirms the native and
//!   interpreted programs never diverge by a single bit.
//!
//! The suite is environment-aware: under `GPROB_JIT=0` (or on a target
//! without the emitter) it instead asserts the graceful-decline contract —
//! every model declines with a stated reason and evaluates through the
//! interpreter unchanged. CI runs the same binary both ways.

use gprob::value::{Env, Value};
use gprob::GModel;
use proptest::prelude::*;
use stan2gprob::{compile, Scheme};
use stan_frontend::parse_program;

fn probe_points(dim: usize) -> Vec<Vec<f64>> {
    let seeds = [
        vec![0.1, -0.3, 0.7],
        vec![0.5, 0.2, -0.1],
        vec![-0.8, 1.1, 0.4],
        vec![1.5, -1.5, 0.0],
    ];
    seeds
        .iter()
        .map(|p| (0..dim).map(|i| p[i % p.len()]).collect())
        .collect()
}

fn env_of(data: &[(String, Value<f64>)]) -> Env<f64> {
    data.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
}

fn bind(source: &str, scheme: Scheme, data: &Env<f64>) -> Option<GModel> {
    let ast = parse_program(source).ok()?;
    let compiled = compile(&ast, scheme).ok()?;
    GModel::new(compiled, data.clone()).ok()
}

/// Whether this process expects native compilation to succeed at all.
/// Declining (`GPROB_JIT=0` or an unsupported target) is itself a contract
/// the suite checks, so the expectations branch rather than skip.
fn jit_expected() -> bool {
    if !cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        return false;
    }
    match std::env::var("GPROB_JIT") {
        Ok(v) => v != "0" && v != "off",
        Err(_) => true,
    }
}

fn assert_bits_eq(a: f64, b: f64, what: &std::fmt::Arguments) {
    if a.is_nan() && b.is_nan() {
        return;
    }
    assert!(
        a.to_bits() == b.to_bits(),
        "{what}: jit {a} ({:#018x}) vs interpreted {b} ({:#018x})",
        a.to_bits(),
        b.to_bits()
    );
}

/// Routed (JIT-first) vs pinned interpreted DProg across the corpus:
/// values and gradients bitwise.
#[test]
fn jit_densities_and_gradients_match_the_interpreter_bitwise() {
    let expect_jit = jit_expected();
    let mut jitted_models = 0;
    let mut checked_points = 0;
    for entry in model_zoo::corpus() {
        if !entry.should_run() {
            continue;
        }
        let data = env_of(&entry.dataset(3));
        for scheme in [Scheme::Comprehensive, Scheme::Mixed, Scheme::Generative] {
            let Some(model) = bind(entry.source, scheme, &data) else {
                continue;
            };
            if model.dprog().is_none() {
                // No interpreted program → nothing to JIT; the decline must
                // say so and the tape path is covered by dprog_equivalence.
                let reason = model
                    .jit_decline()
                    .unwrap_or_else(|| panic!("{}: no jit decline reason", entry.name))
                    .reason();
                assert!(!reason.is_empty(), "{}: empty jit decline", entry.name);
                continue;
            }
            match model.jit() {
                Some(j) => {
                    assert!(expect_jit, "{}: jit compiled while disabled", entry.name);
                    assert!(j.code_len() > 0, "{}: empty code buffer", entry.name);
                    jitted_models += 1;
                }
                None => {
                    let reason = model
                        .jit_decline()
                        .unwrap_or_else(|| panic!("{}: no jit decline reason", entry.name))
                        .reason();
                    assert!(!reason.is_empty(), "{}: empty jit decline", entry.name);
                    if !expect_jit {
                        // Disabled / unsupported: the routed path must be the
                        // interpreter, checked below all the same.
                    }
                }
            }
            let dim = model.dim();
            let mut ws_jit = model.grad_workspace();
            let mut ws_int = model.grad_workspace();
            let mut wsv_jit = model.workspace::<f64>();
            let mut wsv_int = model.workspace::<f64>();
            let mut g_jit = vec![0.0; dim];
            let mut g_int = vec![0.0; dim];
            for theta in probe_points(dim) {
                let va = model.log_density_f64_with(&mut wsv_jit, &theta);
                let vb = model.log_density_f64_dprog_with(&mut wsv_int, &theta);
                match (va, vb) {
                    (Ok(a), Ok(b)) => assert_bits_eq(
                        a,
                        b,
                        &format_args!("{} ({scheme:?}) value at {theta:?}", entry.name),
                    ),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!(
                        "{} ({scheme:?}): value paths diverge: {a:?} vs {b:?}",
                        entry.name
                    ),
                }
                let la = model.log_density_and_grad_with(&mut ws_jit, &theta, &mut g_jit);
                let lb = model.log_density_and_grad_dprog_with(&mut ws_int, &theta, &mut g_int);
                match (la, lb) {
                    (Ok(a), Ok(b)) => {
                        assert_bits_eq(
                            a,
                            b,
                            &format_args!("{} ({scheme:?}) grad-lp at {theta:?}", entry.name),
                        );
                        for (i, (x, y)) in g_jit.iter().zip(&g_int).enumerate() {
                            assert_bits_eq(
                                *x,
                                *y,
                                &format_args!("{} ({scheme:?}) grad[{i}] at {theta:?}", entry.name),
                            );
                        }
                        checked_points += 1;
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!(
                        "{} ({scheme:?}): gradient paths diverge: {a:?} vs {b:?}",
                        entry.name
                    ),
                }
            }
        }
    }
    if expect_jit {
        assert!(
            jitted_models >= 15,
            "only {jitted_models} model/scheme pairs compiled to native code"
        );
    } else {
        assert_eq!(jitted_models, 0, "jit compiled while declined globally");
    }
    assert!(
        checked_points >= 100,
        "only {checked_points} points checked"
    );
}

/// Per-model native-compilation assertions: the shapes the emitter supports
/// must compile, end to end, when the environment allows JIT at all.
#[test]
fn supported_corpus_models_compile_to_native_code() {
    let expect_jit = jit_expected();
    for name in [
        "eight_schools_centered",
        "eight_schools_noncentered",
        "kidscore_momhs",
        "kidscore_momiq",
        "kidscore_momhsiq",
        "kidscore_mom_work",
        "arK",
        "garch11",
        "arma11",
        "coin",
        "nes_logit",
        "seeds_binomial",
        "mesquite",
        "blr",
    ] {
        let entry = model_zoo::find(name).unwrap();
        let data = env_of(&entry.dataset(3));
        let model = bind(entry.source, Scheme::Mixed, &data)
            .unwrap_or_else(|| panic!("{name} failed to bind"));
        assert!(model.dprog().is_some(), "{name}: no density program");
        if expect_jit {
            assert!(
                model.jit().is_some(),
                "{name} should JIT-compile: {:?}",
                model.jit_decline().map(|d| d.reason().to_string())
            );
        } else {
            assert!(model.jit().is_none());
            let reason = model.jit_decline().unwrap().reason();
            assert!(!reason.is_empty(), "{name}: empty decline reason");
        }
    }
}

/// A model whose density program declines also declines the JIT — with a
/// reason that points at the missing program — and evaluates through the
/// tape path bitwise on both gradient entry points.
#[test]
fn declined_density_programs_decline_the_jit_and_keep_the_tape_path() {
    let src = r#"
        functions { real f(real x) { return x * 2; } }
        data { int N; real y[N]; }
        parameters { real mu; }
        model { y ~ normal(f(mu), 1); }
    "#;
    let mut data: Env<f64> = Env::new();
    data.insert("N".into(), Value::Int(3));
    data.insert("y".into(), Value::Vector(vec![0.1, 0.2, 0.3]));
    let model = bind(src, Scheme::Mixed, &data).unwrap();
    assert!(model.dprog().is_none());
    assert!(model.jit().is_none());
    let reason = model.jit_decline().unwrap().reason();
    assert!(reason.contains("no density program"), "{reason}");
    let mut ws_a = model.grad_workspace();
    let mut ws_b = model.grad_workspace();
    let mut ga = vec![0.0; 1];
    let mut gb = vec![0.0; 1];
    let la = model
        .log_density_and_grad_with(&mut ws_a, &[0.4], &mut ga)
        .unwrap();
    let lb = model
        .log_density_and_grad_tape_with(&mut ws_b, &[0.4], &mut gb)
        .unwrap();
    assert_eq!(la.to_bits(), lb.to_bits());
    assert_eq!(ga[0].to_bits(), gb[0].to_bits());
}

/// Repeated evaluation through one bound model: the executable page is
/// mapped once at bind time and never reallocated — its address and length
/// are stable across evaluations, and results are deterministic bit for bit.
#[test]
fn repeated_evaluation_never_reallocates_the_code_page() {
    if !jit_expected() {
        return;
    }
    let entry = model_zoo::find("eight_schools_noncentered").unwrap();
    let data = env_of(&entry.dataset(3));
    let model = bind(entry.source, Scheme::Mixed, &data).unwrap();
    let jit = model.jit().expect("eight_schools_noncentered should JIT");
    let (ptr0, len0) = (jit.code_ptr(), jit.code_len());
    let dim = model.dim();
    let theta: Vec<f64> = (0..dim).map(|i| 0.3 * i as f64 - 0.8).collect();
    let mut ws = model.grad_workspace();
    let mut g = vec![0.0; dim];
    let lp0 = model
        .log_density_and_grad_with(&mut ws, &theta, &mut g)
        .unwrap();
    let g0 = g.clone();
    for _ in 0..50 {
        let lp = model
            .log_density_and_grad_with(&mut ws, &theta, &mut g)
            .unwrap();
        assert_eq!(lp.to_bits(), lp0.to_bits());
        for (a, b) in g.iter().zip(&g0) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let jit = model.jit().unwrap();
        assert_eq!(jit.code_ptr(), ptr0, "code page moved");
        assert_eq!(jit.code_len(), len0, "code length changed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Random expression bodies: the routed (JIT-first) and pinned
    /// interpreted gradient paths agree bit for bit, whatever the emitter
    /// decided about the body.
    #[test]
    fn prop_random_bodies_jit_matches_interpreter_bitwise(
        n in 2i64..9,
        shape in 0i64..6,
        u1 in -2.0f64..2.0,
        u2 in -2.0f64..2.0,
    ) {
        let stmt = match shape {
            0 => "y ~ normal(mu + sigma, exp(sigma))",
            1 => "for (i in 1:N) y[i] ~ normal(mu * x[i], sigma + 1)",
            2 => "target += normal_lpdf(y[1] | mu, sigma + 0.5)",
            3 => "y ~ normal(log(fabs(mu) + 1) * to_vector(x), sigma + 0.1)",
            4 => "{ real acc; acc = 0; for (i in 1:N) { acc = acc + mu * x[i]; y[i] ~ normal(acc, sigma + 1); } }",
            _ => "target += log_mix(inv_logit(mu), normal_lpdf(y[1] | 0, 1), normal_lpdf(y[1] | sigma, 1))",
        };
        let src = format!(
            r#"
            data {{ int N; real x[N]; real y[N]; }}
            parameters {{ real mu; real<lower=0> sigma; }}
            model {{
              mu ~ normal(0, 2);
              sigma ~ lognormal(0, 1);
              {stmt};
            }}
            "#
        );
        let mut data: Env<f64> = Env::new();
        data.insert("N".into(), Value::Int(n));
        data.insert(
            "x".into(),
            Value::Vector((0..n).map(|i| 0.3 * i as f64 - 0.7).collect()),
        );
        data.insert(
            "y".into(),
            Value::Vector((0..n).map(|i| 0.41 * i as f64 - 1.1).collect()),
        );
        let model = bind(&src, Scheme::Mixed, &data).unwrap();
        let mut ws_j = model.grad_workspace();
        let mut ws_i = model.grad_workspace();
        let mut gj = vec![0.0; 2];
        let mut gi = vec![0.0; 2];
        for theta in [[u1, u2], [u2, u1]] {
            let lj = model.log_density_and_grad_with(&mut ws_j, &theta, &mut gj).unwrap();
            let li = model.log_density_and_grad_dprog_with(&mut ws_i, &theta, &mut gi).unwrap();
            prop_assert!(
                lj.to_bits() == li.to_bits() || (lj.is_nan() && li.is_nan()),
                "lp {} vs {}", lj, li
            );
            for (a, b) in gj.iter().zip(&gi) {
                prop_assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "grad {} vs {}", a, b
                );
            }
        }
    }
}
