//! Differential and convergence suite for the chain-first Session API and
//! its pooled density workspaces:
//!
//! * the pooled `GModel::log_density_with` path must agree with the
//!   string-keyed `log_density_baseline` to 1e-12 across the corpus, with
//!   repeated calls on ONE workspace (so stale scratch state from a previous
//!   point would be caught);
//! * the pooled gradient path must match the allocating gradient path;
//! * 4-chain NUTS on eight-schools must converge (cross-chain split-R̂
//!   below 1.05 on every component).

use deepstan::{DeepStan, Method, NutsSettings};
use gprob::eval::NoExternals;
use gprob::value::Value;
use stan2gprob::Scheme;

fn probe_points(dim: usize) -> Vec<Vec<f64>> {
    let seeds = [
        vec![0.1, -0.3, 0.7],
        vec![0.5, 0.2, -0.1],
        vec![-0.8, 1.1, 0.4],
        vec![1.5, -1.5, 0.0],
        vec![0.0, 0.0, 0.0],
    ];
    seeds
        .iter()
        .map(|p| (0..dim).map(|i| p[i % p.len()]).collect())
        .collect()
}

#[test]
fn pooled_workspace_density_matches_string_baseline_on_the_whole_corpus() {
    let mut checked_models = 0;
    let mut checked_points = 0;
    for entry in model_zoo::corpus() {
        if !entry.should_run() {
            continue;
        }
        let Ok(program) = DeepStan::compile_named(entry.name, entry.source) else {
            continue;
        };
        let data = entry.dataset(3);
        let data_refs: Vec<(&str, Value<f64>)> =
            data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let mut model_checked = false;
        for scheme in [Scheme::Comprehensive, Scheme::Mixed, Scheme::Generative] {
            let Ok(model) = program.bind_with(scheme, &data_refs) else {
                continue;
            };
            // ONE workspace, reused across every probe point — a reset bug
            // (stale locals, dirty data slots) shows up as a point-to-point
            // discrepancy.
            let mut ws = model.workspace::<f64>();
            for theta in probe_points(model.dim()) {
                let pooled = model.log_density_with(&mut ws, &theta, &NoExternals);
                let baseline = model.log_density_f64_baseline(&theta);
                match (pooled, baseline) {
                    (Ok(a), Ok(b)) => {
                        if a.is_finite() || b.is_finite() {
                            assert!(
                                (a - b).abs() < 1e-12,
                                "{} ({scheme:?}) at {theta:?}: pooled {a} vs baseline {b}",
                                entry.name
                            );
                        }
                        model_checked = true;
                        checked_points += 1;
                    }
                    (Err(_ea), Err(_eb)) => {
                        // Both paths must fail together (e.g. missing stdlib).
                    }
                    (a, b) => panic!(
                        "{} ({scheme:?}): paths diverge: pooled {a:?} vs baseline {b:?}",
                        entry.name
                    ),
                }
            }
            // Evaluate the first point again after the whole sweep: the
            // workspace must be stateless across calls.
            if let Some(theta) = probe_points(model.dim()).first() {
                let again = model.log_density_with(&mut ws, theta, &NoExternals);
                let fresh = model.log_density_f64(theta);
                match (again, fresh) {
                    (Ok(a), Ok(b)) => {
                        if a.is_finite() || b.is_finite() {
                            assert!(
                                (a - b).abs() < 1e-12,
                                "{} ({scheme:?}): workspace retained state: {a} vs {b}",
                                entry.name
                            );
                        }
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("{}: repeat diverges: {a:?} vs {b:?}", entry.name),
                }
            }
        }
        if model_checked {
            checked_models += 1;
        }
    }
    assert!(
        checked_models >= 10,
        "only {checked_models} corpus models were comparable"
    );
    assert!(
        checked_points >= 100,
        "only {checked_points} points checked"
    );
}

#[test]
fn pooled_gradients_match_the_allocating_path() {
    for name in ["coin", "eight_schools_centered", "kidscore_momhs", "arK"] {
        let entry = model_zoo::find(name).unwrap();
        let program = DeepStan::compile_named(name, entry.source).unwrap();
        let data = entry.dataset(5);
        let data_refs: Vec<(&str, Value<f64>)> =
            data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let model = program.bind(&data_refs).unwrap();
        let mut ws = model.grad_workspace();
        let mut g = vec![0.0; model.dim()];
        for theta in probe_points(model.dim()) {
            let lp_pooled = model
                .log_density_and_grad_with(&mut ws, &theta, &mut g)
                .unwrap();
            let (lp_alloc, g_alloc) = model.log_density_and_grad(&theta).unwrap();
            assert!(
                (lp_pooled - lp_alloc).abs() < 1e-12,
                "{name}: {lp_pooled} vs {lp_alloc}"
            );
            for (i, (a, b)) in g.iter().zip(&g_alloc).enumerate() {
                assert!(
                    (a - b).abs() < 1e-10,
                    "{name}: gradient component {i} differs: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn four_chain_nuts_converges_on_eight_schools() {
    let entry = model_zoo::find("eight_schools_noncentered").unwrap();
    let program = DeepStan::compile_named(entry.name, entry.source).unwrap();
    let data = entry.dataset(0);
    let data_refs: Vec<(&str, Value<f64>)> =
        data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    // The mixed scheme historically failed on this model ("unbound
    // variable": merged sample sites were left after the
    // transformed-parameters block that reads them). The merge is now
    // hoisted to the initialization position, so the DEFAULT mixed scheme
    // must both evaluate and converge here.
    let mixed_lp = program
        .bind_with(Scheme::Mixed, &data_refs)
        .unwrap()
        .log_density_f64(&[0.1; 10])
        .expect("mixed-scheme density must evaluate on eight_schools_noncentered");
    assert!(mixed_lp.is_finite());
    let fit = program
        .session(&data_refs)
        .unwrap()
        .scheme(Scheme::Mixed)
        .chains(4)
        .seed(42)
        .run(Method::Nuts(NutsSettings {
            warmup: 500,
            samples: 500,
            ..Default::default()
        }))
        .unwrap();
    assert_eq!(fit.n_chains(), 4);
    for chain in &fit.chains {
        assert_eq!(chain.draws.len(), 500);
        assert!(chain.n_grad_evals > 0);
    }
    let worst = fit.max_split_rhat();
    assert!(
        worst < 1.05,
        "cross-chain split-R-hat {worst} >= 1.05 on eight-schools"
    );
    // Chains are genuinely distinct samples, and the pooled ESS reflects
    // four chains' worth of information.
    assert_ne!(fit.chains[0].draws[0], fit.chains[1].draws[0]);
    assert!(fit.ess("mu").unwrap() > 200.0, "{}", fit.ess("mu").unwrap());
    // Rank-normalized diagnostics (Vehtari et al. 2021) agree that the run
    // converged: bulk+folded rank-normalized split-R-hat near 1 and a
    // healthy tail-ESS on every component.
    let worst_rank = fit.max_rank_normalized_split_rhat();
    assert!(
        worst_rank < 1.05,
        "rank-normalized split-R-hat {worst_rank}"
    );
    let mu_tail = fit.tail_ess("mu").unwrap();
    assert!(mu_tail > 100.0, "tail-ESS {mu_tail}");
}
