//! End-to-end posterior checks on conjugate / analytically tractable models,
//! exercising the whole pipeline (frontend → compiler → runtime → Session →
//! NUTS → diagnostics) through the public chain-first API only.

use deepstan::{DeepStan, Method, NutsSettings};
use gprob::value::Value;
use inference::diagnostics::{accuracy_pass, ess, split_rhat};
use stan2gprob::Scheme;

#[test]
fn conjugate_normal_posterior_is_recovered_by_both_runtimes() {
    // y_i ~ N(mu, 1), mu ~ N(0, 1). With n observations the posterior is
    // N(sum(y) / (n + 1), 1 / (n + 1)).
    let src = r#"
        data { int N; real y[N]; }
        parameters { real mu; }
        model { mu ~ normal(0, 1); y ~ normal(mu, 1); }
    "#;
    let y = vec![1.3, 0.7, 1.9, 1.1, 0.4, 1.6];
    let n = y.len() as f64;
    let post_mean = y.iter().sum::<f64>() / (n + 1.0);
    let post_sd = (1.0 / (n + 1.0)).sqrt();
    let program = DeepStan::compile(src).unwrap();
    let data = vec![("N", Value::Int(y.len() as i64)), ("y", Value::Vector(y))];
    let settings = NutsSettings {
        warmup: 300,
        samples: 800,
        seed: 5,
        ..Default::default()
    };

    let compiled = program
        .session(&data)
        .unwrap()
        .run(Method::Nuts(settings.clone()))
        .unwrap();
    let reference = program
        .session(&data)
        .unwrap()
        .reference(true)
        .run(Method::Nuts(settings))
        .unwrap();
    for (label, fit) in [("gprob", &compiled), ("stan_ref", &reference)] {
        let s = fit.summary("mu").unwrap();
        assert!(
            accuracy_pass(s.mean, post_mean, post_sd),
            "{label}: mean {} vs analytic {post_mean}",
            s.mean
        );
        assert!(
            (s.stddev - post_sd).abs() < 0.05,
            "{label}: sd {}",
            s.stddev
        );
        let chain = fit.component("mu").unwrap();
        assert!(split_rhat(&chain) < 1.1, "{label}: rhat");
        assert!(ess(&chain) > 50.0, "{label}: ess");
        // The Fit's own cross-chain diagnostics agree on a single chain.
        assert!(fit.split_rhat("mu").unwrap() < 1.1, "{label}: fit rhat");
    }
}

#[test]
fn constrained_scale_parameter_stays_positive_and_matches_reference() {
    let entry = model_zoo::find("kidscore_momhs").unwrap();
    let program = DeepStan::compile_named(entry.name, entry.source).unwrap();
    let data = entry.dataset(1);
    let data_refs: Vec<(&str, Value<f64>)> =
        data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let fit = program
        .session(&data_refs)
        .unwrap()
        .seed(2)
        .run(Method::Nuts(NutsSettings {
            warmup: 300,
            samples: 600,
            ..Default::default()
        }))
        .unwrap();
    let sigma = fit.component("sigma").unwrap();
    assert!(sigma.iter().all(|&s| s > 0.0), "sigma must stay positive");
    // The data was generated with sigma = 1 and beta = 2.
    let beta = fit.summary("beta").unwrap();
    assert!((beta.mean - 2.0).abs() < 0.5, "beta {}", beta.mean);
    let sig = fit.summary("sigma").unwrap();
    assert!((sig.mean - 1.0).abs() < 0.4, "sigma {}", sig.mean);
}

#[test]
fn all_three_schemes_agree_on_a_generative_model() {
    let entry = model_zoo::find("kidscore_mom_work").unwrap();
    let program = DeepStan::compile_named(entry.name, entry.source).unwrap();
    let data = entry.dataset(4);
    let data_refs: Vec<(&str, Value<f64>)> =
        data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let settings = NutsSettings {
        warmup: 250,
        samples: 500,
        seed: 11,
        ..Default::default()
    };
    let mut means = Vec::new();
    for scheme in [Scheme::Comprehensive, Scheme::Mixed, Scheme::Generative] {
        let fit = program
            .session(&data_refs)
            .unwrap()
            .scheme(scheme)
            .run(Method::Nuts(settings.clone()))
            .unwrap();
        means.push(fit.summary("b1").unwrap());
    }
    for pair in means.windows(2) {
        assert!(
            accuracy_pass(pair[0].mean, pair[1].mean, pair[1].stddev.max(0.05)),
            "schemes disagree: {} vs {}",
            pair[0].mean,
            pair[1].mean
        );
    }
}

#[test]
fn left_expression_model_constrains_the_sum() {
    // sum(phi) ~ normal(0, 0.001 * N) forces the posterior sum toward zero —
    // this only works because the comprehensive scheme keeps the left
    // expression as an observation.
    let entry = model_zoo::find("sum_to_zero_left_expr").unwrap();
    let program = DeepStan::compile_named(entry.name, entry.source).unwrap();
    let data = entry.dataset(6);
    let data_refs: Vec<(&str, Value<f64>)> =
        data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let fit = program
        .session(&data_refs)
        .unwrap()
        .seed(3)
        .run(Method::Nuts(NutsSettings {
            warmup: 300,
            samples: 600,
            ..Default::default()
        }))
        .unwrap();
    let names: Vec<String> = fit
        .names
        .iter()
        .filter(|n| n.starts_with("phi"))
        .cloned()
        .collect();
    let mean_sum: f64 = names.iter().map(|n| fit.summary(n).unwrap().mean).sum();
    assert!(
        mean_sum.abs() < 0.2,
        "posterior sum {mean_sum} should be ~0"
    );
}

#[test]
fn expected_failures_fail_loudly_not_silently() {
    for name in ["truncated_normal", "ordered_mixture"] {
        let entry = model_zoo::find(name).unwrap();
        let err = DeepStan::compile_named(name, entry.source).err();
        assert!(err.is_some(), "{name} should fail to compile");
    }
    let entry = model_zoo::find("censored_lccdf").unwrap();
    let program = DeepStan::compile_named(entry.name, entry.source).unwrap();
    let data = entry.dataset(1);
    let data_refs: Vec<(&str, Value<f64>)> =
        data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let result = program
        .session(&data_refs)
        .unwrap()
        .seed(1)
        .run(Method::Nuts(NutsSettings {
            warmup: 10,
            samples: 10,
            ..Default::default()
        }));
    assert!(result.is_err(), "lccdf model should fail at runtime");
}
