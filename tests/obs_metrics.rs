//! Telemetry-layer suite: histogram quantile estimates against a
//! sorted-vector oracle (the log₂-bucket error bound), snapshot merge
//! algebra, concurrent-update exactness, and the serve tier's `stats`
//! frame reporting exact request deltas over the wire.
//!
//! The quantile/merge/stress tests use *local* `Registry`/`Histogram`
//! instances, so they can run in parallel. The serve test is the only one
//! in this binary touching the process-global registry (`serve.*` names
//! nothing else here increments), and all its assertions are deltas
//! between its own before/after polls.

use obs::{Histogram, Registry, Snapshot};
use serve::client::Client;
use serve::protocol::{read_frame, write_frame, MethodSpec, Request, Response};
use serve::server::{ServeConfig, Server};

/// Deterministic xorshift64* stream (no RNG crate needed for test data).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The exact order statistic the histogram's `quantile` estimates: the
/// rank-`ceil(q·n)` element (1-based) of the sorted samples.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn quantiles_stay_within_the_bucket_bound_of_the_exact_order_statistic() {
    // Sample sets crossing many magnitudes, plus degenerate shapes that
    // stress the interpolation edges (all-equal, zeros, bucket borders).
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut sets: Vec<Vec<u64>> = vec![
        vec![0; 50],
        vec![7; 128],
        (0..=10).map(|i| 1u64 << i).collect(),
        vec![0, 1, 1, 2, 3, 4, 5, 1023, 1024, 1025],
    ];
    // Log-uniform-ish random set: random bit width, then random bits.
    sets.push(
        (0..500)
            .map(|_| {
                let width = xorshift(&mut state) % 40;
                xorshift(&mut state) >> (63 - width)
            })
            .collect(),
    );
    for samples in &sets {
        let h = Histogram::new();
        for &v in samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        assert_eq!(snap.count, samples.len() as u64);
        assert_eq!(snap.max, *sorted.last().unwrap());
        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let exact = oracle_quantile(&sorted, q);
            let estimate = snap.quantile(q);
            // The estimate interpolates inside the bucket containing the
            // exact order statistic, so it is off by at most the bucket
            // width: a factor of 2 (and never above the recorded max).
            assert!(estimate.is_finite());
            assert!(
                estimate <= snap.max as f64,
                "q={q}: estimate {estimate} above max {}",
                snap.max
            );
            if exact == 0 {
                assert!(estimate <= 1.0, "q={q}: estimate {estimate} for exact 0");
            } else {
                assert!(
                    estimate >= exact as f64 / 2.0 && estimate <= exact as f64 * 2.0,
                    "q={q}: estimate {estimate} more than 2x from exact {exact}"
                );
            }
        }
    }
}

#[test]
fn snapshot_merge_is_associative_with_empty_identity() {
    let mut state = 0xDEAD_BEEF_CAFE_1234u64;
    let mut part = |scale: u32| {
        let r = Registry::new();
        r.counter("events").add(xorshift(&mut state) % 1000);
        r.gauge("level").set((xorshift(&mut state) % 100) as f64);
        let h = r.histogram("lat_ns");
        for _ in 0..200 {
            h.record(xorshift(&mut state) >> (64 - scale));
        }
        r.snapshot()
    };
    let (a, b, c) = (part(20), part(33), part(8));
    // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_eq!(left, right);
    // Empty is the identity on both sides.
    let mut with_empty = a.clone();
    with_empty.merge(&Snapshot::default());
    assert_eq!(with_empty, a);
    let mut empty_first = Snapshot::default();
    empty_first.merge(&a);
    assert_eq!(empty_first, a);
    // A merged histogram's count/sum are the parts' totals, and delta
    // against one part recovers the other's bucket content.
    let (ha, hb) = (&a.histograms["lat_ns"], &b.histograms["lat_ns"]);
    let mut merged = ha.clone();
    merged.merge(hb);
    assert_eq!(merged.count, ha.count + hb.count);
    assert_eq!(merged.sum, ha.sum + hb.sum);
    let back = merged.delta(ha);
    assert_eq!(back.count, hb.count);
    assert_eq!(back.buckets, hb.buckets);
    // The text form round-trips the merged state exactly.
    assert_eq!(Snapshot::parse(&left.to_text()).unwrap(), left);
}

#[test]
fn concurrent_updates_lose_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let r = Registry::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let counter = r.counter("hits");
            let gauge = r.gauge("level");
            let histogram = r.histogram("vals");
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(t * PER_THREAD + i);
                    if i % 100 == 0 {
                        gauge.add(1.0);
                    }
                }
            });
        }
    });
    let snap = r.snapshot();
    assert_eq!(snap.counter("hits"), Some(THREADS * PER_THREAD));
    // Gauge adds go through a CAS loop, so concurrent adds are exact too.
    assert_eq!(
        snap.gauge("level"),
        Some((THREADS * PER_THREAD / 100) as f64)
    );
    let h = snap.histogram("vals").unwrap();
    assert_eq!(h.count, THREADS * PER_THREAD);
    assert_eq!(h.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
    assert_eq!(h.max, THREADS * PER_THREAD - 1);
    // Exact sum of 0..80000.
    let n = THREADS * PER_THREAD;
    assert_eq!(h.sum, n * (n - 1) / 2);
}

#[test]
fn stats_frame_deltas_match_request_counts_and_unknown_frames_error_cleanly() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let coin = model_zoo::find("coin").unwrap();
    let nuts = Request {
        name: coin.name.to_string(),
        scheme: stan2gprob::Scheme::Mixed,
        method: MethodSpec::Nuts {
            warmup: 20,
            samples: 20,
        },
        chains: 1,
        seed: 5,
        gq: false,
        data: coin.dataset(3),
        source: coin.source.to_string(),
    };
    let importance = Request {
        method: MethodSpec::Importance { particles: 100 },
        scheme: stan2gprob::Scheme::Generative,
        ..nuts.clone()
    };

    let mut client = Client::connect(server.addr()).unwrap();
    let before = client.stats().unwrap();
    for _ in 0..3 {
        client.request(&nuts).unwrap();
    }
    for _ in 0..2 {
        client.request(&importance).unwrap();
    }
    let after = client.stats().unwrap();
    let delta = after.delta(&before);
    // Counters are always live, so the deltas are exact regardless of the
    // GPROB_OBS timing gate.
    assert_eq!(delta.counter("serve.requests.nuts"), Some(3));
    assert_eq!(delta.counter("serve.requests.importance"), Some(2));
    assert_eq!(delta.counter("serve.requests.advi").unwrap_or(0), 0);
    assert_eq!(delta.counter("serve.pool.rejected").unwrap_or(0), 0);
    if obs::enabled() {
        // With timing live, every request lands in its method's e2e,
        // queue-wait, and worker-run histograms exactly once.
        for (name, expect) in [
            ("serve.request_ns.nuts", 3),
            ("serve.queue_ns.nuts", 3),
            ("serve.run_ns.nuts", 3),
            ("serve.request_ns.importance", 2),
            ("serve.run_ns.importance", 2),
        ] {
            assert_eq!(
                delta.histogram(name).map(|h| h.count),
                Some(expect),
                "histogram {name}"
            );
        }
    }
    // The stats reply also samples live gauges: nothing queued, and one
    // bound model per (source, scheme) pair the traffic touched.
    assert_eq!(after.gauge("serve.pool.depth"), Some(0.0));
    assert_eq!(after.gauge("serve.cache.models"), Some(2.0));

    // An unknown frame type gets a clean error naming the offending line,
    // and the connection stays usable afterwards.
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, "gimme stats\nplease").unwrap();
    let reply = read_frame(&mut raw).unwrap().expect("error frame");
    match Response::parse(&reply).unwrap() {
        Response::Error { message } => {
            assert!(
                message.contains("unknown request frame `gimme stats`"),
                "unexpected error: {message}"
            );
        }
        other => panic!("expected error frame, got {other:?}"),
    }
    write_frame(&mut raw, "stats").unwrap();
    let reply = read_frame(&mut raw).unwrap().expect("stats frame");
    match Response::parse(&reply).unwrap() {
        Response::Stats { text } => {
            let snap = Snapshot::parse(&text).unwrap();
            assert!(snap.counter("serve.requests.nuts").unwrap_or(0) >= 3);
        }
        other => panic!("expected stats frame, got {other:?}"),
    }
    server.shutdown();
}
