//! Differential suite for the resolved generated-quantities engine:
//!
//! * across every corpus model with a `generated quantities` block, the
//!   slot-resolved streaming path (sweep-lowered AND scalar configurations)
//!   must match the retained string-keyed path and the baseline
//!   `stan_ref::generated_quantities` oracle to 1e-12 — including `_rng`
//!   draws, which all three paths must take identically from identical
//!   seeds;
//! * the lowering pass must batch the row shapes it claims to (pointwise
//!   `lpdf` accumulation, element-wise `_rng` simulation) and decline the
//!   rest, with the retained scalar loop reproducing declines exactly;
//! * a property test over randomized RNG-free GQ bodies pins lowered and
//!   declined shapes to the string path;
//! * PSIS-LOO over a streamed `log_lik` matrix must agree with the analytic
//!   leave-one-out posterior of a conjugate model, and `loo_compare` must
//!   rank the kidscore variants consistently with WAIC.

use std::cell::RefCell;
use std::rc::Rc;

use deepstan::{DeepStan, ImportanceSettings, Method, NutsSettings};
use gprob::value::{Env, Value};
use gprob::{count_gq_sweeps, GModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stan_ref::StanModel;

fn data_env(data: &[(String, Value<f64>)]) -> Vec<(&str, Value<f64>)> {
    data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect()
}

/// Compares two GQ result environments key by key to 1e-12.
fn assert_env_close(a: &Env<f64>, b: &Env<f64>, what: &str) {
    assert_eq!(
        a.keys().collect::<std::collections::BTreeSet<_>>(),
        b.keys().collect::<std::collections::BTreeSet<_>>(),
        "{what}: output keys differ"
    );
    for (k, va) in a {
        let vb = &b[k];
        let fa = va.as_real_vec().unwrap();
        let fb = vb.as_real_vec().unwrap();
        assert_eq!(fa.len(), fb.len(), "{what}/{k}: shapes differ");
        for (x, y) in fa.iter().zip(&fb) {
            assert!(
                (x - y).abs() < 1e-12 || (x.is_nan() && y.is_nan()),
                "{what}/{k}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn resolved_gq_matches_string_and_stan_ref_across_the_corpus() {
    let mut checked = 0usize;
    for entry in model_zoo::corpus() {
        if !entry.should_run() || !entry.source.contains("generated quantities") {
            continue;
        }
        let program = DeepStan::compile_named(entry.name, entry.source).unwrap();
        let data = entry.dataset(17);
        let refs = data_env(&data);
        let fused = program.bind(&refs).unwrap();
        let scalar = program
            .bind_scalar_with(stan2gprob::Scheme::Mixed, &refs)
            .unwrap();
        let reference = program.bind_reference(&refs).unwrap();
        assert!(fused.resolved_gq().is_some(), "{}", entry.name);

        let dim = fused.dim();
        for (case, scale) in [(0usize, 0.2f64), (1, -0.4), (2, 0.9)] {
            let theta_u: Vec<f64> = (0..dim)
                .map(|i| scale * ((i as f64 * 0.7).sin() + 0.3))
                .collect();
            let seed = 1000 + case as u64;
            let resolved = fused.generated_quantities_resolved(&theta_u, seed).unwrap();
            let resolved_scalar = scalar
                .generated_quantities_resolved(&theta_u, seed)
                .unwrap();
            let string = fused
                .generated_quantities(&theta_u, Rc::new(RefCell::new(StdRng::seed_from_u64(seed))))
                .unwrap();
            let oracle = reference
                .generated_quantities(&theta_u, Rc::new(RefCell::new(StdRng::seed_from_u64(seed))))
                .unwrap();
            assert_env_close(&resolved, &string, entry.name);
            assert_env_close(&resolved_scalar, &string, entry.name);
            assert_env_close(&resolved, &oracle, entry.name);
        }
        checked += 1;
    }
    assert!(checked >= 7, "only {checked} GQ models checked");
}

#[test]
fn corpus_gq_rows_lower_or_decline_as_documented() {
    let sweeps_of = |name: &str| -> usize {
        let entry = model_zoo::find(name).unwrap();
        let program = DeepStan::compile_named(name, entry.source).unwrap();
        let gq = gprob::resolve_gq(&program.mixed).unwrap();
        count_gq_sweeps(&gq.stmts)
    };
    // Pointwise log-lik + rng replication rows both lower.
    assert_eq!(sweeps_of("coin"), 2);
    assert_eq!(sweeps_of("kidscore_momhs"), 2);
    assert_eq!(sweeps_of("kidscore_mom_work"), 2);
    assert_eq!(sweeps_of("seeds_binomial"), 2);
    // Pure log-lik blocks lower their single row; indexed dist args
    // (sigma[j], theta[j]) ride the slice-borrow path.
    assert_eq!(sweeps_of("eight_schools_centered"), 1);
    assert_eq!(sweeps_of("eight_schools_noncentered"), 1);
    assert_eq!(sweeps_of("kidscore_momiq"), 1);
    // The scalar configuration never lowers.
    let entry = model_zoo::find("kidscore_momhs").unwrap();
    let program = DeepStan::compile_named(entry.name, entry.source).unwrap();
    let gq = gprob::resolve_gq_scalar(&program.mixed).unwrap();
    assert_eq!(count_gq_sweeps(&gq.stmts), 0);
}

#[test]
fn declining_shapes_keep_the_scalar_loop_and_its_behavior() {
    // Indirect target index, loop variable as a value, and an aliased
    // argument must all decline to the scalar loop but still agree with the
    // string path.
    let src = r#"
        data { int N; real y[N]; int idx[N]; }
        parameters { real mu; }
        model { mu ~ normal(0, 1); y ~ normal(mu, 1); }
        generated quantities {
          vector[N] a;
          vector[N] b;
          vector[N] c;
          for (i in 1:N) a[idx[i]] = normal_lpdf(y[i] | mu, 1);
          for (i in 1:N) b[i] = normal_lpdf(y[i] | mu + i, 1);
          c[1] = 0;
          for (i in 2:N) c[i] = normal_lpdf(c[i - 1] | mu, 1);
        }
    "#;
    let program = DeepStan::compile(src).unwrap();
    let gq = gprob::resolve_gq(&program.mixed).unwrap();
    assert_eq!(count_gq_sweeps(&gq.stmts), 0, "all three shapes decline");
    let data = vec![
        ("N", Value::Int(4)),
        ("y", Value::Vector(vec![0.1, -0.5, 0.8, 0.3])),
        ("idx", Value::IntArray(vec![4, 3, 2, 1])),
    ];
    let model = program.bind(&data).unwrap();
    let resolved = model.generated_quantities_resolved(&[0.3], 5).unwrap();
    let string = model
        .generated_quantities(&[0.3], Rc::new(RefCell::new(StdRng::seed_from_u64(5))))
        .unwrap();
    assert_env_close(&resolved, &string, "declining shapes");
}

#[test]
fn real_rng_draws_into_int_arrays_promote_like_the_scalar_path() {
    // `Value::set_index` promotes an int array to a vector when a real draw
    // lands in it; the lowered rng sweep must decline (before consuming any
    // RNG) so the scalar fallback reproduces that promotion and the exact
    // draw sequence.
    let src = r#"
        data { int N; }
        parameters { real mu; }
        model { mu ~ normal(0, 1); }
        generated quantities {
          int y_rep[N];
          for (i in 1:N) y_rep[i] = normal_rng(mu, 1);
        }
    "#;
    let program = DeepStan::compile(src).unwrap();
    let gq = gprob::resolve_gq(&program.mixed).unwrap();
    assert_eq!(count_gq_sweeps(&gq.stmts), 1, "the shape itself lowers");
    let data = vec![("N", Value::Int(5))];
    let model = program.bind(&data).unwrap();
    let resolved = model.generated_quantities_resolved(&[0.4], 13).unwrap();
    let string = model
        .generated_quantities(&[0.4], Rc::new(RefCell::new(StdRng::seed_from_u64(13))))
        .unwrap();
    assert!(
        matches!(resolved["y_rep"], Value::Vector(_)),
        "promoted to a real vector"
    );
    assert_env_close(&resolved, &string, "int-array promotion");
}

#[test]
fn loo_matches_the_analytic_leave_one_out_posterior() {
    // Beta(1,1)-Bernoulli: the exact leave-one-out predictive is
    // p(x_i | x_{-i}) = (heads_{-i} + 1) / (N + 1).
    let entry = model_zoo::find("coin").unwrap();
    let program = DeepStan::compile_named(entry.name, entry.source).unwrap();
    let data = entry.dataset(3);
    let refs = data_env(&data);
    let xs: Vec<f64> = refs
        .iter()
        .find(|(k, _)| *k == "x")
        .unwrap()
        .1
        .as_real_vec()
        .unwrap();
    let n = xs.len() as f64;
    let heads: f64 = xs.iter().sum();
    let exact: f64 = xs
        .iter()
        .map(|&x| {
            let p1 = (heads - x + 1.0) / (n + 1.0);
            if x == 1.0 {
                p1.ln()
            } else {
                (1.0 - p1).ln()
            }
        })
        .sum();
    let mut session = program.session(&refs).unwrap().chains(2).seed(8);
    let mut fit = session
        .run(Method::Nuts(NutsSettings {
            warmup: 300,
            samples: 500,
            ..Default::default()
        }))
        .unwrap();
    let loo = session.loo(&mut fit).unwrap();
    assert!(
        (loo.elpd - exact).abs() < 0.5,
        "elpd {} vs exact {exact}",
        loo.elpd
    );
    assert!(loo.se.is_finite() && loo.se > 0.0);
    assert!(loo.p_eff > 0.0 && loo.p_eff < 3.0, "p_loo {}", loo.p_eff);
    assert_eq!(loo.khat.len(), xs.len());
    assert!(loo.max_khat() < 0.7, "max khat {}", loo.max_khat());

    // A second corpus model reports healthy criticism too (acceptance: LOO
    // on >= 2 corpus models).
    let entry = model_zoo::find("seeds_binomial").unwrap();
    let program = DeepStan::compile_named(entry.name, entry.source).unwrap();
    let data = entry.dataset(3);
    let mut session = program.session(&data_env(&data)).unwrap().seed(8);
    let mut fit = session
        .run(Method::Importance(ImportanceSettings { particles: 1500 }))
        .unwrap();
    let loo = session.loo(&mut fit).unwrap();
    let w = fit.waic().unwrap();
    assert!(loo.elpd.is_finite() && w.elpd.is_finite());
    assert!(
        (loo.elpd - w.elpd).abs() < 2.0,
        "{} vs {}",
        loo.elpd,
        w.elpd
    );
    assert_eq!(loo.khat.len(), 40);
}

#[test]
fn loo_compare_ranks_kidscore_variants_consistently_with_waic() {
    // Both variants share the regression_1cov dataset; the flat-prior
    // `kidscore_momiq` and the weak-prior `kidscore_momhs` fit the same
    // likelihood, while a deliberately truncated variant (slope forced to
    // zero through its data) fits worse.
    let data = model_zoo::find("kidscore_momhs").unwrap().dataset(21);
    let refs = data_env(&data);
    let fit_model = |name: &str, source: &str| {
        let program = DeepStan::compile_named(name, source).unwrap();
        let mut session = program.session(&refs).unwrap().chains(2).seed(5);
        let mut fit = session
            .run(Method::Nuts(NutsSettings {
                warmup: 300,
                samples: 400,
                ..Default::default()
            }))
            .unwrap();
        let loo = session.loo(&mut fit).unwrap();
        let waic = fit.waic().unwrap();
        (loo, waic)
    };
    let momhs = model_zoo::find("kidscore_momhs").unwrap();
    let (loo_full, waic_full) = fit_model(momhs.name, momhs.source);
    // An intercept-only variant of the same likelihood: strictly less able
    // to explain data generated with a true slope of 2.
    let intercept_only = r#"
        data { int N; real x[N]; real y[N]; }
        parameters { real alpha; real<lower=0> sigma; }
        model {
          alpha ~ normal(0, 10);
          sigma ~ cauchy(0, 5);
          for (i in 1:N) y[i] ~ normal(alpha, sigma);
        }
        generated quantities {
          vector[N] log_lik;
          for (i in 1:N) log_lik[i] = normal_lpdf(y[i] | alpha, sigma);
        }
    "#;
    let (loo_flat, waic_flat) = fit_model("kidscore_intercept", intercept_only);

    let by_loo = deepstan::compare_by_loo(&[
        ("kidscore_momhs", &loo_full),
        ("kidscore_intercept", &loo_flat),
    ]);
    assert_eq!(by_loo[0].name, "kidscore_momhs");
    assert!(by_loo[1].elpd_diff < 0.0);
    assert!(by_loo[1].se_diff > 0.0);
    // WAIC agrees on the ranking.
    let by_waic = inference::loo_compare(&[
        ("kidscore_momhs", &waic_full),
        ("kidscore_intercept", &waic_flat),
    ]);
    assert_eq!(
        by_loo.iter().map(|r| r.name.clone()).collect::<Vec<_>>(),
        by_waic.iter().map(|r| r.name.clone()).collect::<Vec<_>>(),
        "LOO and WAIC must rank the variants identically"
    );
    // The slope model wins decisively (true slope is 2 with sd 1).
    assert!(
        by_loo[1].elpd_diff < -3.0 * by_loo[1].se_diff,
        "diff {} se {}",
        by_loo[1].elpd_diff,
        by_loo[1].se_diff
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Randomized RNG-free GQ bodies: affine rows must lower, value-uses of
    /// the loop variable must decline, and both must match the string path
    /// bit-for-bit (no RNG involved, so exact equality is required).
    #[test]
    fn prop_rng_free_gq_bodies_match_the_string_path(
        n in 2i64..9,
        offset in 0i64..3,
        affine_flag in 0i64..2,
        u in -1.5f64..1.5,
    ) {
        let affine = affine_flag == 1;
        let arg = if affine { "mu + y[i]" } else { "mu + i" };
        let src = format!(
            r#"
            data {{ int N; real y[N]; }}
            parameters {{ real mu; }}
            model {{ mu ~ normal(0, 1); y ~ normal(mu, 1); }}
            generated quantities {{
              vector[N] log_lik;
              for (i in 1:N - {offset}) log_lik[i + {offset}] = normal_lpdf(y[i] | {arg}, 1);
              for (i in 1:{offset}) log_lik[i] = 0;
            }}
            "#
        );
        let program = DeepStan::compile(&src).unwrap();
        let gq = gprob::resolve_gq(&program.mixed).unwrap();
        prop_assert_eq!(count_gq_sweeps(&gq.stmts), usize::from(affine));
        let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let data = vec![("N", Value::Int(n)), ("y", Value::Vector(ys))];
        let model: GModel = program.bind(&data).unwrap();
        let scalar = program
            .bind_scalar_with(stan2gprob::Scheme::Mixed, &data)
            .unwrap();
        let resolved = model.generated_quantities_resolved(&[u], 2).unwrap();
        let unlowered = scalar.generated_quantities_resolved(&[u], 2).unwrap();
        let string = model
            .generated_quantities(&[u], Rc::new(RefCell::new(StdRng::seed_from_u64(2))))
            .unwrap();
        let a = resolved["log_lik"].as_real_vec().unwrap();
        let b = string["log_lik"].as_real_vec().unwrap();
        let c = unlowered["log_lik"].as_real_vec().unwrap();
        prop_assert_eq!(a.len(), b.len());
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            prop_assert!((x - y).abs() < 1e-12, "{} vs {}", x, y);
            prop_assert!((x - z).abs() < 1e-12, "{} vs {}", x, z);
        }
    }
}

/// The reference oracle is exercised against a transformed-parameters
/// replay: `stan_ref` runs the block separately while the compiled paths
/// inline it, and all must agree.
#[test]
fn transformed_parameter_replay_matches_across_paths() {
    let entry = model_zoo::find("eight_schools_noncentered").unwrap();
    let program = DeepStan::compile_named(entry.name, entry.source).unwrap();
    let data = entry.dataset(0);
    let refs = data_env(&data);
    let model = program.bind(&refs).unwrap();
    let reference: StanModel = program.bind_reference(&refs).unwrap();
    let theta_u: Vec<f64> = (0..model.dim()).map(|i| 0.1 * i as f64 - 0.4).collect();
    let resolved = model.generated_quantities_resolved(&theta_u, 7).unwrap();
    let oracle = reference
        .generated_quantities(&theta_u, Rc::new(RefCell::new(StdRng::seed_from_u64(7))))
        .unwrap();
    assert_env_close(&resolved, &oracle, "eight_schools_noncentered");
}
