//! Cross-crate integration tests of the compilation pipeline: every corpus
//! model parses, type checks, and compiles under the comprehensive scheme;
//! the generative scheme fails exactly on non-generative models; generated
//! Python is well-formed for every model.

use stan2gprob::{analyze_features, compile, to_numpyro, to_pyro, Scheme};

#[test]
fn every_corpus_model_parses_and_typechecks() {
    for entry in model_zoo::corpus() {
        let ast = stan_frontend::parse_program(entry.source)
            .unwrap_or_else(|e| panic!("{}: parse error {e}", entry.name));
        stan_frontend::typecheck(&ast).unwrap_or_else(|e| panic!("{}: type error {e}", entry.name));
    }
}

#[test]
fn comprehensive_scheme_compiles_everything_except_expected_failures() {
    let mut failures = Vec::new();
    for entry in model_zoo::corpus() {
        let ast = stan_frontend::parse_program(entry.source).unwrap();
        match compile(&ast, Scheme::Comprehensive) {
            Ok(program) => {
                // Every parameter must have a sample site.
                let sites = program.body.sample_sites();
                for p in &program.params {
                    assert!(
                        sites.contains(&p.name),
                        "{}: parameter {} has no sample site",
                        entry.name,
                        p.name
                    );
                }
            }
            Err(e) => failures.push((entry.name, e.to_string(), entry.expected_failure)),
        }
    }
    for (name, err, expected) in &failures {
        assert!(
            expected.is_some(),
            "{name} unexpectedly failed to compile: {err}"
        );
    }
    // Exactly the marked compile failures fail.
    assert_eq!(failures.len(), 2, "{failures:?}");
}

#[test]
fn generative_scheme_fails_exactly_on_non_generative_models() {
    for entry in model_zoo::corpus() {
        if entry.expected_failure.is_some() {
            continue;
        }
        let ast = stan_frontend::parse_program(entry.source).unwrap();
        let report = analyze_features(&ast);
        let result = compile(&ast, Scheme::Generative);
        if report.is_non_generative() {
            assert!(
                result.is_err(),
                "{}: generative scheme should reject non-generative features",
                entry.name
            );
        } else {
            // One documented limitation beyond the paper's Table 1 features:
            // our generative backend cannot sample a parameter cell-by-cell
            // (`mu[j] ~ ...` inside a loop), so such models are also rejected.
            let indexed_update_limitation = result
                .as_ref()
                .err()
                .is_some_and(|e| e.message().contains("indexed update"));
            assert!(
                result.is_ok() || indexed_update_limitation,
                "{}: generative scheme should accept a generative model: {:?}",
                entry.name,
                result.err()
            );
        }
    }
}

#[test]
fn python_codegen_is_wellformed_for_the_whole_corpus() {
    for entry in model_zoo::corpus() {
        let ast = stan_frontend::parse_program(entry.source).unwrap();
        let Ok(program) = compile(&ast, Scheme::Mixed) else {
            continue;
        };
        let pyro = to_pyro(&program, entry.name);
        let numpyro = to_numpyro(&program, entry.name);
        assert!(pyro.contains("def "), "{}", entry.name);
        assert!(pyro.contains("import pyro"), "{}", entry.name);
        assert!(numpyro.contains("import numpyro"), "{}", entry.name);
        // Balanced parentheses is a cheap well-formedness proxy.
        for (text, label) in [(&pyro, "pyro"), (&numpyro, "numpyro")] {
            let open = text.matches('(').count();
            let close = text.matches(')').count();
            assert_eq!(open, close, "{}: unbalanced parens in {label}", entry.name);
        }
    }
}

#[test]
fn table1_feature_prevalence_has_the_papers_ordering() {
    // The paper finds implicit priors to be by far the most common feature
    // (58%), ahead of left expressions (15%) and multiple updates (8%). Our
    // corpus is much smaller but preserves that ordering.
    let reports: Vec<_> = model_zoo::corpus()
        .iter()
        .filter_map(|e| stan_frontend::parse_program(e.source).ok())
        .map(|ast| analyze_features(&ast))
        .collect();
    let stats = stan2gprob::features::FeatureStats::from_reports(&reports);
    assert!(stats.with_implicit_prior >= stats.with_left_expression);
    assert!(stats.with_implicit_prior >= stats.with_multiple_updates);
    assert!(stats.non_generative > stats.total / 3);
}
