//! Differential suite for the tape-free density programs (`gprob::dprog`):
//!
//! * across the whole corpus and every scheme, models whose density compiles
//!   to a DProg must agree with the retained `Var`/tape oracle *and* the
//!   string baseline — values to 1e-12, gradients to 1e-10;
//! * the compiler must compile the shapes it claims to (eight_schools both
//!   variants, the kidscore family, arK's lagged sweep, garch11 / arma11
//!   recurrence loops as loop ops, mesquite's matrix-vector head) and
//!   decline the ones it cannot (parameter-dependent branches, user-defined
//!   function calls, missing-stdlib CDFs) with a stated reason;
//! * declined models evaluate byte-identically to the tape path (same code
//!   path, pinned here against the oracle);
//! * a proptest over random expression bodies confirms compiling (or
//!   declining) never changes density or gradient.

use gprob::value::{Env, Value};
use gprob::GModel;
use proptest::prelude::*;
use stan2gprob::{compile, Scheme};
use stan_frontend::parse_program;

fn probe_points(dim: usize) -> Vec<Vec<f64>> {
    let seeds = [
        vec![0.1, -0.3, 0.7],
        vec![0.5, 0.2, -0.1],
        vec![-0.8, 1.1, 0.4],
        vec![1.5, -1.5, 0.0],
    ];
    seeds
        .iter()
        .map(|p| (0..dim).map(|i| p[i % p.len()]).collect())
        .collect()
}

fn env_of(data: &[(String, Value<f64>)]) -> Env<f64> {
    data.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
}

fn bind(source: &str, scheme: Scheme, data: &Env<f64>) -> Option<GModel> {
    let ast = parse_program(source).ok()?;
    let compiled = compile(&ast, scheme).ok()?;
    GModel::new(compiled, data.clone()).ok()
}

/// DProg vs tape oracle vs string baseline across the corpus.
#[test]
fn dprog_densities_and_gradients_match_the_tape_oracle_and_baseline() {
    let mut compiled_models = 0;
    let mut checked_points = 0;
    for entry in model_zoo::corpus() {
        if !entry.should_run() {
            continue;
        }
        let data = env_of(&entry.dataset(3));
        for scheme in [Scheme::Comprehensive, Scheme::Mixed, Scheme::Generative] {
            let Some(model) = bind(entry.source, scheme, &data) else {
                continue;
            };
            // Every corpus model either compiles or declines with a reason.
            match model.dprog() {
                Some(p) => {
                    assert!(p.n_ops() > 0, "{}: empty program", entry.name);
                    compiled_models += 1;
                }
                None => {
                    let reason = model
                        .dprog_decline()
                        .unwrap_or_else(|| panic!("{}: no decline reason", entry.name))
                        .reason();
                    assert!(!reason.is_empty(), "{}: empty decline reason", entry.name);
                    continue;
                }
            }
            let dim = model.dim();
            let mut ws_dprog = model.grad_workspace();
            let mut ws_tape = model.grad_workspace();
            let mut ws_value = model.workspace::<f64>();
            let mut g_dprog = vec![0.0; dim];
            let mut g_tape = vec![0.0; dim];
            for theta in probe_points(dim) {
                // Values: DProg (pooled f64 path) vs interpreter vs string.
                let a = model.log_density_f64_with(&mut ws_value, &theta);
                let b = model.log_density_f64(&theta);
                let c = model.log_density_f64_baseline(&theta);
                match (a, b, c) {
                    (Ok(a), Ok(b), Ok(c)) => {
                        if a.is_finite() || b.is_finite() || c.is_finite() {
                            assert!(
                                (a - b).abs() < 1e-12,
                                "{} ({scheme:?}) at {theta:?}: dprog {a} vs interp {b}",
                                entry.name
                            );
                            assert!(
                                (a - c).abs() < 1e-12,
                                "{} ({scheme:?}) at {theta:?}: dprog {a} vs baseline {c}",
                                entry.name
                            );
                        }
                        checked_points += 1;
                    }
                    (Err(_), Err(_), Err(_)) => {}
                    (a, b, c) => panic!(
                        "{} ({scheme:?}): value paths diverge: dprog {a:?} vs interp {b:?} vs baseline {c:?}",
                        entry.name
                    ),
                }
                // Gradients: DProg reverse sweep vs the Var/tape oracle.
                let lp_d = model.log_density_and_grad_with(&mut ws_dprog, &theta, &mut g_dprog);
                let lp_t = model.log_density_and_grad_tape_with(&mut ws_tape, &theta, &mut g_tape);
                match (lp_d, lp_t) {
                    (Ok(ld), Ok(lt)) => {
                        if ld.is_finite() || lt.is_finite() {
                            assert!(
                                (ld - lt).abs() < 1e-12,
                                "{} ({scheme:?}): grad-path lp {ld} vs {lt}",
                                entry.name
                            );
                            for (i, (x, y)) in g_dprog.iter().zip(&g_tape).enumerate() {
                                let tol = 1e-10 * (1.0 + x.abs().max(y.abs()));
                                assert!(
                                    (x - y).abs() < tol,
                                    "{} ({scheme:?}) grad[{i}]: dprog {x} vs tape {y}",
                                    entry.name
                                );
                            }
                        }
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!(
                        "{} ({scheme:?}): gradient paths diverge: {a:?} vs {b:?}",
                        entry.name
                    ),
                }
            }
        }
    }
    assert!(
        compiled_models >= 15,
        "only {compiled_models} model/scheme pairs compiled a density program"
    );
    assert!(
        checked_points >= 100,
        "only {checked_points} points checked"
    );
}

/// Per-model compile / decline assertions.
#[test]
fn corpus_models_compile_or_decline_as_documented() {
    let status = |name: &str, scheme: Scheme| -> Result<(usize, usize), String> {
        let entry = model_zoo::find(name).unwrap();
        let data = env_of(&entry.dataset(3));
        let model = bind(entry.source, scheme, &data)
            .unwrap_or_else(|| panic!("{name} failed to bind under {scheme:?}"));
        match model.dprog() {
            Some(p) => Ok((p.n_ops(), p.n_regs())),
            None => Err(model.dprog_decline().unwrap().reason().to_string()),
        }
    };
    // Both eight_schools variants, the kidscore family, and arK compile.
    for name in [
        "eight_schools_centered",
        "eight_schools_noncentered",
        "kidscore_momhs",
        "kidscore_momiq",
        "kidscore_momhsiq",
        "kidscore_mom_work",
        "arK",
        "coin",
        "nes_logit",
        "seeds_binomial",
        "mesquite",
        "blr",
        "low_dim_gauss_mix",
        "sum_to_zero_left_expr",
    ] {
        for scheme in [Scheme::Mixed, Scheme::Comprehensive] {
            assert!(
                status(name, scheme).is_ok(),
                "{name} should compile under {scheme:?}: {:?}",
                status(name, scheme)
            );
        }
    }
    // Fixed-trip-count recurrence loops compile as loop ops — compactly:
    // the op count must not scale with the data length (N = 80).
    for name in ["garch11", "arma11"] {
        let (ops, _) = status(name, Scheme::Mixed).unwrap();
        assert!(
            ops < 40,
            "{name} should compile compactly via loop ops, got {ops} ops"
        );
    }
    // Parameter-dependent control flow declines at compile time.
    let err = status("multimodal_guide", Scheme::Mixed).unwrap_err();
    assert!(err.contains("branch"), "multimodal_guide: {err}");
    // Missing-stdlib CDF calls decline (the retained path owns the error).
    let err = status("censored_lccdf", Scheme::Mixed).unwrap_err();
    assert!(err.contains("lccdf"), "censored_lccdf: {err}");
    // Nested parameter-dependent loops decline.
    let err = status("radon_hierarchical", Scheme::Mixed).unwrap_err();
    assert!(!err.is_empty());
}

/// User-defined function calls decline (they evaluate through the
/// interpreted EnvView path).
#[test]
fn user_function_models_decline() {
    let src = r#"
        functions { real f(real x) { return x * 2; } }
        data { int N; real y[N]; }
        parameters { real mu; }
        model { y ~ normal(f(mu), 1); }
    "#;
    let mut data: Env<f64> = Env::new();
    data.insert("N".into(), Value::Int(3));
    data.insert("y".into(), Value::Vector(vec![0.1, 0.2, 0.3]));
    let model = bind(src, Scheme::Mixed, &data).unwrap();
    assert!(model.dprog().is_none());
    let reason = model.dprog_decline().unwrap().reason();
    assert!(reason.contains("user-defined"), "{reason}");
    // And the declined model still evaluates through the tape path,
    // identically on both gradient entry points (same code path).
    let mut ws_a = model.grad_workspace();
    let mut ws_b = model.grad_workspace();
    let mut ga = vec![0.0; 1];
    let mut gb = vec![0.0; 1];
    let la = model
        .log_density_and_grad_with(&mut ws_a, &[0.4], &mut ga)
        .unwrap();
    let lb = model
        .log_density_and_grad_tape_with(&mut ws_b, &[0.4], &mut gb)
        .unwrap();
    assert_eq!(la.to_bits(), lb.to_bits());
    assert_eq!(ga[0].to_bits(), gb[0].to_bits());
}

/// A hand-built parameter-dependent `while` loop declines.
#[test]
fn parameter_dependent_while_declines() {
    let src = r#"
        data { int N; real y[N]; }
        parameters { real<lower=0> mu; }
        model {
          real acc;
          acc = mu;
          while (acc < 3) { acc = acc + 1; }
          y ~ normal(acc, 1);
        }
    "#;
    let mut data: Env<f64> = Env::new();
    data.insert("N".into(), Value::Int(3));
    data.insert("y".into(), Value::Vector(vec![0.1, 0.2, 0.3]));
    let model = bind(src, Scheme::Mixed, &data).unwrap();
    assert!(model.dprog().is_none(), "while on a parameter must decline");
    assert!(!model.dprog_decline().unwrap().reason().is_empty());
}

/// Out-of-window sweeps decline so the retained path reports the identical
/// runtime error.
#[test]
fn out_of_window_sweeps_decline_and_keep_the_scalar_error() {
    let src = r#"
        data { int N; real y[N]; }
        parameters { real mu; }
        model {
          mu ~ normal(0, 1);
          for (i in 1:N + 2) y[i] ~ normal(mu, 1);
        }
    "#;
    let mut data: Env<f64> = Env::new();
    data.insert("N".into(), Value::Int(4));
    data.insert("y".into(), Value::Vector(vec![0.1, 0.2, 0.3, 0.4]));
    let model = bind(src, Scheme::Comprehensive, &data).unwrap();
    assert!(model.dprog().is_none());
    let reason = model.dprog_decline().unwrap().reason();
    assert!(reason.contains("out of bounds"), "{reason}");
    let err = model.log_density_f64(&[0.3]).unwrap_err();
    assert!(err.message().contains("out of bounds"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Random expression bodies: whatever the compiler decides (compile or
    /// decline), density and gradient match the tape oracle.
    #[test]
    fn prop_random_bodies_never_change_density_or_gradient(
        n in 2i64..9,
        shape in 0i64..6,
        u1 in -2.0f64..2.0,
        u2 in -2.0f64..2.0,
    ) {
        let stmt = match shape {
            0 => "y ~ normal(mu + sigma, exp(sigma))",
            1 => "for (i in 1:N) y[i] ~ normal(mu * x[i], sigma + 1)",
            2 => "target += normal_lpdf(y[1] | mu, sigma + 0.5)",
            3 => "y ~ normal(log(fabs(mu) + 1) * to_vector(x), sigma + 0.1)",
            4 => "{ real acc; acc = 0; for (i in 1:N) { acc = acc + mu * x[i]; y[i] ~ normal(acc, sigma + 1); } }",
            _ => "target += log_mix(inv_logit(mu), normal_lpdf(y[1] | 0, 1), normal_lpdf(y[1] | sigma, 1))",
        };
        let src = format!(
            r#"
            data {{ int N; real x[N]; real y[N]; }}
            parameters {{ real mu; real<lower=0> sigma; }}
            model {{
              mu ~ normal(0, 2);
              sigma ~ lognormal(0, 1);
              {stmt};
            }}
            "#
        );
        let mut data: Env<f64> = Env::new();
        data.insert("N".into(), Value::Int(n));
        data.insert(
            "x".into(),
            Value::Vector((0..n).map(|i| 0.3 * i as f64 - 0.7).collect()),
        );
        data.insert(
            "y".into(),
            Value::Vector((0..n).map(|i| 0.41 * i as f64 - 1.1).collect()),
        );
        let model = bind(&src, Scheme::Mixed, &data).unwrap();
        let mut ws_d = model.grad_workspace();
        let mut ws_t = model.grad_workspace();
        let mut gd = vec![0.0; 2];
        let mut gt = vec![0.0; 2];
        for theta in [[u1, u2], [u2, u1]] {
            let ld = model.log_density_and_grad_with(&mut ws_d, &theta, &mut gd).unwrap();
            let lt = model.log_density_and_grad_tape_with(&mut ws_t, &theta, &mut gt).unwrap();
            prop_assert!((ld - lt).abs() < 1e-12, "lp {} vs {}", ld, lt);
            for (a, b) in gd.iter().zip(&gt) {
                let tol = 1e-10 * (1.0 + a.abs().max(b.abs()));
                prop_assert!((a - b).abs() < tol, "grad {} vs {}", a, b);
            }
        }
    }
}
