//! Differential suite for the vectorized observe sweeps (sweep lowering +
//! fused batch kernels):
//!
//! * across the whole corpus and every scheme, the sweep-lowered density
//!   path (`GModel::new`) must agree with the scalar resolved path
//!   (`GModel::new_scalar`) *and* the string baseline to 1e-12, densities
//!   and gradients alike;
//! * the lowering pass must lower the loop shapes it claims to (corpus
//!   element-wise likelihood loops) and decline the ones it cannot
//!   (indirect indices, multi-statement bodies, recurrences);
//! * lowered sweeps whose runtime window is out of bounds must fall back to
//!   the scalar loop and reproduce its exact error;
//! * a proptest over randomly generated affine / non-affine loop bodies
//!   confirms lowering (or declining) never changes the density.

use gprob::count_sweeps;
use gprob::value::{Env, Value};
use gprob::GModel;
use proptest::prelude::*;
use stan2gprob::{compile, Scheme};
use stan_frontend::parse_program;

fn probe_points(dim: usize) -> Vec<Vec<f64>> {
    let seeds = [
        vec![0.1, -0.3, 0.7],
        vec![0.5, 0.2, -0.1],
        vec![-0.8, 1.1, 0.4],
        vec![1.5, -1.5, 0.0],
    ];
    seeds
        .iter()
        .map(|p| (0..dim).map(|i| p[i % p.len()]).collect())
        .collect()
}

fn env_of(data: &[(String, Value<f64>)]) -> Env<f64> {
    data.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
}

/// Builds the sweep-lowered and scalar-resolved models for one source +
/// scheme, or `None` if the scheme rejects the model.
fn bind_both(source: &str, scheme: Scheme, data: &Env<f64>) -> Option<(GModel, GModel)> {
    let ast = parse_program(source).ok()?;
    let compiled = compile(&ast, scheme).ok()?;
    let fused = GModel::new(compiled.clone(), data.clone()).ok()?;
    let scalar = GModel::new_scalar(compiled, data.clone()).ok()?;
    Some((fused, scalar))
}

#[test]
fn sweep_densities_and_gradients_match_scalar_and_baseline_on_the_corpus() {
    let mut checked_models = 0;
    let mut checked_points = 0;
    let mut lowered_models = 0;
    for entry in model_zoo::corpus() {
        if !entry.should_run() {
            continue;
        }
        let data = env_of(&entry.dataset(3));
        let mut model_checked = false;
        for scheme in [Scheme::Comprehensive, Scheme::Mixed, Scheme::Generative] {
            let Some((fused, scalar)) = bind_both(entry.source, scheme, &data) else {
                continue;
            };
            assert_eq!(count_sweeps(&scalar.resolved().body), 0, "{}", entry.name);
            if count_sweeps(&fused.resolved().body) > 0 {
                lowered_models += 1;
            }
            let mut g_fused = vec![0.0; fused.dim()];
            let mut g_scalar = vec![0.0; scalar.dim()];
            let mut ws_fused = fused.grad_workspace();
            let mut ws_scalar = scalar.grad_workspace();
            for theta in probe_points(fused.dim()) {
                let a = fused.log_density_f64(&theta);
                let b = scalar.log_density_f64(&theta);
                let c = fused.log_density_f64_baseline(&theta);
                match (a, b, c) {
                    (Ok(a), Ok(b), Ok(c)) => {
                        if a.is_finite() || b.is_finite() || c.is_finite() {
                            assert!(
                                (a - b).abs() < 1e-12,
                                "{} ({scheme:?}) at {theta:?}: sweep {a} vs scalar {b}",
                                entry.name
                            );
                            assert!(
                                (a - c).abs() < 1e-12,
                                "{} ({scheme:?}) at {theta:?}: sweep {a} vs baseline {c}",
                                entry.name
                            );
                        }
                        model_checked = true;
                        checked_points += 1;
                    }
                    (Err(_), Err(_), Err(_)) => {
                        // All paths must fail together (e.g. missing stdlib).
                    }
                    (a, b, c) => panic!(
                        "{} ({scheme:?}): paths diverge: sweep {a:?} vs scalar {b:?} vs baseline {c:?}",
                        entry.name
                    ),
                }
                // Gradients through the fused tape node vs the scalar tape.
                let lp_f = fused.log_density_and_grad_with(&mut ws_fused, &theta, &mut g_fused);
                let lp_s = scalar.log_density_and_grad_with(&mut ws_scalar, &theta, &mut g_scalar);
                match (lp_f, lp_s) {
                    (Ok(lf), Ok(ls)) => {
                        if lf.is_finite() || ls.is_finite() {
                            assert!(
                                (lf - ls).abs() < 1e-12,
                                "{} ({scheme:?}): grad-path lp {lf} vs {ls}",
                                entry.name
                            );
                        }
                        for (i, (x, y)) in g_fused.iter().zip(&g_scalar).enumerate() {
                            assert!(
                                (x - y).abs() < 1e-10,
                                "{} ({scheme:?}) grad[{i}]: sweep {x} vs scalar {y}",
                                entry.name
                            );
                        }
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("{}: gradient paths diverge: {a:?} vs {b:?}", entry.name),
                }
            }
        }
        if model_checked {
            checked_models += 1;
        }
    }
    assert!(checked_models >= 10, "only {checked_models} models checked");
    assert!(
        checked_points >= 100,
        "only {checked_points} points checked"
    );
    assert!(
        lowered_models >= 5,
        "only {lowered_models} model/scheme pairs actually lowered a sweep"
    );
}

#[test]
fn corpus_loop_shapes_lower_or_decline_as_documented() {
    let sweeps_of = |name: &str, scheme: Scheme| -> usize {
        let entry = model_zoo::find(name).unwrap();
        let ast = parse_program(entry.source).unwrap();
        let compiled = compile(&ast, scheme).unwrap();
        count_sweeps(&gprob::resolve_program(&compiled).body)
    };
    // Element-wise likelihood loops lower.
    assert_eq!(sweeps_of("coin", Scheme::Comprehensive), 1);
    assert_eq!(sweeps_of("kidscore_momhs", Scheme::Comprehensive), 1);
    assert_eq!(sweeps_of("nes_logit", Scheme::Comprehensive), 1);
    // arK's lagged regression is affine (y[t-1], y[t-2]) and lowers.
    assert_eq!(sweeps_of("arK", Scheme::Comprehensive), 1);
    // radon: the inner loop `y[j, i] ~ normal(mu[j], sigma)` lowers (its
    // target base `y[j]` is invariant in i); the outer j-loop's body holds
    // two statements (observe + inner loop) so the outer observe declines.
    assert_eq!(sweeps_of("radon_hierarchical", Scheme::Comprehensive), 1);
    // garch11 (multi-statement loop body: recurrence + observe) and arma11
    // (scalar recurrence observe, no indexed target) must decline.
    assert_eq!(sweeps_of("garch11", Scheme::Comprehensive), 0);
    assert_eq!(sweeps_of("arma11", Scheme::Comprehensive), 0);
    // low_dim_gauss_mix's loop body is a target+= (Factor), not an observe.
    assert_eq!(sweeps_of("low_dim_gauss_mix", Scheme::Comprehensive), 0);
}

#[test]
fn out_of_window_sweeps_fall_back_to_the_scalar_error() {
    // The loop runs to N+2, two past the end of y: the lowered sweep cannot
    // borrow the window and must re-run the scalar loop, whose
    // out-of-bounds error is the observable behavior on every path.
    let src = r#"
        data { int N; real y[N]; }
        parameters { real mu; }
        model {
          mu ~ normal(0, 1);
          for (i in 1:N + 2) y[i] ~ normal(mu, 1);
        }
    "#;
    let mut data: Env<f64> = Env::new();
    data.insert("N".into(), Value::Int(4));
    data.insert("y".into(), Value::Vector(vec![0.1, 0.2, 0.3, 0.4]));
    let (fused, scalar) = bind_both(src, Scheme::Comprehensive, &data).unwrap();
    assert_eq!(count_sweeps(&fused.resolved().body), 1);
    let ef = fused.log_density_f64(&[0.3]).unwrap_err();
    let es = scalar.log_density_f64(&[0.3]).unwrap_err();
    assert_eq!(ef, es, "fallback must reproduce the scalar error");
    assert!(ef.message().contains("out of bounds"), "{}", ef.message());
    // Indirect indexing stays on the scalar path entirely and works.
    let src_indirect = r#"
        data { int N; int idx[N]; real y[N]; }
        parameters { real mu; }
        model {
          mu ~ normal(0, 1);
          for (i in 1:N) y[idx[i]] ~ normal(mu, 1);
        }
    "#;
    let mut data: Env<f64> = Env::new();
    data.insert("N".into(), Value::Int(4));
    data.insert("idx".into(), Value::IntArray(vec![4, 3, 2, 1]));
    data.insert("y".into(), Value::Vector(vec![0.1, 0.2, 0.3, 0.4]));
    let (fused, scalar) = bind_both(src_indirect, Scheme::Comprehensive, &data).unwrap();
    assert_eq!(count_sweeps(&fused.resolved().body), 0);
    let a = fused.log_density_f64(&[0.3]).unwrap();
    let b = scalar.log_density_f64(&[0.3]).unwrap();
    let c = fused.log_density_f64_baseline(&[0.3]).unwrap();
    assert!((a - b).abs() < 1e-12 && (a - c).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn prop_random_loop_bodies_lower_or_decline_without_changing_density(
        n in 2i64..9,
        offset in 0i64..3,
        shape in 0i64..4,
        u1 in -2.0f64..2.0,
        u2 in -2.0f64..2.0,
    ) {
        // Four loop-body shapes: direct affine target with invariant arg,
        // affine target with lagged compound arg, affine target with offset,
        // and a non-affine (multiplied) index that must decline to lower.
        let (stmt, lowers) = match shape {
            0 => ("y[i] ~ normal(mu, 1)", true),
            1 => ("y[i + 1] ~ normal(mu + 0.5 * y[i], 1)", true),
            2 => ("y[i + OFF] ~ normal(mu, 1)", true),
            _ => ("y[i * 1] ~ normal(mu, 1)", false),
        };
        let stmt = stmt.replace("OFF", &offset.to_string());
        // Size y so every shape stays in bounds: max index is n + max(1, OFF).
        let len = (n + offset.max(1)) as usize;
        let src = format!(
            r#"
            data {{ int N; real y[{len}]; }}
            parameters {{ real mu; }}
            model {{
              mu ~ normal(0, 1);
              for (i in 1:N) {stmt};
            }}
            "#
        );
        let mut data: Env<f64> = Env::new();
        data.insert("N".into(), Value::Int(n));
        data.insert(
            "y".into(),
            Value::Vector((0..len).map(|i| (i as f64) * 0.37 - 1.0).collect()),
        );
        let (fused, scalar) = bind_both(&src, Scheme::Comprehensive, &data).unwrap();
        prop_assert_eq!(count_sweeps(&fused.resolved().body), usize::from(lowers));
        prop_assert_eq!(count_sweeps(&scalar.resolved().body), 0);
        for theta in [[u1], [u2]] {
            let a = fused.log_density_f64(&theta).unwrap();
            let b = scalar.log_density_f64(&theta).unwrap();
            let c = fused.log_density_f64_baseline(&theta).unwrap();
            prop_assert!((a - b).abs() < 1e-12, "sweep {} vs scalar {}", a, b);
            prop_assert!((a - c).abs() < 1e-12, "sweep {} vs baseline {}", a, c);
            let (ga, gb) = (
                fused.log_density_and_grad(&theta).unwrap(),
                scalar.log_density_and_grad(&theta).unwrap(),
            );
            prop_assert!((ga.1[0] - gb.1[0]).abs() < 1e-10, "grad {} vs {}", ga.1[0], gb.1[0]);
        }
    }
}
