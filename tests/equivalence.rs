//! Differential test of Theorem 3.3: for every runnable corpus model, the
//! un-normalized log-density computed by the baseline Stan-semantics
//! interpreter and by the compiled GProb program differ by at most a constant
//! (independent of the parameter values).

use deepstan::DeepStan;
use gprob::value::Value;
use proptest::prelude::*;
use stan2gprob::Scheme;

fn density_gap(name: &str, scheme: Scheme, points: &[Vec<f64>]) -> Option<Vec<f64>> {
    let entry = model_zoo::find(name)?;
    let program = DeepStan::compile_named(name, entry.source).ok()?;
    let data = entry.dataset(3);
    let data_refs: Vec<(&str, Value<f64>)> =
        data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let gmodel = program.bind_with(scheme, &data_refs).ok()?;
    let smodel = program.bind_reference(&data_refs).ok()?;
    let mut gaps = Vec::new();
    for p in points {
        let theta: Vec<f64> = (0..gmodel.dim()).map(|i| p[i % p.len()]).collect();
        let a = gmodel.log_density_f64(&theta).ok()?;
        let b = smodel.log_density_f64(&theta).ok()?;
        if a.is_finite() && b.is_finite() {
            gaps.push(a - b);
        }
    }
    Some(gaps)
}

#[test]
fn compiled_and_reference_densities_agree_up_to_a_constant() {
    let points = vec![
        vec![0.1, -0.3, 0.7],
        vec![0.5, 0.2, -0.1],
        vec![-0.8, 1.1, 0.4],
        vec![1.5, -1.5, 0.0],
    ];
    let mut checked = 0;
    for entry in model_zoo::corpus() {
        if !entry.should_run() || entry.name == "multimodal_guide" {
            continue;
        }
        for scheme in [Scheme::Comprehensive, Scheme::Mixed] {
            let Some(gaps) = density_gap(entry.name, scheme, &points) else {
                continue;
            };
            if gaps.len() < 2 {
                continue;
            }
            checked += 1;
            let first = gaps[0];
            for (i, g) in gaps.iter().enumerate() {
                assert!(
                    (g - first).abs() < 1e-6,
                    "{} ({scheme:?}): density gap varies with parameters ({first} vs {g} at point {i})",
                    entry.name
                );
            }
        }
    }
    assert!(checked >= 20, "only {checked} model/scheme pairs checked");
}

#[test]
fn generative_scheme_agrees_where_it_exists() {
    let points = vec![vec![0.3, -0.2, 0.9], vec![-0.4, 0.6, 0.1]];
    for name in ["coin", "kidscore_mom_work", "multiple_updates"] {
        if let Some(gaps) = density_gap(name, Scheme::Generative, &points) {
            if gaps.len() == 2 {
                assert!(
                    (gaps[0] - gaps[1]).abs() < 1e-6,
                    "{name}: generative density gap varies"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn prop_coin_densities_differ_by_a_constant(u1 in -3.0f64..3.0, u2 in -3.0f64..3.0) {
        let entry = model_zoo::find("coin").unwrap();
        let program = DeepStan::compile_named("coin", entry.source).unwrap();
        let data = entry.dataset(3);
        let data_refs: Vec<(&str, Value<f64>)> =
            data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let gmodel = program.bind(&data_refs).unwrap();
        let smodel = program.bind_reference(&data_refs).unwrap();
        let gap1 = gmodel.log_density_f64(&[u1]).unwrap() - smodel.log_density_f64(&[u1]).unwrap();
        let gap2 = gmodel.log_density_f64(&[u2]).unwrap() - smodel.log_density_f64(&[u2]).unwrap();
        prop_assert!((gap1 - gap2).abs() < 1e-9);
    }
}
