//! Differential suite for the struct-of-arrays lane evaluator of the
//! tape-free density programs (`gprob::dprog`):
//!
//! * across the whole corpus and every scheme, batched multi-lane evaluation
//!   (`GModel::log_density_and_grad_batch_with`) must be *bitwise* identical
//!   per point to single-lane evaluation, at batch sizes covering every lane
//!   width (2, 4, 8) and ragged remainders (3 = 2+1, 5 = 4+1, 11 = 8+2+1);
//! * the same batches must agree with the `Var`/tape differential oracle —
//!   values to 1e-12, gradients to 1e-10;
//! * declined models batch through the per-point fallback, byte-identically;
//! * the aligned lane register pools must never reallocate across same-shape
//!   batched evaluations (capacities and base pointers pinned);
//! * multi-chain lockstep NUTS through the `Session` API must reproduce the
//!   sequential per-chain runs draw-for-draw;
//! * a proptest over random chain states confirms batch-vs-single bitwise
//!   identity on arbitrary inputs.

use deepstan::{DeepStan, Method, NutsSettings};
use gprob::value::{Env, Value};
use gprob::GModel;
use proptest::prelude::*;
use stan2gprob::{compile, Scheme};
use stan_frontend::parse_program;

fn env_of(data: &[(String, Value<f64>)]) -> Env<f64> {
    data.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
}

fn bind(source: &str, scheme: Scheme, data: &Env<f64>) -> Option<GModel> {
    let ast = parse_program(source).ok()?;
    let compiled = compile(&ast, scheme).ok()?;
    GModel::new(compiled, data.clone()).ok()
}

/// A deterministic batch of `n` unconstrained points of dimension `dim`,
/// spread over a few units around the origin.
fn batch_points(n: usize, dim: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n * dim);
    for j in 0..n {
        for i in 0..dim {
            let v = ((j * 31 + i * 17 + 5) % 23) as f64 * 0.13 - 1.4;
            out.push(v);
        }
    }
    out
}

/// Batched lane evaluation vs single-lane DProg (bitwise) vs tape oracle
/// (tolerance) across the corpus, at every lane width and ragged remainder.
#[test]
fn lane_batches_match_single_lane_bitwise_and_the_tape_oracle() {
    let mut compiled_models = 0;
    let mut checked_points = 0;
    for entry in model_zoo::corpus() {
        if !entry.should_run() {
            continue;
        }
        let data = env_of(&entry.dataset(3));
        for scheme in [Scheme::Comprehensive, Scheme::Mixed, Scheme::Generative] {
            let Some(model) = bind(entry.source, scheme, &data) else {
                continue;
            };
            if model.dprog().is_none() {
                continue;
            }
            compiled_models += 1;
            let dim = model.dim();
            let mut ws_batch = model.grad_workspace();
            let mut ws_single = model.grad_workspace();
            let mut ws_tape = model.grad_workspace();
            for n in [2usize, 3, 4, 5, 8, 11] {
                let thetas = batch_points(n, dim);
                let mut values = vec![0.0; n];
                let mut grads = vec![0.0; n * dim];
                model
                    .log_density_and_grad_batch_with(
                        &mut ws_batch,
                        &thetas,
                        &mut values,
                        &mut grads,
                    )
                    .unwrap_or_else(|e| panic!("{} ({scheme:?}): batch failed: {e:?}", entry.name));
                let mut g_single = vec![0.0; dim];
                let mut g_tape = vec![0.0; dim];
                for j in 0..n {
                    let theta = &thetas[j * dim..(j + 1) * dim];
                    // Bitwise identity against the single-lane DProg entry.
                    let lp_single = model
                        .log_density_and_grad_with(&mut ws_single, theta, &mut g_single)
                        .unwrap();
                    assert_eq!(
                        values[j].to_bits(),
                        lp_single.to_bits(),
                        "{} ({scheme:?}) n={n} point {j}: batch lp {} vs single {}",
                        entry.name,
                        values[j],
                        lp_single
                    );
                    for i in 0..dim {
                        assert_eq!(
                            grads[j * dim + i].to_bits(),
                            g_single[i].to_bits(),
                            "{} ({scheme:?}) n={n} point {j} grad[{i}]: batch {} vs single {}",
                            entry.name,
                            grads[j * dim + i],
                            g_single[i]
                        );
                    }
                    // Tolerance against the tape differential oracle.
                    let lp_tape = model
                        .log_density_and_grad_tape_with(&mut ws_tape, theta, &mut g_tape)
                        .unwrap();
                    if values[j].is_finite() || lp_tape.is_finite() {
                        assert!(
                            (values[j] - lp_tape).abs() < 1e-12,
                            "{} ({scheme:?}) n={n} point {j}: batch lp {} vs tape {}",
                            entry.name,
                            values[j],
                            lp_tape
                        );
                        for i in 0..dim {
                            let (x, y) = (grads[j * dim + i], g_tape[i]);
                            let tol = 1e-10 * (1.0 + x.abs().max(y.abs()));
                            assert!(
                                (x - y).abs() < tol,
                                "{} ({scheme:?}) n={n} point {j} grad[{i}]: batch {x} vs tape {y}",
                                entry.name
                            );
                        }
                    }
                    checked_points += 1;
                }
            }
        }
    }
    assert!(
        compiled_models >= 15,
        "only {compiled_models} model/scheme pairs compiled a density program"
    );
    assert!(
        checked_points >= 100,
        "only {checked_points} points checked"
    );
}

/// Declined models batch through the per-point fallback loop: the batched
/// entry must be byte-identical to single-point tape evaluations.
#[test]
fn declined_models_batch_through_the_per_point_fallback() {
    let src = r#"
        functions { real f(real x) { return x * 2; } }
        data { int N; real y[N]; }
        parameters { real mu; real<lower=0> sigma; }
        model { y ~ normal(f(mu), sigma); }
    "#;
    let mut data: Env<f64> = Env::new();
    data.insert("N".into(), Value::Int(3));
    data.insert("y".into(), Value::Vector(vec![0.1, 0.2, 0.3]));
    let model = bind(src, Scheme::Mixed, &data).unwrap();
    assert!(model.dprog().is_none(), "user functions must decline");
    let dim = model.dim();
    let mut ws_batch = model.grad_workspace();
    let mut ws_single = model.grad_workspace();
    for n in [2usize, 3, 5] {
        let thetas = batch_points(n, dim);
        let mut values = vec![0.0; n];
        let mut grads = vec![0.0; n * dim];
        model
            .log_density_and_grad_batch_with(&mut ws_batch, &thetas, &mut values, &mut grads)
            .unwrap();
        let mut g = vec![0.0; dim];
        for j in 0..n {
            let lp = model
                .log_density_and_grad_with(&mut ws_single, &thetas[j * dim..(j + 1) * dim], &mut g)
                .unwrap();
            assert_eq!(values[j].to_bits(), lp.to_bits());
            for i in 0..dim {
                assert_eq!(grads[j * dim + i].to_bits(), g[i].to_bits());
            }
        }
    }
}

/// Same-shape batched evaluations must never reallocate the aligned lane
/// pools: capacities grow once per lane width seen, then stay put.
#[test]
fn lane_register_pools_never_reallocate_across_same_shape_evals() {
    let entry = model_zoo::find("eight_schools_centered").unwrap();
    let data = env_of(&entry.dataset(0));
    let model = bind(entry.source, Scheme::Mixed, &data).unwrap();
    assert!(model.dprog().is_some());
    let dim = model.dim();
    let mut ws = model.grad_workspace();
    // Warm every lane width (8, 4, 2 and the single-point remainder).
    let n = 15;
    let thetas = batch_points(n, dim);
    let mut values = vec![0.0; n];
    let mut grads = vec![0.0; n * dim];
    model
        .log_density_and_grad_batch_with(&mut ws, &thetas, &mut values, &mut grads)
        .unwrap();
    let warm = ws.dprog_capacities().unwrap();
    assert!(warm.2 > 0, "lane pools were never built");
    // Repeat the same-shape evaluation many times: capacities must be frozen.
    for _ in 0..10 {
        model
            .log_density_and_grad_batch_with(&mut ws, &thetas, &mut values, &mut grads)
            .unwrap();
        assert_eq!(
            ws.dprog_capacities().unwrap(),
            warm,
            "lane register pools reallocated on a same-shape evaluation"
        );
    }
    // Smaller batches reuse the already-built lane files too.
    for n in [2usize, 4, 8] {
        let thetas = batch_points(n, dim);
        let mut values = vec![0.0; n];
        let mut grads = vec![0.0; n * dim];
        model
            .log_density_and_grad_batch_with(&mut ws, &thetas, &mut values, &mut grads)
            .unwrap();
        assert_eq!(ws.dprog_capacities().unwrap(), warm);
    }
}

/// Multi-chain lockstep NUTS through the Session API reproduces sequential
/// per-chain runs draw-for-draw (chain `c` of a `chains(C)` run equals the
/// single chain of a `chains(1)` run seeded `base + c`).
#[test]
fn lockstep_session_chains_match_sequential_session_chains() {
    let entry = model_zoo::find("eight_schools_noncentered").unwrap();
    let data = entry.dataset(0);
    let data_refs: Vec<(&str, Value<f64>)> =
        data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let settings = NutsSettings {
        warmup: 150,
        samples: 150,
        ..Default::default()
    };
    let program = DeepStan::compile_named(entry.name, entry.source).unwrap();
    let lockstep = program
        .session(&data_refs)
        .unwrap()
        .scheme(Scheme::Mixed)
        .chains(3)
        .seed(42)
        .run(Method::Nuts(settings.clone()))
        .unwrap();
    assert_eq!(lockstep.n_chains(), 3);
    for c in 0..3 {
        let sequential = program
            .session(&data_refs)
            .unwrap()
            .scheme(Scheme::Mixed)
            .chains(1)
            .seed(42 + c as u64)
            .run(Method::Nuts(settings.clone()))
            .unwrap();
        assert_eq!(
            lockstep.chains[c].draws, sequential.chains[0].draws,
            "lockstep chain {c} diverged from its sequential run"
        );
        assert_eq!(
            lockstep.chains[c].n_grad_evals,
            sequential.chains[0].n_grad_evals
        );
        assert_eq!(
            lockstep.chains[c].divergences,
            sequential.chains[0].divergences
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Random chain states: batched lane evaluation is bitwise identical to
    /// single-lane evaluation at every batch size, wherever the chains are.
    #[test]
    fn prop_random_chain_states_batch_bitwise_identically(
        n in 2usize..12,
        scale in 0.1f64..3.0,
        shift in -2.0f64..2.0,
    ) {
        let entry = model_zoo::find("kidscore_momiq").unwrap();
        let data = env_of(&entry.dataset(3));
        let model = bind(entry.source, Scheme::Mixed, &data).unwrap();
        prop_assert!(model.dprog().is_some());
        let dim = model.dim();
        let mut thetas = batch_points(n, dim);
        for (k, t) in thetas.iter_mut().enumerate() {
            *t = *t * scale + shift * ((k % 7) as f64 - 3.0) * 0.2;
        }
        let mut ws_batch = model.grad_workspace();
        let mut ws_single = model.grad_workspace();
        let mut values = vec![0.0; n];
        let mut grads = vec![0.0; n * dim];
        model
            .log_density_and_grad_batch_with(&mut ws_batch, &thetas, &mut values, &mut grads)
            .unwrap();
        let mut g = vec![0.0; dim];
        for j in 0..n {
            let lp = model
                .log_density_and_grad_with(&mut ws_single, &thetas[j * dim..(j + 1) * dim], &mut g)
                .unwrap();
            prop_assert_eq!(values[j].to_bits(), lp.to_bits());
            for i in 0..dim {
                prop_assert_eq!(grads[j * dim + i].to_bits(), g[i].to_bits());
            }
        }
    }
}
