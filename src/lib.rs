//! Workspace umbrella crate for the DeepStan reproduction.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! directories can exercise the public API of every member crate. The actual
//! functionality lives in the crates under `crates/`; start from
//! [`deepstan`] for the user-facing API.
//!
//! ```
//! use deepstan::DeepStan;
//! let program = DeepStan::compile("parameters { real mu; } model { mu ~ normal(0, 1); }").unwrap();
//! assert_eq!(program.parameter_names(), vec!["mu".to_string()]);
//! ```

pub use deepstan;
pub use gprob;
pub use inference;
pub use model_zoo;
pub use stan2gprob;
pub use stan_frontend;
pub use stan_ref;
