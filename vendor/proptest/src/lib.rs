//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! range strategies over primitives, and [`prop_assert!`]. Cases are driven
//! by a deterministic seeded RNG; there is no shrinking — a failing case
//! panics with the generated inputs in the message, which is enough for the
//! equivalence-style properties tested here.

use rand::rngs::StdRng;
use rand::Rng as _;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator (`x in strategy` in the macro).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn pick(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn pick(&self, rng: &mut StdRng) -> i64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn pick(&self, rng: &mut StdRng) -> i32 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.start..self.end)
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Property-test declaration macro (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    0x70726f_70746573u64 ^ stringify!($name).len() as u64,
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::pick(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strategy),* ) $body
            )*
        }
    };
}

/// Assertion macro, mirroring proptest's (panics instead of shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion macro.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($a, $b $(, $($fmt)+)?);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in -1.0f64..1.0, k in 0usize..10) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(k < 10);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(y in 0.0f64..5.0) {
            prop_assert!(y >= 0.0);
        }
    }
}
