//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple but
//! sound measurement loop (warmup, batched timing, median-of-samples).
//!
//! Results are printed to stdout. When the `BENCH_JSON` environment variable
//! is set, one JSON object per benchmark is appended to that file so harness
//! scripts can collect machine-readable results.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

/// Timing result of one benchmark.
#[derive(Debug, Clone, Copy)]
struct Stats {
    median_ns: f64,
    mean_ns: f64,
    iters: u64,
}

impl BenchmarkGroup {
    /// Number of timing samples collected per benchmark. The
    /// `BENCH_SAMPLE_SIZE` environment variable overrides the requested
    /// size (CI uses `BENCH_SAMPLE_SIZE=1` as a compile-and-run smoke).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let n = std::env::var("BENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(n);
        self.sample_size = n.max(1);
        self
    }

    /// Measures one closure-driven benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            stats: None,
        };
        f(&mut bencher);
        if let Some(stats) = bencher.stats {
            let full = format!("{}/{}", self.name, id);
            println!(
                "bench: {full:<55} median {:>12} /iter  (mean {}, {} iters)",
                fmt_ns(stats.median_ns),
                fmt_ns(stats.mean_ns),
                stats.iters
            );
            if let Ok(path) = std::env::var("BENCH_JSON") {
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                {
                    let _ = writeln!(
                        file,
                        "{{\"bench\":\"{full}\",\"median_ns\":{:.1},\"mean_ns\":{:.1}}}",
                        stats.median_ns, stats.mean_ns
                    );
                }
            }
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the measurement.
pub struct Bencher {
    sample_size: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Times repeated executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and per-iteration cost estimate.
        let mut iters_per_sample = 1u64;
        let warmup_budget = Duration::from_millis(150);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup_budget || warmup_iters < 3 {
            black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        // Aim for samples of ~5 ms (at least one iteration each).
        if est_ns > 0.0 {
            iters_per_sample = ((5_000_000.0 / est_ns).ceil() as u64).clamp(1, 1_000_000);
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            samples.push(elapsed / iters_per_sample as f64);
            total_iters += iters_per_sample;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_ns = samples[samples.len() / 2];
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        self.stats = Some(Stats {
            median_ns,
            mean_ns,
            iters: total_iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_plausible_timings() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(5);
        let mut ran = false;
        group.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
