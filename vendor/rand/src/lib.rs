//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no access to crates.io, so this crate
//! re-implements exactly the subset of the `rand 0.8` API surface the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen` / `gen_range` for the primitive types that
//! appear in the codebase.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a deterministic,
//! high-quality, non-cryptographic PRNG. Streams differ from the real
//! `rand::StdRng` (which is ChaCha12), but every use in this workspace only
//! relies on determinism given a seed, not on a particular stream.

use std::ops::Range;

pub mod rngs {
    /// xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core trait: the raw 64-bit output stream.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types samplable uniformly over their "standard" domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from a half-open range (`rng.gen_range(a..b)`).
pub trait SampleUniform: Sized {
    /// Draws one value in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for the spans used here.
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut min: f64 = 1.0;
        let mut max: f64 = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(min < 0.01 && max > 0.99, "poor coverage: {min} {max}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let k = rng.gen_range(0usize..13);
            assert!(k < 13);
        }
    }

    #[test]
    fn mean_of_uniform_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
